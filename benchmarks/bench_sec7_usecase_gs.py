"""Section VII use case, guaranteed-service side.

Paper claims regenerated here:

* 200 connections / 4 applications / 70 IPs on a 4x3 concentrated mesh
  allocate successfully at 500 MHz;
* simulation shows every connection's service latency within both its
  requirement and the analytical bound (predictability);
* removing applications leaves the survivors' flit traces bit-identical
  (composability).
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.experiments.section7 import composability_rows, usecase_gs_rows
from repro.usecase.runner import run_gs


def test_section7_gs_meets_all_requirements(benchmark, section7):
    _, config = section7
    outcome = benchmark.pedantic(
        lambda: run_gs(config, n_slots=2500), rounds=1, iterations=1)
    print()
    print(format_table(usecase_gs_rows(config, n_slots=2500),
                       title="Section VII — aelite GS @ 500 MHz"))
    assert outcome.all_requirements_met
    assert outcome.all_within_bounds
    assert outcome.n_measured == 200


def test_section7_composability_bit_identical(benchmark, section7):
    _, config = section7
    rows = benchmark.pedantic(
        lambda: composability_rows(config, n_slots=1200),
        rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Section VII — application isolation"))
    assert all(row["composable"] for row in rows)
    assert all(row["diverged"] == 0 for row in rows)
