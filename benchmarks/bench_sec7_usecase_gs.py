"""Section VII use case, guaranteed-service side.

Paper claims regenerated here:

* 200 connections / 4 applications / 70 IPs on a 4x3 concentrated mesh
  allocate successfully at 500 MHz;
* simulation shows every connection's service latency within both its
  requirement and the analytical bound (predictability);
* removing applications leaves the survivors' flit traces bit-identical
  (composability).

``test_section7_gs_compiled_speedup`` additionally measures the
compiled vectorised executor against the per-flit reference on the
same 200-connection run: identical verdicts, traces and flit counts,
at least ``TARGET_SPEEDUP_COMPILED`` times faster, and (with
``--bench-record``) one more entry in the recorded perf trajectory
``benchmarks/records/BENCH_sec7_usecase_gs.json``.
"""

from __future__ import annotations

import time

from repro.experiments.report import format_table
from repro.experiments.section7 import composability_rows, usecase_gs_rows
from repro.simulation.backend import FlitLevelBackend
from repro.simulation.compiled import numpy_available
from repro.usecase.runner import run_gs

#: Compiled executor over the per-flit reference on the full use case.
TARGET_SPEEDUP_COMPILED = 10.0
N_SLOTS = 2500


def test_section7_gs_meets_all_requirements(benchmark, section7):
    _, config = section7
    outcome = benchmark.pedantic(
        lambda: run_gs(config, n_slots=2500), rounds=1, iterations=1)
    print()
    print(format_table(usecase_gs_rows(config, n_slots=2500),
                       title="Section VII — aelite GS @ 500 MHz"))
    assert outcome.all_requirements_met
    assert outcome.all_within_bounds
    assert outcome.n_measured == 200


def test_section7_gs_compiled_speedup(section7, bench_record):
    _, config = section7

    def run(compiled):
        backend = FlitLevelBackend(config, compiled=compiled)
        start = time.perf_counter()
        outcome = run_gs(config, n_slots=N_SLOTS, backend=backend)
        return outcome, time.perf_counter() - start

    # Warm pass per executor doubles as the equivalence gate: the
    # compiled path must reproduce the reference run bit for bit.
    fast, _ = run(None)
    reference, _ = run(False)
    assert fast.result.meta["executor"] == (
        "compiled" if numpy_available() else "per-flit")
    assert reference.result.meta["executor"] == "per-flit"
    assert fast.all_requirements_met and fast.all_within_bounds
    assert fast.n_measured == reference.n_measured == 200
    assert fast.worst_margin_ns == reference.worst_margin_ns
    ref_trace = reference.result.composability_trace()
    fast_trace = fast.result.composability_trace()
    assert fast_trace.channels() == ref_trace.channels()
    for name in ref_trace.channels():
        assert fast_trace.trace(name) == ref_trace.trace(name), name

    compiled_s = min(run(None)[1] for _ in range(3))
    reference_s = min(run(False)[1] for _ in range(2))
    speedup = reference_s / compiled_s
    if numpy_available():
        assert speedup >= TARGET_SPEEDUP_COMPILED, (
            f"compiled executor only {speedup:.2f}x faster than the "
            f"per-flit reference on the Section VII use case "
            f"(target >= {TARGET_SPEEDUP_COMPILED}x)")
    bench_record(
        "sec7_usecase_gs",
        wall_s=compiled_s,
        ops_per_s=N_SLOTS / compiled_s,
        speedup=speedup,
        executor=fast.result.meta["executor"],
        n_channels=200,
        n_slots=N_SLOTS,
        per_flit_s=reference_s)


def test_section7_composability_bit_identical(benchmark, section7):
    _, config = section7
    rows = benchmark.pedantic(
        lambda: composability_rows(config, n_slots=1200),
        rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Section VII — application isolation"))
    assert all(row["composable"] for row in rows)
    assert all(row["diverged"] == 0 for row in rows)
