"""Figure 6(a): area and maximum frequency versus router arity.

Paper series (32-bit, maximum-frequency synthesis): area grows roughly
linearly with arity from ~6 k to ~30 k um^2 despite the quadratic mux
tree; maximum frequency declines from ~1.3 GHz to ~850 MHz.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import figure6a_rows
from repro.experiments.report import format_table


def test_figure6a_arity_scaling(benchmark):
    rows = benchmark(figure6a_rows)
    print()
    print(format_table(rows, title="Figure 6(a) — area & fmax vs arity "
                                   "(32-bit, max effort)"))
    arities = np.array([row["arity"] for row in rows], dtype=float)
    areas = np.array([row["area_um2"] for row in rows], dtype=float)
    freqs = np.array([row["max_frequency_mhz"] for row in rows],
                     dtype=float)
    # Area roughly linear in arity: linear fit explains >= 99 %.
    coeffs = np.polyfit(arities, areas, 1)
    prediction = np.polyval(coeffs, arities)
    residual = np.sum((areas - prediction) ** 2)
    total = np.sum((areas - areas.mean()) ** 2)
    assert 1 - residual / total > 0.99
    # Frequency declines monotonically, ~1.3 GHz down to ~800-900 MHz.
    assert list(freqs) == sorted(freqs, reverse=True)
    assert 1150 <= freqs[0] <= 1400
    assert 750 <= freqs[-1] <= 900
