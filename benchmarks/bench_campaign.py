"""Tier-2 benchmarks for the scenario-campaign engine.

``--campaign-smoke`` runs the 4-scenario micro-campaign (flit,
cycle-synchronous, cycle-mesochronous, best-effort on one small mesh)
across 2 worker processes, checks the result set is clean and
deterministic, and records the campaign wall-clock in the
``--benchmark-json`` trajectory.

``--campaign-bench`` measures the sharded fabric against the seed
runner's dispatch strategy — one ``multiprocessing.Pool`` with
``imap_unordered(..., chunksize=1)`` shipping a fully pickled
:class:`~repro.campaign.spec.RunSpec` per task — on a ~10k-run
synthetic grid at 8 workers.  The grid's runs cost microseconds each,
so the measurement isolates exactly what the fabric changed: per-task
pickling, per-task IPC round-trips, and all-at-end aggregation.  The
fabric run uses streaming aggregation into a checkpoint workdir, and
the benchmark asserts the ≥ 2x speedup, report byte-identity against
the seed dispatch, and that no full record list was ever resident.
Record the measurement into ``benchmarks/records/BENCH_campaign.json``
with ``--bench-record``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import resource
import time

import pytest

from repro.campaign import (CampaignResult, CampaignRunner, micro_campaign,
                            synthetic_campaign)
from repro.campaign.runner import _timed_execute_run


@pytest.fixture
def campaign_smoke_enabled(request):
    if not request.config.getoption("--campaign-smoke"):
        pytest.skip("pass --campaign-smoke to run the campaign smoke check")


@pytest.fixture
def campaign_bench_enabled(request):
    if not request.config.getoption("--campaign-bench"):
        pytest.skip("pass --campaign-bench to run the campaign fabric "
                    "benchmark")


def test_micro_campaign_smoke(benchmark, campaign_smoke_enabled):
    spec = micro_campaign()

    def run_campaign():
        start = time.perf_counter()
        result = CampaignRunner(spec, workers=2).run()
        return result, time.perf_counter() - start

    result, wall_clock_s = benchmark.pedantic(run_campaign, rounds=1,
                                              iterations=1)
    benchmark.extra_info["campaign_wall_clock_s"] = round(wall_clock_s, 4)
    benchmark.extra_info["n_runs"] = result.n_runs
    assert result.n_runs == 4
    assert result.n_failed == 0
    statuses = {record["status"] for record in result.records}
    assert statuses == {"ok"}
    # Determinism holds under the pool: re-running serially reproduces
    # the aggregated report byte for byte.
    serial = CampaignRunner(spec, workers=1).run()
    assert serial.to_json() == result.to_json()


def _seed_dispatch(spec, workers: int) -> CampaignResult:
    """The seed runner's execution strategy, preserved for comparison.

    One pool, ``chunksize=1``, a fully pickled ``RunSpec`` per task
    message, every record held in memory until the end — exactly what
    ``CampaignRunner.run`` did before the sharded fabric replaced it.
    """
    runs = sorted(spec.expand(), key=lambda r: r.run_id)
    records = []
    with multiprocessing.Pool(processes=workers) as pool:
        for envelope in pool.imap_unordered(_timed_execute_run, runs,
                                            chunksize=1):
            records.append(envelope["record"])
    records.sort(key=lambda r: r["run_id"])
    return CampaignResult(campaign=spec.name, base_seed=spec.base_seed,
                          records=records)


def test_campaign_fabric_speedup(campaign_bench_enabled, bench_record,
                                 tmp_path):
    """Sharded batching dispatch ≥ 2x over seed chunksize=1 dispatch."""
    n = int(os.environ.get("CAMPAIGN_BENCH_RUNS", "10000"))
    n_scenarios = max(1, min(100, n // 100))
    n_seeds = max(1, n // n_scenarios)
    spec = synthetic_campaign(n_scenarios=n_scenarios,
                              seeds=tuple(range(1, n_seeds + 1)), work=2)
    workers = int(os.environ.get("CAMPAIGN_BENCH_WORKERS", "8"))
    n_runs = len(spec.expand())

    start = time.perf_counter()
    seed_result = _seed_dispatch(spec, workers)
    seed_s = time.perf_counter() - start

    start = time.perf_counter()
    fabric_result = CampaignRunner(
        spec, workers=workers, workdir=tmp_path / "wd",
        keep_records=False).run()
    fabric_s = time.perf_counter() - start

    speedup = seed_s / fabric_s
    # Streaming aggregation held no record list: the canonical report
    # comes back out of the shard journals, byte-identical to the
    # all-in-memory seed dispatch.
    assert fabric_result.records == []
    aggregate = fabric_result.meta["aggregate"]
    assert aggregate["streaming"] is True
    assert aggregate["peak_resident_records"] <= 1
    assert fabric_result.to_json() == seed_result.to_json()
    assert fabric_result.n_runs == n_runs
    assert speedup >= 2.0, (
        f"sharded fabric only {speedup:.2f}x over seed dispatch "
        f"({fabric_s:.2f}s vs {seed_s:.2f}s on {n_runs} runs)")

    peak_rss_mb = (resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                   / 1024.0)
    path = bench_record(
        "campaign", wall_s=fabric_s, ops_per_s=n_runs / fabric_s,
        speedup=speedup, n_runs=n_runs, workers=workers,
        seed_wall_s=seed_s,
        batches=fabric_result.meta["dispatch"]["batches"],
        peak_resident_records=aggregate["peak_resident_records"],
        parent_peak_rss_mb=round(peak_rss_mb, 1))
    if path is not None:
        print(f"\nrecorded campaign trajectory entry -> {path}")
    print(f"\ncampaign fabric: {n_runs} runs, {workers} workers: "
          f"seed {seed_s:.2f}s -> fabric {fabric_s:.2f}s "
          f"({speedup:.2f}x)")
