"""Tier-2 smoke benchmark for the scenario-campaign engine.

Opt in with ``--campaign-smoke``.  Runs the 4-scenario micro-campaign
(flit, cycle-synchronous, cycle-mesochronous, best-effort on one small
mesh) across 2 worker processes, checks the result set is clean and
deterministic, and records the campaign wall-clock both as the
benchmark measurement and under ``extra_info`` so it lands in the
``--benchmark-json`` trajectory.
"""

from __future__ import annotations

import time

import pytest

from repro.campaign import CampaignRunner, micro_campaign


@pytest.fixture
def campaign_smoke_enabled(request):
    if not request.config.getoption("--campaign-smoke"):
        pytest.skip("pass --campaign-smoke to run the campaign smoke check")


def test_micro_campaign_smoke(benchmark, campaign_smoke_enabled):
    spec = micro_campaign()

    def run_campaign():
        start = time.perf_counter()
        result = CampaignRunner(spec, workers=2).run()
        return result, time.perf_counter() - start

    result, wall_clock_s = benchmark.pedantic(run_campaign, rounds=1,
                                              iterations=1)
    benchmark.extra_info["campaign_wall_clock_s"] = round(wall_clock_s, 4)
    benchmark.extra_info["n_runs"] = result.n_runs
    assert result.n_runs == 4
    assert result.n_failed == 0
    statuses = {record["status"] for record in result.records}
    assert statuses == {"ok"}
    # Determinism holds under the pool: re-running serially reproduces
    # the aggregated report byte for byte.
    serial = CampaignRunner(spec, workers=1).run()
    assert serial.to_json() == result.to_json()
