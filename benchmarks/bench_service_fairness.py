"""Tier-2 benchmark: overhead of the weighted-fair admission tier.

Opt in with ``--service-fairness``.  Runs the same seeded tenanted
churn trace (abusive mix: one 10x flooding tenant among three
well-behaved ones) on the Section VII mesh twice — once under plain
FCFS admission and once under ``policy="wfq"`` with the full fairness
tier armed (WFQ gates, per-tenant/per-app throttles, overload
shedding, guaranteed floors) — and gates two figures:

* absolute throughput: the WFQ path must still clear the service
  target of >= 10k session events/sec on the warm admission path;
* relative overhead: the fairness tier must cost < 15% wall clock
  versus the FCFS baseline over the identical event stream.

With ``--bench-record`` both figures land in
``benchmarks/records/BENCH_service_fairness.json`` so the trajectory
is tracked across PRs (see ``docs/performance.md``).
"""

from __future__ import annotations

import time

import pytest

from repro.core.allocation import SlotAllocator
from repro.service import ChurnSpec, ChurnWorkload, SessionService
from repro.service.fairness import abusive_tenant_mix
from repro.service.fairness_demo import demo_fairness_spec
from repro.topology.builders import concentrated_mesh

TABLE_SIZE = 32
FREQUENCY_HZ = 500e6
TARGET_EVENTS_PER_S = 10_000
MAX_OVERHEAD = 0.15


@pytest.fixture
def service_fairness_enabled(request):
    if not request.config.getoption("--service-fairness"):
        pytest.skip("pass --service-fairness to run the fairness "
                    "overhead benchmark")


def test_service_fairness_overhead(benchmark, service_fairness_enabled,
                                   bench_record):
    topology = concentrated_mesh(4, 3, nis_per_router=4)
    tenants = abusive_tenant_mix(3, floor_opens_per_window=2)
    workload = ChurnWorkload(
        ChurnSpec(n_sessions=5000, arrival_rate_per_s=18000.0,
                  tenants=tenants),
        topology, seed=42)
    events = workload.events()
    allocator = SlotAllocator(topology, table_size=TABLE_SIZE,
                              frequency_hz=FREQUENCY_HZ)

    def run(policy: str):
        kwargs = ({"policy": "wfq", "fairness": demo_fairness_spec(),
                   "tenants": tenants} if policy == "wfq" else {})
        service = SessionService(topology, allocator=allocator,
                                 record_events=False, **kwargs)
        start = time.perf_counter()
        report = service.run(events)
        return report, time.perf_counter() - start

    def timed(policy: str, rounds: int = 3):
        best = None
        for _ in range(rounds):
            report, wall_s = run(policy)
            best = wall_s if best is None else min(best, wall_s)
        return report, best

    # Warm pass on each policy: populates the allocator's path/quote
    # caches and gates correctness before anything is timed.
    warm_fcfs, _ = run("fcfs")
    warm_wfq, _ = run("wfq")
    assert warm_fcfs.invariant["ok"] and warm_wfq.invariant["ok"]
    assert warm_fcfs.totals["n_events"] == len(events)
    assert warm_wfq.tenants and warm_wfq.fairness

    fcfs_report, fcfs_wall = timed("fcfs")
    wfq_report, wfq_wall = benchmark.pedantic(
        lambda: timed("wfq"), rounds=1, iterations=1)
    events_per_s = len(events) / wfq_wall
    overhead = wfq_wall / fcfs_wall - 1.0

    # Determinism under churn: warm and measured runs replay the
    # identical stream, so their canonical reports must be byte-equal.
    assert fcfs_report.to_json() == warm_fcfs.to_json()
    assert wfq_report.to_json() == warm_wfq.to_json()

    benchmark.extra_info["n_events"] = len(events)
    benchmark.extra_info["wfq_events_per_s"] = round(events_per_s)
    benchmark.extra_info["overhead_vs_fcfs"] = round(overhead, 4)
    bench_record("service_fairness", wall_s=wfq_wall,
                 ops_per_s=events_per_s,
                 fcfs_wall_s=fcfs_wall, overhead_vs_fcfs=overhead,
                 n_events=len(events))

    assert events_per_s >= TARGET_EVENTS_PER_S, (
        f"wfq admission path too slow: {events_per_s:,.0f} events/s "
        f"< {TARGET_EVENTS_PER_S:,} target")
    assert overhead < MAX_OVERHEAD, (
        f"fairness tier overhead {overhead:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} budget vs FCFS")
