"""Shared fixtures for the benchmark suite.

The Section VII use case (generation + allocation) is expensive enough
to share across benchmarks; it is deterministic, so sharing does not
couple measurements.
"""

from __future__ import annotations

import pytest

from repro.core.application import Application, UseCase
from repro.core.configuration import configure
from repro.core.connection import MB, ChannelSpec
from repro.experiments.section7 import section7_setup
from repro.simulation.traffic import ConstantBitRate
from repro.topology.builders import mesh
from repro.topology.mapping import Mapping


@pytest.fixture(scope="session")
def section7():
    """Generated and allocated 200-connection use case."""
    instance, config = section7_setup()
    return instance, config


@pytest.fixture(scope="session")
def mesh_small_config():
    """A small mesh configuration plus CBR traffic for detailed sims."""
    topo = mesh(2, 2, nis_per_router=1, pipeline_stages=1)
    channels = (
        ChannelSpec("c0", "ipA", "ipB", 80 * MB, application="app"),
        ChannelSpec("c1", "ipB", "ipC", 80 * MB, application="app"),
        ChannelSpec("c2", "ipC", "ipA", 80 * MB, application="app"),
    )
    use_case = UseCase("bench", (Application("app", channels),))
    mapping = Mapping({"ipA": "ni0_0_0", "ipB": "ni1_0_0",
                       "ipC": "ni1_1_0"})
    config = configure(topo, use_case, table_size=8, frequency_hz=500e6,
                       mapping=mapping)
    traffic = {
        spec.name: ConstantBitRate.from_rate(
            spec.throughput_bytes_per_s, 500e6, config.fmt)
        for spec in channels}
    return config, traffic
