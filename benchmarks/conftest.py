"""Shared fixtures and options for the benchmark suite.

The Section VII use case (generation + allocation) is expensive enough
to share across benchmarks; it is deterministic, so sharing does not
couple measurements.

``--campaign-smoke`` opts into the tier-2 campaign smoke check in
``bench_campaign.py``: a 4-scenario micro-campaign across 2 worker
processes whose wall-clock lands in the benchmark JSON output
(``--benchmark-json``), giving campaign-engine overhead its own
trajectory.

``--bench-record`` turns benchmark measurements into *tracked*
perf-trajectory artifacts: every benchmark that uses the
:func:`bench_record` fixture appends one entry — benchmark name, wall
time, ops/s, speedup, git revision, timestamp — to
``benchmarks/records/BENCH_<name>.json``.  Each file is a list ordered
by recording time, so re-running with ``--bench-record`` across PRs
grows a machine-readable speedup history instead of a chain of
assertions that vanish with each CI run (see ``docs/performance.md``).
"""

from __future__ import annotations

import datetime
import json
import subprocess
from pathlib import Path

import pytest

#: Default directory for ``BENCH_*.json`` perf-trajectory artifacts.
RECORDS_DIR = Path(__file__).resolve().parent / "records"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--campaign-smoke", action="store_true", default=False,
        help="run the 4-scenario micro-campaign smoke benchmark "
             "(tier-2; exercises every backend plus the parallel pool)")
    parser.addoption(
        "--bench-record", action="store_true", default=False,
        help="append every recorded measurement to "
             "benchmarks/records/BENCH_<name>.json (benchmark name, "
             "wall time, ops/s, speedup, git rev, timestamp) so the "
             "perf trajectory is tracked across PRs")
    parser.addoption(
        "--service-churn", action="store_true", default=False,
        help="run the session-churn service benchmark on the Section "
             "VII mesh (tier-2; asserts >= 10k session events/sec on "
             "the warm admission path)")
    parser.addoption(
        "--service-fairness", action="store_true", default=False,
        help="run the weighted-fair admission overhead benchmark on "
             "the Section VII mesh (tier-2; asserts the wfq policy "
             "tier clears >= 10k session events/sec and costs < 15% "
             "wall clock versus the FCFS baseline)")
    parser.addoption(
        "--replay-epochs", action="store_true", default=False,
        help="run the epoch-replay benchmark on the Section VII use "
             "case (tier-2; asserts incremental schedule "
             "recompilation beats full per-epoch rebuild by >= 2x)")
    parser.addoption(
        "--design-search", action="store_true", default=False,
        help="run the design-space screening benchmark (tier-2; "
             "asserts analytical lower-bound pruning beats exhaustive "
             "candidate evaluation by >= 2x on the same grid)")
    parser.addoption(
        "--telemetry-overhead", action="store_true", default=False,
        help="run the telemetry-overhead gate on the admission churn "
             "workload (tier-2; asserts enabled-mode overhead < 5% "
             "and telemetry-on/off report byte-identity)")
    parser.addoption(
        "--monitor-overhead", action="store_true", default=False,
        help="run the conformance-monitor overhead gate on the "
             "admission churn workload (tier-2; asserts armed-monitor "
             "overhead < 5% and monitor-on/off report byte-identity)")
    parser.addoption(
        "--campaign-bench", action="store_true", default=False,
        help="run the campaign-fabric benchmark on a ~10k-run "
             "synthetic grid (tier-2; asserts the sharded batching "
             "runner beats the seed chunksize=1 pool dispatch by "
             ">= 2x with streaming aggregation keeping memory flat)")

def _git_rev() -> str:
    """Current revision (``describe --always --dirty``), or "unknown"."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=Path(__file__).resolve().parent.parent,
            capture_output=True, text=True, timeout=10)
    except OSError:
        return "unknown"
    return out.stdout.strip() or "unknown"


@pytest.fixture
def bench_record(request: pytest.FixtureRequest):
    """Appender for ``BENCH_<name>.json`` perf-trajectory entries.

    Benchmarks call ``bench_record(name, wall_s=..., ops_per_s=...,
    speedup=..., **extra)``; without ``--bench-record`` the call is a
    no-op, so benchmarks measure identically either way.  Entries append
    to a per-benchmark JSON list — the recorded trajectory — and the
    file path is returned for log messages.
    """
    enabled = request.config.getoption("--bench-record")
    rev = _git_rev() if enabled else "unrecorded"
    stamp = (datetime.datetime.now(datetime.timezone.utc)
             .strftime("%Y-%m-%dT%H:%M:%SZ"))

    def record(name: str, *, wall_s: float, ops_per_s: float | None = None,
               speedup: float | None = None, **extra) -> Path | None:
        if not enabled:
            return None
        RECORDS_DIR.mkdir(parents=True, exist_ok=True)
        path = RECORDS_DIR / f"BENCH_{name}.json"
        entries = json.loads(path.read_text()) if path.exists() else []
        entry: dict[str, object] = {
            "benchmark": name,
            "wall_s": round(wall_s, 6),
            "ops_per_s": (None if ops_per_s is None
                          else round(ops_per_s, 1)),
            "speedup": None if speedup is None else round(speedup, 2),
            "git_rev": rev,
            "timestamp": stamp,
        }
        if extra:
            entry["extra"] = {
                key: (round(value, 6)
                      if isinstance(value, float) else value)
                for key, value in sorted(extra.items())}
        entries.append(entry)
        path.write_text(json.dumps(entries, indent=2, sort_keys=True) +
                        "\n")
        return path

    return record


from repro.core.application import Application, UseCase
from repro.core.configuration import configure
from repro.core.connection import MB, ChannelSpec
from repro.experiments.section7 import section7_setup
from repro.simulation.traffic import ConstantBitRate
from repro.topology.builders import mesh
from repro.topology.mapping import Mapping


@pytest.fixture(scope="session")
def section7():
    """Generated and allocated 200-connection use case."""
    instance, config = section7_setup()
    return instance, config


@pytest.fixture(scope="session")
def mesh_small_config():
    """A small mesh configuration plus CBR traffic for detailed sims."""
    topo = mesh(2, 2, nis_per_router=1, pipeline_stages=1)
    channels = (
        ChannelSpec("c0", "ipA", "ipB", 80 * MB, application="app"),
        ChannelSpec("c1", "ipB", "ipC", 80 * MB, application="app"),
        ChannelSpec("c2", "ipC", "ipA", 80 * MB, application="app"),
    )
    use_case = UseCase("bench", (Application("app", channels),))
    mapping = Mapping({"ipA": "ni0_0_0", "ipB": "ni1_0_0",
                       "ipC": "ni1_1_0"})
    config = configure(topo, use_case, table_size=8, frequency_hz=500e6,
                       mapping=mapping)
    traffic = {
        spec.name: ConstantBitRate.from_rate(
            spec.throughput_bytes_per_s, 500e6, config.fmt)
        for spec in channels}
    return config, traffic
