"""Shared fixtures and options for the benchmark suite.

The Section VII use case (generation + allocation) is expensive enough
to share across benchmarks; it is deterministic, so sharing does not
couple measurements.

``--campaign-smoke`` opts into the tier-2 campaign smoke check in
``bench_campaign.py``: a 4-scenario micro-campaign across 2 worker
processes whose wall-clock lands in the benchmark JSON output
(``--benchmark-json``), giving campaign-engine overhead its own
trajectory.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--campaign-smoke", action="store_true", default=False,
        help="run the 4-scenario micro-campaign smoke benchmark "
             "(tier-2; exercises every backend plus the parallel pool)")
    parser.addoption(
        "--service-churn", action="store_true", default=False,
        help="run the session-churn service benchmark on the Section "
             "VII mesh (tier-2; asserts >= 10k session events/sec on "
             "the warm admission path)")
    parser.addoption(
        "--replay-epochs", action="store_true", default=False,
        help="run the epoch-replay benchmark on the Section VII use "
             "case (tier-2; asserts incremental schedule "
             "recompilation beats full per-epoch rebuild by >= 2x)")
    parser.addoption(
        "--design-search", action="store_true", default=False,
        help="run the design-space screening benchmark (tier-2; "
             "asserts analytical lower-bound pruning beats exhaustive "
             "candidate evaluation by >= 2x on the same grid)")

from repro.core.application import Application, UseCase
from repro.core.configuration import configure
from repro.core.connection import MB, ChannelSpec
from repro.experiments.section7 import section7_setup
from repro.simulation.traffic import ConstantBitRate
from repro.topology.builders import mesh
from repro.topology.mapping import Mapping


@pytest.fixture(scope="session")
def section7():
    """Generated and allocated 200-connection use case."""
    instance, config = section7_setup()
    return instance, config


@pytest.fixture(scope="session")
def mesh_small_config():
    """A small mesh configuration plus CBR traffic for detailed sims."""
    topo = mesh(2, 2, nis_per_router=1, pipeline_stages=1)
    channels = (
        ChannelSpec("c0", "ipA", "ipB", 80 * MB, application="app"),
        ChannelSpec("c1", "ipB", "ipC", 80 * MB, application="app"),
        ChannelSpec("c2", "ipC", "ipA", 80 * MB, application="app"),
    )
    use_case = UseCase("bench", (Application("app", channels),))
    mapping = Mapping({"ipA": "ni0_0_0", "ipB": "ni1_0_0",
                       "ipC": "ni1_1_0"})
    config = configure(topo, use_case, table_size=8, frequency_hz=500e6,
                       mapping=mapping)
    traffic = {
        spec.name: ConstantBitRate.from_rate(
            spec.throughput_bytes_per_s, 500e6, config.fmt)
        for spec in channels}
    return config, traffic
