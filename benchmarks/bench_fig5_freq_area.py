"""Figure 5: cell area versus target frequency, arity-5 32-bit router.

Paper series: ~14 k um^2 flat up to ~650 MHz (< 0.015 mm^2), knee after
750 MHz, saturation around 875 MHz at ~18 k um^2.  The benchmark prints
the regenerated series and asserts its shape.
"""

from __future__ import annotations

from repro.experiments.figures import figure5_rows
from repro.experiments.report import format_table


def test_figure5_frequency_area_tradeoff(benchmark):
    rows = benchmark(figure5_rows)
    print()
    print(format_table(rows, title="Figure 5 — area vs target frequency "
                                   "(arity-5, 32-bit, 90 nm)"))
    areas = {row["target_mhz"]: row["area_um2"] for row in rows}
    # Under 0.015 mm^2 up to 650 MHz.
    assert areas[650.0] < 15_100
    # Monotically non-decreasing with target frequency.
    series = [row["area_um2"] for row in rows]
    assert series == sorted(series)
    # The knee: growth in the 750..875 region far exceeds 500..650.
    flat_growth = areas[650.0] - areas[500.0]
    knee_growth = areas[875.0] - areas[750.0]
    assert knee_growth > 4 * flat_growth
    # Saturation near 875 MHz at roughly +30 % over the flat region.
    assert 1.20 < areas[875.0] / areas[500.0] < 1.40
