"""Section VII use case, best-effort side (the Æthereal comparison).

Paper claims regenerated here:

* with the same mapping and paths but best-effort service, application
  composability is lost (traces change when other applications change);
* average latency is lower than with GS for most connections, but the
  latency distribution widens and maxima grow;
* the network needs an operating frequency well above 500 MHz — more
  than 900 MHz in the paper — before the observed latency meets every
  connection's requirement.
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.experiments.section7 import be_crossing_mhz, be_sweep_rows
from repro.simulation.backend import BestEffortBackend
from repro.simulation.composability import run_with_channels
from repro.usecase.runner import (burst_traffic, run_be, run_gs,
                                  service_latencies_ns)

SWEEP_MHZ = [500, 700, 900, 1000, 1100]


def test_section7_be_frequency_sweep(benchmark, section7):
    _, config = section7
    rows = benchmark.pedantic(
        lambda: be_sweep_rows(config, frequencies_mhz=SWEEP_MHZ,
                              n_ticks=2500),
        rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Section VII — best-effort frequency "
                                   "sweep (same paths, no TDM)"))
    crossing = be_crossing_mhz(rows)
    # aelite satisfies everything at 500 MHz; best effort does not...
    assert rows[0]["latency_ok"] < rows[0]["connections"]
    # ...and only catches up far above 500 MHz (paper: > 900 MHz).
    assert crossing is not None and crossing > 900


def test_section7_be_average_lower_max_higher(benchmark, section7):
    _, config = section7
    gs = run_gs(config, n_slots=2000)
    be = benchmark.pedantic(
        lambda: run_be(config, frequency_hz=500e6, n_ticks=2000),
        rounds=1, iterations=1)
    lower_avg = higher_max = compared = 0
    for name in sorted(config.allocation.channels):
        g = service_latencies_ns(gs.result.stats, name)
        b = service_latencies_ns(be.result.stats, name)
        if not g or not b:
            continue
        compared += 1
        if sum(b) / len(b) < sum(g) / len(g):
            lower_avg += 1
        if max(b) > max(g):
            higher_max += 1
    print(f"\nBE vs GS at 500 MHz over {compared} connections: "
          f"lower average for {lower_avg}, higher maximum for "
          f"{higher_max}")
    # "For most connections, the average latency observed with BE
    # service is lower than with GS."
    assert lower_avg > 0.8 * compared
    # "...but the maximum latencies grow significantly": some
    # connections see a worse maximum than under TDM.
    assert higher_max > 0


def test_section7_be_composability_lost(benchmark, section7):
    """Stopping other applications changes a BE connection's timing.

    The comparison targets an application that shares links with its
    neighbours (the clustered floorplan keeps sharing rare but the
    allocator's detours create it); aelite keeps traces bit-identical
    on exactly the same scenario (see the GS composability benchmark),
    best effort does not.
    """
    _, config = section7
    traffic = burst_traffic(config)
    # Pick the application with the most channels on links shared with
    # other applications.
    link_apps: dict[tuple[str, str], set[str]] = {}
    for ca in config.allocation.channels.values():
        for key in ca.path.link_keys():
            link_apps.setdefault(key, set()).add(ca.spec.application)
    shared_links = {key for key, apps in link_apps.items()
                    if len(apps) > 1}
    sharing_count: dict[str, int] = {}
    for ca in config.allocation.channels.values():
        if any(key in shared_links for key in ca.path.link_keys()):
            app = ca.spec.application
            sharing_count[app] = sharing_count.get(app, 0) + 1
    target_app = max(sharing_count, key=lambda a: sharing_count[a])
    target_channels = sorted(
        name for name, ca in config.allocation.channels.items()
        if ca.spec.application == target_app)

    def be_factory(cfg):
        return BestEffortBackend(cfg, frequency_hz=500e6, buffer_flits=2)

    def run(active):
        return run_with_channels(config, traffic, active, 2000,
                                 backend_factory=be_factory)

    all_channels = set(traffic)
    full = benchmark.pedantic(lambda: run(all_channels), rounds=1,
                              iterations=1)
    alone = run(set(target_channels))
    diverged = 0
    for name in target_channels:
        full_trace = [(m, cyc) for m, _slot, cyc in full.trace(name)]
        alone_trace = [(m, cyc) for m, _slot, cyc in alone.trace(name)]
        n = min(len(full_trace), len(alone_trace))
        if full_trace[:n] != alone_trace[:n]:
            diverged += 1
    print(f"\nBE: {diverged}/{len(target_channels)} {target_app} "
          "connections changed timing when the other applications "
          "stopped")
    assert diverged > 0  # composability is lost — unlike aelite
