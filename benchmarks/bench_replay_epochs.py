"""Tier-2 benchmark: incremental vs full schedule recompilation.

Opt in with ``--replay-epochs``.  Builds a synthetic reconfiguration
timeline over the Section VII use case (all 200 connections live, then
a long stop/restart churn sequence — two transitions every ten slots)
and executes it twice through
:meth:`~repro.simulation.flitsim.FlitLevelSimulator.run_timeline`:

* ``incremental=True`` — only the injection-slot schedule rows of the
  channel a transition touches are rebuilt (the production path);
* ``incremental=False`` — the whole 200-channel schedule is recompiled
  at every epoch boundary (the reference).

Both paths must produce bit-identical traces; the benchmark asserts the
incremental path is at least ``TARGET_SPEEDUP`` times faster over the
whole run and records the ratio in ``extra_info`` so the trajectory
lands in ``--benchmark-json`` output.
"""

from __future__ import annotations

import time

import pytest

from repro.core.timeline import ReconfigurationTimeline, TimelineEvent
from repro.simulation.composability import replay_traffic
from repro.simulation.flitsim import FlitLevelSimulator

#: Stop/restart pairs in the churn sequence (two epochs each).
N_TOGGLES = 300
#: Slots between consecutive transitions.
TRANSITION_SPACING = 5
TARGET_SPEEDUP = 2.0


@pytest.fixture
def replay_epochs_enabled(request):
    if not request.config.getoption("--replay-epochs"):
        pytest.skip("pass --replay-epochs to run the epoch benchmark")


def _section7_timeline(config) -> ReconfigurationTimeline:
    """All channels start at slot 0; then a round-robin stop/restart."""
    allocations = sorted(config.allocation.channels.items())
    events = [TimelineEvent(0, "start", name, (ca,))
              for name, ca in allocations]
    slot = TRANSITION_SPACING
    for index in range(N_TOGGLES):
        name, ca = allocations[index % len(allocations)]
        events.append(TimelineEvent(slot, "stop", name))
        slot += TRANSITION_SPACING
        events.append(TimelineEvent(slot, "start", name, (ca,)))
        slot += TRANSITION_SPACING
    return ReconfigurationTimeline(
        config.topology, events, horizon_slots=slot + TRANSITION_SPACING,
        table_size=config.table_size, frequency_hz=config.frequency_hz,
        fmt=config.fmt)


def test_incremental_recompilation_speedup(benchmark,
                                           replay_epochs_enabled,
                                           section7):
    _, config = section7
    timeline = _section7_timeline(config)
    # Traffic on a handful of channels keeps the traces meaningful
    # without letting injection work drown the recompilation signal the
    # benchmark isolates.
    names = sorted(config.allocation.channels)[:8]
    traffic = {name: pattern
               for name, pattern in replay_traffic(timeline).items()
               if name in names}
    sim = FlitLevelSimulator(config)

    def run(incremental: bool):
        start = time.perf_counter()
        result = sim.run_timeline(timeline, traffic=traffic,
                                  incremental=incremental)
        return result, time.perf_counter() - start

    # Warm pass per mode (also the correctness gate: bit-identical
    # traces and flit counts across recompilation strategies).
    warm_inc, _ = run(True)
    warm_full, _ = run(False)
    assert warm_inc.n_epochs == warm_full.n_epochs == 2 * N_TOGGLES + 1
    assert warm_inc.flits_by_channel == warm_full.flits_by_channel
    for name in names:
        assert warm_inc.trace.trace(name) == warm_full.trace.trace(name)

    incremental_s = min(run(True)[1] for _ in range(3))
    full_s = min(run(False)[1] for _ in range(3))
    speedup = full_s / incremental_s

    result, _ = benchmark.pedantic(lambda: run(True), rounds=3,
                                   iterations=1)
    assert result.n_epochs == 2 * N_TOGGLES + 1
    benchmark.extra_info["epochs"] = result.n_epochs
    benchmark.extra_info["full_rebuild_s"] = round(full_s, 6)
    benchmark.extra_info["incremental_s"] = round(incremental_s, 6)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= TARGET_SPEEDUP, (
        f"incremental recompilation only {speedup:.2f}x faster than "
        f"full per-epoch rebuild (target >= {TARGET_SPEEDUP}x)")
