"""Tier-2 benchmark: compiled vs incremental vs full recompilation.

Opt in with ``--replay-epochs``.  Builds a synthetic reconfiguration
timeline over the Section VII use case (all 200 connections live, then
a long stop/restart churn sequence — two transitions every ten slots)
and executes it three ways through
:meth:`~repro.simulation.flitsim.FlitLevelSimulator.run_timeline`:

* compiled — the vectorised epoch executor
  (:mod:`repro.simulation.compiled`; the production path when numpy
  is importable);
* ``compiled=False, incremental=True`` — the per-flit loop rebuilding
  only the schedule rows a transition touches;
* ``compiled=False, incremental=False`` — the per-flit loop
  recompiling the whole 200-channel schedule at every epoch boundary
  (the reference).

All paths must produce bit-identical traces and flit counts.  The
benchmark asserts the incremental per-flit path beats the full rebuild
by ``TARGET_SPEEDUP`` and the compiled executor beats the incremental
per-flit path by ``TARGET_SPEEDUP_COMPILED``, and (with
``--bench-record``) appends the measurement to
``benchmarks/records/BENCH_replay_epochs.json``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.timeline import ReconfigurationTimeline, TimelineEvent
from repro.simulation.compiled import numpy_available
from repro.simulation.composability import replay_traffic
from repro.simulation.flitsim import FlitLevelSimulator

#: Stop/restart pairs in the churn sequence (two epochs each).
N_TOGGLES = 300
#: Slots between consecutive transitions.
TRANSITION_SPACING = 5
#: Per-flit incremental over per-flit full rebuild.
TARGET_SPEEDUP = 2.0
#: Compiled executor over the per-flit incremental path.
TARGET_SPEEDUP_COMPILED = 10.0


@pytest.fixture
def replay_epochs_enabled(request):
    if not request.config.getoption("--replay-epochs"):
        pytest.skip("pass --replay-epochs to run the epoch benchmark")


def _section7_timeline(config) -> ReconfigurationTimeline:
    """All channels start at slot 0; then a round-robin stop/restart."""
    allocations = sorted(config.allocation.channels.items())
    events = [TimelineEvent(0, "start", name, (ca,))
              for name, ca in allocations]
    slot = TRANSITION_SPACING
    for index in range(N_TOGGLES):
        name, ca = allocations[index % len(allocations)]
        events.append(TimelineEvent(slot, "stop", name))
        slot += TRANSITION_SPACING
        events.append(TimelineEvent(slot, "start", name, (ca,)))
        slot += TRANSITION_SPACING
    return ReconfigurationTimeline(
        config.topology, events, horizon_slots=slot + TRANSITION_SPACING,
        table_size=config.table_size, frequency_hz=config.frequency_hz,
        fmt=config.fmt)


def test_incremental_recompilation_speedup(benchmark,
                                           replay_epochs_enabled,
                                           section7, bench_record):
    _, config = section7
    timeline = _section7_timeline(config)
    # Traffic on a handful of channels keeps the traces meaningful
    # without letting injection work drown the recompilation signal the
    # benchmark isolates.
    names = sorted(config.allocation.channels)[:8]
    traffic = {name: pattern
               for name, pattern in replay_traffic(timeline).items()
               if name in names}
    scalar = FlitLevelSimulator(config, compiled=False)
    production = FlitLevelSimulator(config)

    def run(sim, incremental=True):
        start = time.perf_counter()
        result = sim.run_timeline(timeline, traffic=traffic,
                                  incremental=incremental)
        return result, time.perf_counter() - start

    # Warm pass per mode (also the correctness gate: bit-identical
    # traces and flit counts across all recompilation strategies).
    warm_inc, _ = run(scalar)
    warm_full, _ = run(scalar, incremental=False)
    warm_prod, _ = run(production)
    n_epochs = 2 * N_TOGGLES + 1
    assert warm_inc.n_epochs == warm_full.n_epochs == n_epochs
    assert warm_prod.n_epochs == n_epochs
    assert warm_inc.flits_by_channel == warm_full.flits_by_channel
    assert warm_prod.flits_by_channel == warm_inc.flits_by_channel
    for name in names:
        assert warm_inc.trace.trace(name) == warm_full.trace.trace(name)
        assert warm_prod.trace.trace(name) == warm_inc.trace.trace(name)
    assert warm_prod.compiled == numpy_available()

    incremental_s = min(run(scalar)[1] for _ in range(3))
    full_s = min(run(scalar, incremental=False)[1] for _ in range(3))
    production_s = min(run(production)[1] for _ in range(3))
    speedup = full_s / incremental_s
    compiled_speedup = incremental_s / production_s

    result, _ = benchmark.pedantic(lambda: run(production), rounds=3,
                                   iterations=1)
    assert result.n_epochs == n_epochs
    benchmark.extra_info["epochs"] = result.n_epochs
    benchmark.extra_info["full_rebuild_s"] = round(full_s, 6)
    benchmark.extra_info["incremental_s"] = round(incremental_s, 6)
    benchmark.extra_info["compiled_s"] = round(production_s, 6)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["compiled_speedup"] = round(compiled_speedup, 2)
    assert speedup >= TARGET_SPEEDUP, (
        f"incremental recompilation only {speedup:.2f}x faster than "
        f"full per-epoch rebuild (target >= {TARGET_SPEEDUP}x)")
    if numpy_available():
        assert compiled_speedup >= TARGET_SPEEDUP_COMPILED, (
            f"compiled executor only {compiled_speedup:.2f}x faster "
            f"than the per-flit incremental path "
            f"(target >= {TARGET_SPEEDUP_COMPILED}x)")
    bench_record(
        "replay_epochs",
        wall_s=production_s,
        ops_per_s=timeline.horizon_slots / production_s,
        speedup=compiled_speedup,
        executor="compiled" if warm_prod.compiled else "per-flit",
        n_epochs=n_epochs,
        horizon_slots=timeline.horizon_slots,
        incremental_s=incremental_s,
        full_rebuild_s=full_s)
