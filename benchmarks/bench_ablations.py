"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but quantified justifications of constants
the paper fixes: slot-table size, the 4-word FIFO, greedy allocation
order, and the one-slot price of each link pipeline stage.
"""

from __future__ import annotations

from repro.experiments.ablations import (fifo_depth_rows, ordering_rows,
                                         pipeline_stage_rows,
                                         table_size_rows)
from repro.experiments.report import format_table


def test_ablation_table_size(benchmark):
    rows = benchmark(table_size_rows)
    print()
    print(format_table(rows, title="Ablation — slot-table size"))
    by_size = {row["table_size"]: row for row in rows}
    # Too-small tables fail; the paper-scale table (32) succeeds.
    assert by_size[4]["allocated"] == 0
    assert by_size[32]["all_met"]
    # Larger tables monotonically raise the mean latency bound.
    bounds = [row["mean_latency_bound_ns"] for row in rows
              if row["allocated"]]
    assert bounds == sorted(bounds)


def test_ablation_fifo_depth(benchmark):
    rows = benchmark(fifo_depth_rows)
    print()
    print(format_table(rows, title="Ablation — link-stage FIFO depth"))
    by_depth = {row["fifo_words"]: row for row in rows}
    assert not by_depth[3]["tolerates_half_cycle_skew"]
    assert by_depth[4]["tolerates_half_cycle_skew"]
    assert by_depth[4]["verdict"] == "minimum sufficient"
    # Deeper FIFOs only cost area.
    assert by_depth[8]["area_um2"] > by_depth[4]["area_um2"]


def test_ablation_allocation_order(benchmark):
    rows = benchmark(ordering_rows)
    print()
    print(format_table(rows, title="Ablation — allocation order"))
    by_order = {row["order"]: row for row in rows}
    # Hardest-first must succeed on the reference workload.
    assert by_order["tightness"]["allocated"] > 0
    assert by_order["tightness"]["all_met"]


def test_ablation_pipeline_stages(benchmark):
    rows = benchmark(pipeline_stage_rows)
    print()
    print(format_table(rows, title="Ablation — link pipeline stages"))
    slots = [row["traversal_slots"] for row in rows]
    # Each stage on each of the two router-router links adds one slot.
    assert slots == [4, 6, 8, 10]
