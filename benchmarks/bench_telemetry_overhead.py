"""Tier-2 benchmark: the cost of *enabled* telemetry on the hot path.

Opt in with ``--telemetry-overhead``.  Runs the admission-churn
workload of ``bench_service_churn.py`` (seeded churn on the Section VII
mesh, warm allocator caches) twice per round — once with the shared
``NULL_TELEMETRY`` default, once with a live :class:`repro.Telemetry`
hub — alternating the order every round, and gates
``min(on) / min(off) - 1`` below ``MAX_OVERHEAD``.

The point of the gate is architectural: the hot path pays plain
integer tallies and list appends (folded into the registry lazily,
when the hub is read), so enabling full metrics + span capture must
stay in the noise band of the admission loop.  Three measurement
details make a 5% gate hold on noisy shared hosts:

* the collector is disabled around each timed run (``gc.disable``) —
  collection pauses otherwise dominate sub-second timings;
* the estimator is the ratio of per-mode *minima* over many
  alternating rounds: the minimum converges to the quiet-host time
  for both modes, while medians of sub-second runs carry
  multi-percent scheduler/steal noise.  A genuine hot-path regression
  inflates every round, minima included; and
* rounds are spread over ``PROCESSES`` fresh interpreter processes:
  code-layout luck (ASLR) can bias one mode by several percent for a
  whole process lifetime, so each mode's minimum is taken across
  independently laid-out interpreters.

Every round also re-asserts the observability contract itself — the
telemetry-on report is byte-identical to the telemetry-off report,
within each process and across processes.

With ``--bench-record`` the measurement lands in
``benchmarks/records/BENCH_telemetry_overhead.json``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

TABLE_SIZE = 32
FREQUENCY_HZ = 500e6
#: Paired (off, on) rounds measured inside each worker process.
ROUNDS_PER_PROCESS = 5
#: Fresh interpreter processes (independent code layouts) per mode.
PROCESSES = 3
#: Enabled-mode wall-clock ceiling, relative to disabled mode.
MAX_OVERHEAD = 0.05

#: The measurement body, run in a fresh interpreter per sample so that
#: per-process code-layout bias is resampled.  Prints one JSON object.
_WORKER = f"""
import gc, hashlib, json, time

from repro.core.allocation import SlotAllocator
from repro.service import ChurnSpec, ChurnWorkload, SessionService
from repro.telemetry import Telemetry
from repro.topology.builders import concentrated_mesh

topology = concentrated_mesh(4, 3, nis_per_router=4)
workload = ChurnWorkload(
    ChurnSpec(n_sessions=2500, arrival_rate_per_s=5000.0),
    topology, seed=42)
events = workload.events()
allocator = SlotAllocator(topology, table_size={TABLE_SIZE},
                          frequency_hz={FREQUENCY_HZ})


def churn_run(telemetry):
    # The allocator is shared across runs for warm caches; rebind its
    # instruments explicitly so an enabled run never leaks its hub
    # into the next disabled one.
    allocator.set_telemetry(telemetry)
    service = SessionService(topology, allocator=allocator,
                             record_events=False, telemetry=telemetry)
    # Collection pauses land arbitrarily in one mode or the other and
    # are bigger than the effect being measured; park the collector
    # for the timed section.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        report = service.run(events)
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    return report, wall


# Warm passes — one per mode, so the allocator's path/quote caches
# *and* the interpreter's enabled-path code (span/flush machinery) are
# both hot before anything is timed.
warm_report, _ = churn_run(None)
assert warm_report.invariant["ok"]
assert warm_report.totals["accept_rate"] > 0.9
baseline_json = warm_report.to_json()
churn_run(Telemetry("overhead-warmup"))

off_walls, on_walls = [], []
hub = None
for round_index in range({ROUNDS_PER_PROCESS}):
    # Alternate the mode order so slow drift (thermal, host load)
    # cancels instead of loading one mode.
    hub = Telemetry("overhead-bench")
    if round_index % 2:
        report_on, wall_on = churn_run(hub)
        report_off, wall_off = churn_run(None)
    else:
        report_off, wall_off = churn_run(None)
        report_on, wall_on = churn_run(hub)
    off_walls.append(wall_off)
    on_walls.append(wall_on)
    # The headline contract: instrumentation never leaks into the
    # canonical report.
    assert report_on.to_json() == baseline_json
    assert report_off.to_json() == baseline_json

# ... and the instrumented runs actually measured the hot path.
accepts = hub.value("admission.decisions", outcome="accept")
assert accepts and accepts > 0

print(json.dumps({{
    "off_walls": off_walls,
    "on_walls": on_walls,
    "n_events": len(events),
    "accepts": accepts,
    "report_sha": hashlib.sha256(
        baseline_json.encode("utf-8")).hexdigest(),
}}))
"""


@pytest.fixture
def telemetry_overhead_enabled(request):
    if not request.config.getoption("--telemetry-overhead"):
        pytest.skip("pass --telemetry-overhead to run the overhead gate")


def test_telemetry_overhead_below_gate(telemetry_overhead_enabled,
                                       bench_record):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    samples = []
    # Serial on purpose: parallel workers would contend for the CPU
    # and time each other's noise.
    for _ in range(PROCESSES):
        proc = subprocess.run([sys.executable, "-c", _WORKER],
                              capture_output=True, text=True, env=env,
                              timeout=600)
        assert proc.returncode == 0, proc.stderr
        samples.append(json.loads(proc.stdout))

    # Cross-process determinism: every interpreter produced the same
    # canonical report and counted the same accepts.
    assert len({s["report_sha"] for s in samples}) == 1
    assert len({s["accepts"] for s in samples}) == 1

    off_walls = [w for s in samples for w in s["off_walls"]]
    on_walls = [w for s in samples for w in s["on_walls"]]
    off_s = min(off_walls)
    on_s = min(on_walls)
    overhead = on_s / off_s - 1.0
    n_events = samples[0]["n_events"]
    bench_record("telemetry_overhead", wall_s=on_s,
                 ops_per_s=n_events / on_s,
                 overhead=round(overhead, 4),
                 baseline_wall_s=round(off_s, 6),
                 n_events=n_events, processes=PROCESSES,
                 rounds_per_process=ROUNDS_PER_PROCESS)
    assert overhead < MAX_OVERHEAD, (
        f"enabled telemetry costs {overhead:.1%} on the admission hot "
        f"path (gate: {MAX_OVERHEAD:.0%}; off {off_s:.4f}s vs on "
        f"{on_s:.4f}s over {PROCESSES}x{ROUNDS_PER_PROCESS} "
        f"interleaved rounds)")
