"""Section VII cost comparisons: FIFOs, mesochronous router, ratios.

Paper anchors regenerated here:

* 4-word bi-synchronous FIFO: ~1,500 um^2 custom, ~3,300 um^2 standard
  cell;
* complete mesochronous arity-5 router: ~0.032 mm^2;
* aelite versus the Æthereal GS+BE router: roughly 5x smaller, ~1.5x
  the frequency; versus [4] (0.082 mm^2) and [7] (0.12 mm^2);
* arity-6, 64-bit router: tens of GB/s for ~0.03 mm^2;
* use-case router-network cost roughly 5x higher for the GS+BE option
  at its required operating point.
"""

from __future__ import annotations

from repro.experiments.area_comparison import (fifo_rows,
                                               headline_ratio_rows,
                                               mesochronous_rows,
                                               related_work_rows,
                                               throughput_rows)
from repro.experiments.report import format_table
from repro.experiments.section7 import cost_rows


def test_fifo_and_link_stage_costs(benchmark):
    rows = benchmark(fifo_rows)
    print()
    print(format_table(rows, title="Bi-synchronous FIFO cost (4 words)"))
    print()
    print(format_table(mesochronous_rows(),
                       title="Mesochronous arity-5 router"))
    by_name = {row["fifo"]: row["area_um2"] for row in rows}
    assert 1_300 <= by_name["4-word custom [18]"] <= 1_800
    assert 3_000 <= by_name["4-word standard-cell [14]"] <= 3_700
    meso_total = mesochronous_rows()[-1]["area_mm2"]
    assert 0.028 <= meso_total <= 0.037  # paper: ~0.032 mm^2


def test_related_work_and_headline_ratios(benchmark):
    rows = benchmark(related_work_rows)
    print()
    print(format_table(rows, title="Related-work comparison (arity-5, "
                                   "90 nm)"))
    ratios = headline_ratio_rows()
    print()
    print(format_table(ratios, title="aelite vs AEthereal GS+BE"))
    area_ratio = next(r["ratio"] for r in ratios
                      if r["metric"] == "area (mm^2)")
    freq_ratio = next(r["ratio"] for r in ratios
                      if r["metric"] == "frequency (MHz)")
    # Paper: "roughly 5x smaller area and 1.5x the frequency".
    assert 3.5 <= area_ratio <= 6.0
    assert 1.3 <= freq_ratio <= 1.7
    # aelite + links is cheaper than both published reference designs.
    by_design = {row["design"]: row["area_mm2"] for row in rows}
    aelite_meso = by_design["aelite router + mesochronous links"]
    assert aelite_meso < by_design["Miro Panades et al. [4] mesochronous"]
    assert aelite_meso < by_design["Beigne et al. [7] asynchronous"]


def test_throughput_per_area(benchmark):
    rows = benchmark(throughput_rows)
    print()
    print(format_table(rows, title="Raw throughput per area"))
    arity6_64 = next(r for r in rows if r["router"] == "arity-6, 64-bit")
    # Paper: 64 GB/s at ~0.03 mm^2 — we require >= 64 GB/s at <= 0.04.
    assert arity6_64["aggregate_gb_s"] >= 64
    assert arity6_64["area_mm2"] <= 0.040


def test_usecase_network_cost_ratio(benchmark, section7):
    _, config = section7
    rows = benchmark.pedantic(lambda: cost_rows(config), rounds=1,
                              iterations=1)
    print()
    print(format_table(rows, title="Section VII — router-network cost"))
    ratio = rows[-1]["network_mm2"]
    # Paper: "the cost of the router network is roughly 5 times as high".
    assert 4.0 <= ratio <= 7.0
