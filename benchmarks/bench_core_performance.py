"""Throughput benchmarks of the library's own hot paths.

These are classic pytest-benchmark measurements (not paper artefacts):
how fast the allocator solves the 200-connection use case and how many
flit cycles per second each simulator executes.  They guard against
performance regressions in the core data structures.
"""

from __future__ import annotations

from repro.simulation.flitsim import FlitLevelSimulator
from repro.simulation.cyclesim import DetailedNetwork
from repro.usecase.generator import generate_section7
from repro.usecase.runner import burst_traffic, configure_section7


def test_perf_generate_section7(benchmark):
    instance = benchmark(generate_section7)
    assert len(instance.use_case.channels) == 200


def test_perf_allocate_section7(benchmark, section7):
    instance, _ = section7

    def allocate():
        _, config = configure_section7(instance)
        return config

    config = benchmark.pedantic(allocate, rounds=3, iterations=1)
    assert len(config.allocation.channels) == 200


def test_perf_flitsim_section7(benchmark, section7):
    _, config = section7
    traffic = burst_traffic(config)

    def run():
        sim = FlitLevelSimulator(config)
        for name, pattern in traffic.items():
            sim.set_traffic(name, pattern)
        return sim.run(1000)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.simulated_slots == 1000


def test_perf_detailed_sim_small_mesh(benchmark, mesh_small_config):
    config, traffic = mesh_small_config

    def run():
        network = DetailedNetwork(config, clocking="synchronous",
                                  traffic=traffic, horizon_slots=300)
        return network.run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.simulated_cycles == 900
