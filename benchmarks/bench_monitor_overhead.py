"""Tier-2 benchmark: the cost of the armed conformance watchdog.

Opt in with ``--monitor-overhead``.  Runs the admission-churn workload
of ``bench_service_churn.py`` (seeded churn on the Section VII mesh,
warm allocator caches, ``record_events=False``) twice per round — once
with ``monitor=None``, once with ``monitor=MonitorSpec()`` —
alternating the order every round, and gates ``min(on) / min(off) - 1``
below ``MAX_OVERHEAD``.

The gate pins the watchdog's architecture: quoting analytical bounds
inline on every accepted admission would cost ~10% of the admission
loop, so the armed hot path only *retains* each accepted (immutable)
``ChannelAllocation`` — one tuple append — and
``conformance_report()`` computes the bounds at read time, exactly the
deferred-aggregation shape the telemetry capture already uses.  The
timed section covers the armed churn run; the deferred fold is timed
separately and lands in the record's ``extra`` (it is a per-report
cost, not a per-event one).  The measurement discipline — collector
parked around timed runs, per-mode minima across alternating rounds,
rounds spread over fresh interpreter processes — is inherited from
``bench_telemetry_overhead.py``; see its docstring for why each detail
is load-bearing on noisy shared hosts.

Every round also re-asserts the watchdog's own contracts: the
monitored run's service report is byte-identical to the unmonitored
one, and the conformance report is byte-identical across rounds and
across processes.

With ``--bench-record`` the measurement lands in
``benchmarks/records/BENCH_monitor_overhead.json``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

TABLE_SIZE = 32
FREQUENCY_HZ = 500e6
#: Paired (off, on) rounds measured inside each worker process.
ROUNDS_PER_PROCESS = 5
#: Fresh interpreter processes (independent code layouts) per mode.
PROCESSES = 3
#: Monitored-mode wall-clock ceiling, relative to unmonitored mode.
MAX_OVERHEAD = 0.05

#: The measurement body, run in a fresh interpreter per sample so that
#: per-process code-layout bias is resampled.  Prints one JSON object.
_WORKER = f"""
import gc, hashlib, json, time

from repro.core.allocation import SlotAllocator
from repro.service import ChurnSpec, ChurnWorkload, SessionService
from repro.telemetry.monitor import MonitorSpec
from repro.topology.builders import concentrated_mesh

topology = concentrated_mesh(4, 3, nis_per_router=4)
workload = ChurnWorkload(
    ChurnSpec(n_sessions=2500, arrival_rate_per_s=5000.0),
    topology, seed=42)
events = workload.events()
allocator = SlotAllocator(topology, table_size={TABLE_SIZE},
                          frequency_hz={FREQUENCY_HZ})


def churn_run(monitor):
    service = SessionService(topology, allocator=allocator,
                             record_events=False, monitor=monitor)
    # Collection pauses land arbitrarily in one mode or the other and
    # are bigger than the effect being measured; park the collector
    # for the timed section.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        report = service.run(events)
        wall = time.perf_counter() - start
        conformance, fold_wall = None, 0.0
        if monitor is not None:
            start = time.perf_counter()
            conformance = service.conformance_report(scenario="bench")
            fold_wall = time.perf_counter() - start
    finally:
        gc.enable()
    return report, conformance, wall, fold_wall


# Warm passes — one per mode, so the allocator's path and bound caches
# *and* the monitored-path code are hot before anything is timed.
warm_report, _, _, _ = churn_run(None)
assert warm_report.invariant["ok"]
assert warm_report.totals["accept_rate"] > 0.9
baseline_json = warm_report.to_json()
churn_run(MonitorSpec())

off_walls, on_walls, fold_walls = [], [], []
conformance_json = None
for round_index in range({ROUNDS_PER_PROCESS}):
    # Alternate the mode order so slow drift (thermal, host load)
    # cancels instead of loading one mode.
    if round_index % 2:
        report_on, conformance, wall_on, fold = churn_run(MonitorSpec())
        report_off, _, wall_off, _ = churn_run(None)
    else:
        report_off, _, wall_off, _ = churn_run(None)
        report_on, conformance, wall_on, fold = churn_run(MonitorSpec())
    off_walls.append(wall_off)
    on_walls.append(wall_on)
    fold_walls.append(fold)
    # The watchdog's contracts: monitoring never leaks into the
    # canonical report, and its own verdict is deterministic.
    assert report_on.to_json() == baseline_json
    assert report_off.to_json() == baseline_json
    assert conformance.n_violated == 0, conformance.summary()
    if conformance_json is None:
        conformance_json = conformance.to_json()
    assert conformance.to_json() == conformance_json

print(json.dumps({{
    "off_walls": off_walls,
    "on_walls": on_walls,
    "fold_walls": fold_walls,
    "n_events": len(events),
    "n_monitored": len(json.loads(conformance_json)["channels"]),
    "report_sha": hashlib.sha256(
        baseline_json.encode("utf-8")).hexdigest(),
    "conformance_sha": hashlib.sha256(
        conformance_json.encode("utf-8")).hexdigest(),
}}))
"""


@pytest.fixture
def monitor_overhead_enabled(request):
    if not request.config.getoption("--monitor-overhead"):
        pytest.skip("pass --monitor-overhead to run the overhead gate")


def test_monitor_overhead_below_gate(monitor_overhead_enabled,
                                     bench_record):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    samples = []
    # Serial on purpose: parallel workers would contend for the CPU
    # and time each other's noise.
    for _ in range(PROCESSES):
        proc = subprocess.run([sys.executable, "-c", _WORKER],
                              capture_output=True, text=True, env=env,
                              timeout=600)
        assert proc.returncode == 0, proc.stderr
        samples.append(json.loads(proc.stdout))

    # Cross-process determinism: every interpreter produced the same
    # canonical service report AND the same conformance report.
    assert len({s["report_sha"] for s in samples}) == 1
    assert len({s["conformance_sha"] for s in samples}) == 1
    assert len({s["n_monitored"] for s in samples}) == 1

    off_walls = [w for s in samples for w in s["off_walls"]]
    on_walls = [w for s in samples for w in s["on_walls"]]
    fold_walls = [w for s in samples for w in s["fold_walls"]]
    off_s = min(off_walls)
    on_s = min(on_walls)
    overhead = on_s / off_s - 1.0
    n_events = samples[0]["n_events"]
    bench_record("monitor_overhead", wall_s=on_s,
                 ops_per_s=n_events / on_s,
                 overhead=round(overhead, 4),
                 baseline_wall_s=round(off_s, 6),
                 fold_wall_s=round(min(fold_walls), 6),
                 n_monitored=samples[0]["n_monitored"],
                 n_events=n_events, processes=PROCESSES,
                 rounds_per_process=ROUNDS_PER_PROCESS)
    assert overhead < MAX_OVERHEAD, (
        f"armed conformance monitoring costs {overhead:.1%} on the "
        f"admission hot path (gate: {MAX_OVERHEAD:.0%}; off "
        f"{off_s:.4f}s vs on {on_s:.4f}s over "
        f"{PROCESSES}x{ROUNDS_PER_PROCESS} interleaved rounds)")
