"""Tier-2 benchmark: analytical pruning vs exhaustive design screening.

Opt in with ``--design-search``.  Dimensions a churn-derived workload
(180 expected-concurrent sessions, Little's law over a hot arrival
profile) across a 24-candidate screening grid — 12 topologies x 2
slot-table sizes — twice through the same
:class:`~repro.design.explorer.DesignExplorer`:

* ``prune=True`` — the production path: every candidate first passes
  the analytical lower bounds (NI serialisation, aggregate capacity,
  coordinate bisection, latency floors); provably infeasible
  candidates never reach the allocator, and survivors' bisections are
  floor-tightened;
* ``prune=False`` — the reference: every candidate goes straight to
  allocation, so each infeasible one costs a full failing ``configure``
  at its frequency ceiling.

Both paths must agree on which candidates are feasible (pruning is a
sound screen, not a heuristic), and the benchmark asserts the pruned
search is at least ``TARGET_SPEEDUP`` times faster over the whole grid,
recording the ratio in ``extra_info`` for the trajectory.
"""

from __future__ import annotations

import time

import pytest

from repro.campaign.spec import TopologySpec
from repro.design import DesignExplorer, DesignSpace, workload_from_churn
from repro.service.churn import ChurnSpec

TARGET_SPEEDUP = 2.0

#: Screening grid: one feasible corner (the torus at a 16-slot table),
#: the rest analytically infeasible for the workload below.
GRID_TOPOLOGIES = (
    TopologySpec(kind="mesh", cols=3, rows=3, nis_per_router=4),
    TopologySpec(kind="cmesh", cols=4, rows=3, nis_per_router=4),
    TopologySpec(kind="mesh", cols=4, rows=3, nis_per_router=3),
    TopologySpec(kind="mesh", cols=4, rows=4, nis_per_router=3),
    TopologySpec(kind="mesh", cols=5, rows=2, nis_per_router=4),
    TopologySpec(kind="mesh", cols=5, rows=3, nis_per_router=3),
    TopologySpec(kind="mesh", cols=6, rows=2, nis_per_router=3),
    TopologySpec(kind="torus", cols=3, rows=3, nis_per_router=4),
    TopologySpec(kind="ring", cols=8, nis_per_router=4),
    TopologySpec(kind="ring", cols=9, nis_per_router=4),
    TopologySpec(kind="ring", cols=10, nis_per_router=4),
    TopologySpec(kind="ring", cols=12, nis_per_router=3),
)
TABLE_SIZES = (8, 16)


@pytest.fixture
def design_search_enabled(request):
    if not request.config.getoption("--design-search"):
        pytest.skip("pass --design-search to run the design benchmark")


def _space(prune: bool) -> DesignSpace:
    return DesignSpace(topologies=GRID_TOPOLOGIES,
                       table_sizes=TABLE_SIZES,
                       mappings=("round_robin",),
                       max_frequency_mhz=600.0,
                       tolerance_mhz=50.0,
                       prune=prune)


def _ok_points(report) -> dict[str, float]:
    return {r["scenario"]: r["result"]["operating_frequency_mhz"]
            for r in report.records if r["status"] == "ok"}


def test_pruned_screening_speedup(benchmark, design_search_enabled):
    use_case = workload_from_churn(
        ChurnSpec(n_sessions=200, arrival_rate_per_s=9000.0),
        seed=2009, n_ips=32)

    def explore(prune: bool):
        explorer = DesignExplorer(use_case=use_case, space=_space(prune),
                                  workers=1)
        start = time.perf_counter()
        report = explorer.explore()
        return report, time.perf_counter() - start

    # Warm pass per mode, doubling as the soundness gate: pruning may
    # only skip provably infeasible work, never change the feasible set.
    pruned_report, _ = explore(True)
    full_report, _ = explore(False)
    assert pruned_report.count("pruned") >= len(GRID_TOPOLOGIES)
    assert full_report.count("pruned") == 0
    pruned_ok = _ok_points(pruned_report)
    full_ok = _ok_points(full_report)
    assert set(pruned_ok) == set(full_ok) and pruned_ok
    for name, mhz in pruned_ok.items():
        assert abs(mhz - full_ok[name]) <= 50.0  # within the tolerance
    assert pruned_report.front

    pruned_s = min(explore(True)[1] for _ in range(3))
    full_s = min(explore(False)[1] for _ in range(3))
    speedup = full_s / pruned_s

    report, _ = benchmark.pedantic(lambda: explore(True), rounds=3,
                                   iterations=1)
    benchmark.extra_info["candidates"] = report.n_candidates
    benchmark.extra_info["pruned"] = report.count("pruned")
    benchmark.extra_info["feasible"] = report.count("ok")
    benchmark.extra_info["exhaustive_s"] = round(full_s, 6)
    benchmark.extra_info["pruned_s"] = round(pruned_s, 6)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= TARGET_SPEEDUP, (
        f"analytical pruning only {speedup:.2f}x faster than exhaustive "
        f"screening (target >= {TARGET_SPEEDUP}x)")
