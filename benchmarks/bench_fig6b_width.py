"""Figure 6(b): area and maximum frequency versus data width (arity 6).

Paper series: area linear in width from ~20 k to ~160 k um^2; maximum
frequency declining linearly from ~880 to ~740 MHz.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import figure6b_rows
from repro.experiments.report import format_table


def test_figure6b_width_scaling(benchmark):
    rows = benchmark(figure6b_rows)
    print()
    print(format_table(rows, title="Figure 6(b) — area & fmax vs data "
                                   "width (arity-6, max effort)"))
    widths = np.array([row["word_width_bits"] for row in rows],
                      dtype=float)
    areas = np.array([row["area_um2"] for row in rows], dtype=float)
    freqs = np.array([row["max_frequency_mhz"] for row in rows],
                     dtype=float)
    # Area linear in width (R^2 >= 0.999).
    coeffs = np.polyfit(widths, areas, 1)
    prediction = np.polyval(coeffs, widths)
    r_squared = 1 - np.sum((areas - prediction) ** 2) / \
        np.sum((areas - areas.mean()) ** 2)
    assert r_squared > 0.999
    # ~32-bit point around 20-25 k, 256-bit around 140-170 k.
    assert 19_000 <= areas[0] <= 27_000
    assert 140_000 <= areas[-1] <= 175_000
    # Frequency declines with width, roughly 15 % over the sweep.
    assert list(freqs) == sorted(freqs, reverse=True)
    assert 0.80 <= freqs[-1] / freqs[0] <= 0.92
