"""Tier-2 benchmark: session-churn throughput of the admission service.

Opt in with ``--service-churn``.  Runs a 10 000-event seeded churn trace
(Poisson arrivals, heavy-tailed holds, the default QoS mix) on the
Section VII mesh (4x3 concentrated mesh, 4 NIs per router, 32-slot
tables at 500 MHz) and measures steady-state control-plane throughput.

The allocator — and with it the k-shortest-path and quote caches — is
warmed by a first full pass, so the measurement tracks the admission
*hot path* (bitmask intersection + single-anchor spreading + commit),
which is the figure the service is engineered around: the issue target
is >= 10k session events/sec, asserted here and recorded in
``extra_info`` so the trajectory lands in ``--benchmark-json`` output.
"""

from __future__ import annotations

import time

import pytest

from repro.core.allocation import SlotAllocator
from repro.service import ChurnSpec, ChurnWorkload, SessionService
from repro.topology.builders import concentrated_mesh

TABLE_SIZE = 32
FREQUENCY_HZ = 500e6
TARGET_EVENTS_PER_S = 10_000


@pytest.fixture
def service_churn_enabled(request):
    if not request.config.getoption("--service-churn"):
        pytest.skip("pass --service-churn to run the churn benchmark")


def test_service_churn_throughput(benchmark, service_churn_enabled):
    topology = concentrated_mesh(4, 3, nis_per_router=4)
    workload = ChurnWorkload(
        ChurnSpec(n_sessions=5000, arrival_rate_per_s=5000.0),
        topology, seed=42)
    events = workload.events()
    allocator = SlotAllocator(topology, table_size=TABLE_SIZE,
                              frequency_hz=FREQUENCY_HZ)

    def churn_run():
        service = SessionService(topology, allocator=allocator,
                                 record_events=False)
        start = time.perf_counter()
        report = service.run(events)
        return report, time.perf_counter() - start

    # Warm pass: populates the allocator's path/quote caches (and is
    # also the correctness gate — clean run, invariant intact).
    warm_report, _ = churn_run()
    assert warm_report.invariant["ok"]
    assert warm_report.totals["n_events"] == len(events)
    assert warm_report.totals["accept_rate"] > 0.9

    report, wall_s = benchmark.pedantic(churn_run, rounds=3, iterations=1)
    events_per_s = len(events) / wall_s
    benchmark.extra_info["n_events"] = len(events)
    benchmark.extra_info["events_per_s"] = round(events_per_s)
    benchmark.extra_info["admit_mean_us"] = round(
        report.timing.get("admit_mean_us", 0.0), 1)
    # Determinism under churn: the warm and measured runs replay the
    # identical stream, so their canonical reports must be byte-equal.
    assert report.to_json() == warm_report.to_json()
    assert events_per_s >= TARGET_EVENTS_PER_S, (
        f"admission hot path regressed: {events_per_s:,.0f} events/s "
        f"< {TARGET_EVENTS_PER_S:,} target")
