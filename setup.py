"""Legacy setup shim: the environment's setuptools lacks PEP 660 wheel support."""
from setuptools import setup

setup()
