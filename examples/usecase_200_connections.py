"""The paper's headline experiment: 200 connections, four applications.

Runs the complete Section VII flow and prints every table:

* allocation of 200 guaranteed-service connections (70 IPs, 4x3
  concentrated mesh) at 500 MHz;
* the guaranteed-service verification (every requirement met, every
  measured latency within its analytical bound);
* the application-isolation check (bit-identical traces);
* the best-effort frequency sweep (needs far more than 500 MHz);
* the router-network cost comparison (roughly 5x).

Run with:  python examples/usecase_200_connections.py
(takes on the order of half a minute)
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.experiments.section7 import (be_crossing_mhz, be_sweep_rows,
                                        composability_rows, cost_rows,
                                        section7_setup, usecase_gs_rows)


def main() -> None:
    instance, config = section7_setup()
    params = instance.parameters
    print(f"use case: {params.n_connections} connections, "
          f"{params.n_applications} applications, {params.n_ips} IPs on "
          f"a {params.cols}x{params.rows} mesh with "
          f"{params.nis_per_router} NIs/router")
    print(f"aggregate demand: "
          f"{instance.total_throughput_bytes_per_s / 1e9:.1f} GB/s; "
          f"allocation at {config.frequency_hz / 1e6:.0f} MHz uses "
          f"{config.allocation.mean_link_utilisation():.1%} of the link "
          "slots on average\n")

    print(format_table(usecase_gs_rows(config),
                       title="aelite guaranteed services @ 500 MHz"))
    print()
    print(format_table(composability_rows(config),
                       title="application isolation (trace comparison)"))
    print()
    sweep = be_sweep_rows(config)
    print(format_table(sweep, title="best-effort baseline: frequency "
                                    "sweep (same paths)"))
    crossing = be_crossing_mhz(sweep)
    print(f"\nbest effort meets all requirements only at "
          f"{crossing:.0f} MHz (aelite: 500 MHz)")
    print()
    print(format_table(cost_rows(config, be_required_mhz=crossing or 1000),
                       title="router-network silicon cost"))


if __name__ == "__main__":
    main()
