"""Figure 1 walkthrough: contention-free routing with a 4-slot table.

Recreates the paper's introductory example: two IP cores communicate
over a two-router network; connection cA holds slots {0, 2}, connection
cB holds slot {1}, and the reservation shifts by one slot per hop so no
two flits ever meet on a link.  The script prints the slot tables along
both paths and a slot-by-slot occupancy diagram from an actual
simulation.

Run with:  python examples/contention_free_routing.py
"""

from __future__ import annotations

from repro.core import (MB, Application, ChannelSpec, UseCase, configure,
                        shifted)
from repro.simulation import FlitLevelSimulator, Saturating
from repro.topology import Mapping, custom


def main() -> None:
    # The paper's Figure 1 structure: IP_A -> NI_A -> R -> R -> NI_B,
    # with cB entering at the first router from its own NI.
    topology = custom(
        router_edges=[("r_left", "r_right"), ("r_right", "r_left")],
        nis=[("ni_a", "r_left"), ("ni_b", "r_right"),
             ("ni_c", "r_left")])
    channels = (
        ChannelSpec("cA", "ip_a", "ip_b", 100 * MB, application="figure1"),
        ChannelSpec("cB", "ip_c", "ip_b", 50 * MB, application="figure1"),
    )
    use_case = UseCase("figure1", (Application("figure1", channels),))
    mapping = Mapping({"ip_a": "ni_a", "ip_b": "ni_b", "ip_c": "ni_c"})
    config = configure(topology, use_case, table_size=4,
                       frequency_hz=500e6, mapping=mapping)

    print("slot reservations (table of 4 slots, shift of one per hop):\n")
    for name in ("cA", "cB"):
        ca = config.allocation.channel(name)
        print(f"  connection {name}: injection slots "
              f"{sorted(ca.slots)} on path {ca.path!r}")
        for link, shift in zip(ca.path.links, ca.path.link_shifts):
            slots = sorted(shifted(s, shift, 4) for s in ca.slots)
            print(f"    link {link.src:8s} -> {link.dst:8s} "
                  f"slots {slots}")
        print()

    # Simulate both connections saturated and draw the link occupancy.
    sim = FlitLevelSimulator(config, check_contention=True)
    for spec in channels:
        sim.set_traffic(spec.name, Saturating(
            config.fmt.payload_words_per_flit, config.fmt.flit_size))
    result = sim.run(12)

    print("slot-by-slot link occupancy over three table rotations")
    print("(no two flits ever share a link in a slot):\n")
    occupancy: dict[tuple[str, str], dict[int, str]] = {}
    for name in ("cA", "cB"):
        ca = config.allocation.channel(name)
        for record in result.stats.channel(name).injections:
            for link, shift in zip(ca.path.links, ca.path.link_shifts):
                cell = occupancy.setdefault(link.key, {})
                cell[record.slot_index + shift] = name
    links = sorted(occupancy)
    header = "  link                  | " + " | ".join(
        f"s{i:02d}" for i in range(12))
    print(header)
    print("  " + "-" * (len(header) - 2))
    for key in links:
        cells = [occupancy[key].get(i, " . ").center(3)
                 for i in range(12)]
        print(f"  {key[0]:>8s} -> {key[1]:8s} | " + " | ".join(cells))
    print("\nsimulation ran with contention checking enabled: the TDM")
    print("schedule guarantees the exclusivity shown above.")


if __name__ == "__main__":
    main()
