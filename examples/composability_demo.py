"""Composability: applications cannot disturb each other — at all.

Two applications share a 2x2 mesh.  The demo runs the network three
times: both applications active, the 'decoder' application alone, and
with the 'logger' application misbehaving (offering far more traffic
than contracted).  Under aelite's TDM the decoder's flit trace is
bit-identical in all three runs.  The same scenario on the best-effort
baseline shows measurably different timing — the isolation the paper's
Section VII claims is lost without TDM.

Run with:  python examples/composability_demo.py
"""

from __future__ import annotations

from repro.baseline import BeNetworkSimulator
from repro.core import MB, Application, ChannelSpec, UseCase, configure
from repro.simulation import (BernoulliMessages, Saturating,
                              run_with_channels)
from repro.topology import Mapping, mesh


def main() -> None:
    topology = mesh(2, 2, nis_per_router=2)
    decoder = Application("decoder", (
        ChannelSpec("dec_in", "reader", "decoder", 90 * MB,
                    max_latency_ns=250.0, application="decoder"),
        ChannelSpec("dec_out", "decoder", "display", 120 * MB,
                    max_latency_ns=250.0, application="decoder"),
    ))
    logger = Application("logger", (
        ChannelSpec("log_a", "sensor0", "storage", 40 * MB,
                    application="logger"),
        ChannelSpec("log_b", "sensor1", "storage", 40 * MB,
                    application="logger"),
    ))
    use_case = UseCase("demo", (decoder, logger))
    mapping = Mapping({
        "reader": "ni0_0_0", "decoder": "ni1_0_0", "display": "ni1_1_0",
        "sensor0": "ni0_0_1", "sensor1": "ni0_1_0",
        "storage": "ni1_0_1",
    })
    config = configure(topology, use_case, table_size=16,
                       frequency_hz=500e6, mapping=mapping)

    traffic = {name: BernoulliMessages(0.4, 2, 3, seed=index)
               for index, name in enumerate(sorted(
                   config.allocation.channels))}
    decoder_channels = {"dec_in", "dec_out"}
    all_channels = set(traffic)

    print("=== aelite (TDM): three runs, decoder trace compared ===")
    full = run_with_channels(config, traffic, all_channels, 1500)
    alone = run_with_channels(config, traffic, decoder_channels, 1500)
    noisy_traffic = dict(traffic)
    noisy_traffic["log_a"] = Saturating(2, 3)  # logger misbehaves
    noisy_traffic["log_b"] = Saturating(2, 3)
    noisy = run_with_channels(config, noisy_traffic, all_channels, 1500)
    for name in sorted(decoder_channels):
        same_alone = full.trace(name) == alone.trace(name)
        same_noisy = full.trace(name) == noisy.trace(name)
        n = len(full.trace(name))
        print(f"  {name}: {n} flits — trace identical when logger "
              f"stopped: {same_alone}; when logger floods: {same_noisy}")
        assert same_alone and same_noisy

    print("\n=== best-effort baseline: same scenario ===")

    def run_be(active, patterns):
        sim = BeNetworkSimulator(config, buffer_flits=2)
        for name, pattern in patterns.items():
            if name in active:
                sim.set_traffic(name, pattern)
        result = sim.run(1500)
        return {name: tuple((d.message_id, d.delivered_cycle)
                            for d in result.stats.channel(name).deliveries)
                for name in sorted(decoder_channels)}

    be_full = run_be(all_channels, traffic)
    be_noisy = run_be(all_channels, noisy_traffic)
    diverged = sum(1 for name in sorted(decoder_channels)
                   if be_full[name] != be_noisy[name])
    for name in sorted(decoder_channels):
        print(f"  {name}: timing identical when logger floods: "
              f"{be_full[name] == be_noisy[name]}")
    print(f"\n{diverged} of {len(decoder_channels)} decoder channels "
          "changed timing under best effort — composability lost.")
    assert diverged > 0


if __name__ == "__main__":
    main()
