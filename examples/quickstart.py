"""Quickstart: configure and simulate a small aelite network.

Builds a 2x2 mesh with one NI per router, declares an application of
three guaranteed-service channels, runs the full design flow (mapping,
contention-free slot allocation, analytical bounds), and simulates it
at flit level to show that measured latencies respect the guarantees.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (MB, Application, ChannelSpec, UseCase, analyse,
                        configure)
from repro.simulation import ConstantBitRate, FlitLevelSimulator
from repro.topology import mesh


def main() -> None:
    # 1. The platform: a 2x2 mesh, one NI per router, one mesochronous
    #    link pipeline stage on every router-to-router link.
    topology = mesh(2, 2, nis_per_router=1, pipeline_stages=1)

    # 2. The application: three channels with throughput and latency
    #    requirements (one has no latency requirement at all).
    channels = (
        ChannelSpec("video", "camera", "encoder", 120 * MB,
                    max_latency_ns=200.0, application="streaming"),
        ChannelSpec("audio", "dsp", "codec", 20 * MB,
                    max_latency_ns=150.0, application="streaming"),
        ChannelSpec("stats", "encoder", "cpu", 5 * MB,
                    application="streaming"),
    )
    use_case = UseCase("demo", (Application("streaming", channels),))

    # 3. The design flow: map IPs, allocate TDM slots contention-free,
    #    and refuse the configuration unless every requirement is
    #    *guaranteed* (not just likely).
    config = configure(topology, use_case, table_size=16,
                       frequency_hz=500e6)
    print(f"configured: {config}")
    print(f"mean link utilisation: "
          f"{config.allocation.mean_link_utilisation():.1%}\n")

    print("analytical guarantees per channel:")
    for name, bounds in analyse(config.allocation).items():
        print(f"  {name:8s} latency <= {bounds.latency_ns:6.1f} ns   "
              f"throughput >= "
              f"{bounds.throughput_bytes_per_s / 1e6:6.1f} MB/s   "
              f"(slots {bounds.n_slots})")

    # 4. Simulate with each channel offering its contracted rate.
    sim = FlitLevelSimulator(config, check_contention=True)
    for spec in channels:
        sim.set_traffic(spec.name, ConstantBitRate.from_rate(
            spec.throughput_bytes_per_s, config.frequency_hz, config.fmt))
    result = sim.run(4000)

    print("\nmeasured (flit-level simulation, 4000 slots):")
    for spec in channels:
        stats = result.stats.channel(spec.name)
        summary = stats.latency_summary()
        throughput = result.channel_throughput_bytes_per_s(spec.name)
        print(f"  {spec.name:8s} latency {summary.minimum:5.1f} / "
              f"{summary.mean:5.1f} / {summary.maximum:5.1f} ns "
              f"(min/mean/max)   delivered "
              f"{throughput / 1e6:6.1f} MB/s")

    bounds = analyse(config.allocation)
    for spec in channels:
        measured = result.stats.channel(spec.name).latency_summary()
        assert measured.maximum <= bounds[spec.name].latency_ns, \
            "a measured latency exceeded its guarantee"
    print("\nall measured latencies within the analytical guarantees.")


if __name__ == "__main__":
    main()
