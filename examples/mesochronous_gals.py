"""GALS operation: mesochronous links and asynchronous wrappers.

Demonstrates Sections V and VI of the paper on a 2x2 mesh:

1. **mesochronous** — every router (with its NIs) gets its own clock
   phase; link pipeline stages re-align flits to the reading clock so
   the network stays flit-synchronous.  The example verifies that the
   bi-synchronous FIFOs never exceed the paper's 4-word sizing and that
   latencies match the globally synchronous run to within one cycle.
2. **plesiochronous + wrappers** — every element gets a slightly
   different clock *frequency*; the asynchronous wrappers stall
   elements into lock-step so the whole NoC runs at the slowest clock.

Run with:  python examples/mesochronous_gals.py
"""

from __future__ import annotations

from repro.core import MB, Application, ChannelSpec, UseCase, configure
from repro.simulation import ConstantBitRate, DetailedNetwork
from repro.topology import Mapping, mesh


def build_config():
    topology = mesh(2, 2, nis_per_router=1, pipeline_stages=1)
    channels = (
        ChannelSpec("c0", "ipA", "ipB", 80 * MB, application="app"),
        ChannelSpec("c1", "ipB", "ipC", 80 * MB, application="app"),
        ChannelSpec("c2", "ipC", "ipA", 80 * MB, application="app"),
    )
    use_case = UseCase("gals", (Application("app", channels),))
    mapping = Mapping({"ipA": "ni0_0_0", "ipB": "ni1_0_0",
                       "ipC": "ni1_1_0"})
    return configure(topology, use_case, table_size=8,
                     frequency_hz=500e6, mapping=mapping)


def traffic_for(config):
    return {name: ConstantBitRate.from_rate(
        ca.spec.throughput_bytes_per_s, config.frequency_hz, config.fmt)
        for name, ca in config.allocation.channels.items()}


def main() -> None:
    config = build_config()
    traffic = traffic_for(config)

    print("=== globally synchronous reference ===")
    sync = DetailedNetwork(config, clocking="synchronous",
                           traffic=traffic, horizon_slots=400).run()
    reference = {}
    for name in sorted(config.allocation.channels):
        summary = sync.stats.channel(name).latency_summary()
        reference[name] = summary.mean
        print(f"  {name}: mean latency {summary.mean:5.1f} ns "
              f"({summary.count} messages)")

    print("\n=== mesochronous: per-router clock phases, link stages ===")
    meso_net = DetailedNetwork(config, clocking="mesochronous",
                               traffic=traffic, horizon_slots=400,
                               mesochronous_seed=7)
    for node in sorted(config.topology.routers):
        clock = meso_net.clock_of(node)
        print(f"  {node}: phase {clock.phase_ps} ps")
    meso = meso_net.run()
    cycle_ns = 1e9 / config.frequency_hz
    for name in sorted(config.allocation.channels):
        summary = meso.stats.channel(name).latency_summary()
        delta = summary.mean - reference[name]
        print(f"  {name}: mean latency {summary.mean:5.1f} ns "
              f"(delta {delta:+.2f} ns — within one {cycle_ns:.0f} ns "
              "cycle of the synchronous run)")
        assert abs(delta) <= cycle_ns
    worst_fifo = max(meso.fifo_max_occupancy.values())
    print(f"  worst bi-synchronous FIFO occupancy: {worst_fifo} words "
          "(the paper sizes the FIFO at 4)")
    assert worst_fifo <= 4

    print("\n=== plesiochronous: wrappers, clocks differ by 5000 ppm ===")
    wrapped_net = DetailedNetwork(config, clocking="asynchronous",
                                  traffic=traffic, horizon_slots=400,
                                  plesiochronous_ppm=5000.0,
                                  mesochronous_seed=7)
    slowest = max(c.period_ps for c in wrapped_net.domains.values())
    fastest = min(c.period_ps for c in wrapped_net.domains.values())
    print(f"  clock periods span {fastest}..{slowest} ps")
    wrapped = wrapped_net.run()
    firings = sorted(wrapped.wrapper_firings.values())
    print(f"  element firings: {firings[0]}..{firings[-1]} "
          "(lock-step: the whole NoC runs at the slowest clock)")
    assert firings[-1] - firings[0] <= 3
    for name in sorted(config.allocation.channels):
        deliveries = wrapped.stats.channel(name).deliveries
        ids = [d.message_id for d in deliveries]
        assert ids == sorted(ids), "out-of-order delivery"
    print("  all messages delivered in order over the wrapped network.")


if __name__ == "__main__":
    main()
