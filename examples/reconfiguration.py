"""Undisrupted reconfiguration: starting and stopping applications live.

aelite's composability extends to reconfiguration ([16] in the paper):
since applications own disjoint TDM slots, one can be started or stopped
while the others keep running with bit-identical timing.  The demo
starts three applications, cycles one of them off and a new one on, and
audits after each transition that the running applications' reservations
never moved.

Run with:  python examples/reconfiguration.py
"""

from __future__ import annotations

from repro.core import MB, Application, ChannelSpec, SlotAllocator
from repro.core.reconfiguration import ReconfigurationManager
from repro.topology import mesh, round_robin


def app(name: str, pairs, rate_mb: float) -> Application:
    return Application(name, tuple(
        ChannelSpec(f"{name}_c{i}", src, dst, rate_mb * MB,
                    application=name)
        for i, (src, dst) in enumerate(pairs)))


def main() -> None:
    topology = mesh(2, 2, nis_per_router=2)
    ips = [f"ip{i}" for i in range(16)]
    mapping = round_robin(ips, topology)
    allocator = SlotAllocator(topology, table_size=32,
                              frequency_hz=500e6)
    manager = ReconfigurationManager(allocator, mapping)

    decoder = app("decoder", [("ip0", "ip1"), ("ip2", "ip3")], 120)
    radio = app("radio", [("ip4", "ip5"), ("ip6", "ip7")], 60)
    logger = app("logger", [("ip8", "ip9")], 20)
    game = app("game", [("ip10", "ip11"), ("ip12", "ip13")], 150)

    for application in (decoder, radio, logger):
        report = manager.start_application(application)
        print(f"start {application.name:8s} -> running "
              f"{report.running_after}   others untouched: "
              f"{report.untouched}")

    print("\nuse-case transition: stop 'radio', start 'game'")
    stop_report, start_report = manager.switch("radio", game)
    print(f"  stop  radio: released {stop_report.channels_changed}, "
          f"others untouched: {stop_report.untouched}")
    print(f"  start game : allocated {start_report.channels_changed}, "
          f"others untouched: {start_report.untouched}")

    assert all(report.untouched for report in manager.history)
    print(f"\n{len(manager.history)} transitions, all leaving running "
          "applications' reservations bit-identical.")
    print(f"final mean link utilisation: "
          f"{manager.allocation.mean_link_utilisation():.1%}")


if __name__ == "__main__":
    main()
