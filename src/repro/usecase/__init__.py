"""The Section VII 200-connection use case: generator and runners."""

from repro.usecase.generator import (Section7Instance, Section7Parameters,
                                     generate_section7)
from repro.usecase.runner import (SECTION7_TABLE_SIZE, BeOutcome, GsOutcome,
                                  SweepRow, be_frequency_sweep, burst_traffic,
                                  cbr_traffic, configure_section7, run_be,
                                  run_gs, service_latencies_ns)

__all__ = [
    "Section7Parameters", "Section7Instance", "generate_section7",
    "configure_section7", "cbr_traffic", "run_gs", "GsOutcome",
    "run_be", "BeOutcome", "be_frequency_sweep", "SweepRow",
    "burst_traffic", "service_latencies_ns",
    "SECTION7_TABLE_SIZE",
]
