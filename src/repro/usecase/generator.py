"""Generator for the Section VII use case.

The paper's evaluation workload: **200 connections, divided across four
applications**, with randomly chosen throughput in **10..500 MB/s** and
latency requirements in **35..500 ns**, over **70 IPs mapped to a 4x3
mesh with 4 NIs per router** (48 NIs), operated at 500 MHz.

The paper states the requirements are random within those ranges but not
how feasibility was ensured; two refinements make the generated instance
well-posed without leaving the stated ranges (documented in DESIGN.md):

* throughput is drawn **log-uniformly** (most connections are modest,
  a few are heavy — the realistic shape for MPSoC traffic; a uniform
  draw would demand ~5x the aggregate bandwidth the paper's 500 MHz
  network can carry);
* the latency requirement of a connection is drawn uniformly from the
  part of [35, 500] ns that its own path can possibly meet (a 5-hop
  connection physically cannot meet 35 ns at 500 MHz; the paper's
  tool flow would equally have rejected such a pairing).

Applications are placed in spatial clusters of routers — each of the
four applications occupies a quadrant of the mesh, IPs dealt round-robin
onto its NIs — mirroring how an SoC floorplan regionalises subsystems.

Everything is seeded and deterministic.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.core.application import Application, UseCase
from repro.core.connection import MB, ChannelSpec
from repro.core.exceptions import ConfigurationError
from repro.core.words import WordFormat
from repro.topology.builders import concentrated_mesh
from repro.topology.graph import Topology
from repro.topology.mapping import Mapping
from repro.topology.routing import xy_path

__all__ = ["Section7Parameters", "Section7Instance", "generate_section7"]


@dataclass(frozen=True)
class Section7Parameters:
    """Knobs of the use-case generator (paper values as defaults)."""

    seed: int = 2009
    cols: int = 4
    rows: int = 3
    nis_per_router: int = 4
    n_ips: int = 70
    n_applications: int = 4
    connections_per_application: int = 50
    min_throughput_mb_s: float = 10.0
    max_throughput_mb_s: float = 500.0
    min_latency_ns: float = 35.0
    max_latency_ns: float = 500.0
    frequency_hz: float = 500e6
    latency_feasibility_margin: float = 1.35
    table_size: int = 32
    link_pressure_budget: float = 0.78

    def __post_init__(self) -> None:
        if self.n_applications < 1 or self.connections_per_application < 1:
            raise ConfigurationError("need >= 1 application and connection")
        if self.min_throughput_mb_s <= 0 or \
                self.max_throughput_mb_s < self.min_throughput_mb_s:
            raise ConfigurationError("bad throughput range")
        if self.min_latency_ns <= 0 or \
                self.max_latency_ns < self.min_latency_ns:
            raise ConfigurationError("bad latency range")

    @property
    def n_connections(self) -> int:
        """Total connection count (200 with paper defaults)."""
        return self.n_applications * self.connections_per_application


@dataclass
class Section7Instance:
    """A generated use-case instance, ready for :func:`configure`."""

    parameters: Section7Parameters
    topology: Topology
    use_case: UseCase
    mapping: Mapping
    fmt: WordFormat = field(default_factory=WordFormat)

    @property
    def total_throughput_bytes_per_s(self) -> float:
        """Aggregate requested bandwidth."""
        return sum(ch.throughput_bytes_per_s
                   for ch in self.use_case.channels)


def generate_section7(params: Section7Parameters | None = None,
                      fmt: WordFormat | None = None) -> Section7Instance:
    """Generate the paper's 200-connection evaluation workload."""
    params = params or Section7Parameters()
    fmt = fmt or WordFormat()
    rng = random.Random(params.seed)
    topo = concentrated_mesh(params.cols, params.rows,
                             nis_per_router=params.nis_per_router)

    ip_names = [f"ip{i:02d}" for i in range(params.n_ips)]
    app_ips = _partition_ips(ip_names, params.n_applications)
    mapping = _cluster_mapping(topo, app_ips, params)
    channels_by_app: dict[str, list[ChannelSpec]] = {}
    ni_load: dict[str, float] = {}
    for app_index, ips in enumerate(app_ips):
        name = f"app{app_index}"
        channels_by_app[name] = _generate_app_channels(
            name, ips, topo, mapping, params, fmt, rng, ni_load)
    _relax_for_feasibility(channels_by_app, topo, mapping, params, fmt)
    applications = tuple(
        Application(name, tuple(channels))
        for name, channels in channels_by_app.items())
    use_case = UseCase("section7", applications)
    return Section7Instance(parameters=params, topology=topo,
                            use_case=use_case, mapping=mapping, fmt=fmt)


def _partition_ips(ips: list[str], n_apps: int) -> list[list[str]]:
    """Deal IPs round-robin into application groups (sizes differ by 1)."""
    groups: list[list[str]] = [[] for _ in range(n_apps)]
    for index, ip in enumerate(ips):
        groups[index % n_apps].append(ip)
    return groups


def _cluster_mapping(topo: Topology, app_ips: list[list[str]],
                     params: Section7Parameters) -> Mapping:
    """Give each application a spatial cluster of routers.

    Routers are ordered by mesh position and sliced evenly; each
    application's IPs are dealt round-robin onto the NIs of its slice.
    """
    routers = list(topo.routers)
    n_apps = len(app_ips)
    per_app = math.ceil(len(routers) / n_apps)
    assignment: dict[str, str] = {}
    for app_index, ips in enumerate(app_ips):
        slice_routers = routers[app_index * per_app:
                                (app_index + 1) * per_app]
        if not slice_routers:
            slice_routers = routers[-per_app:]
        nis: list[str] = []
        for router in slice_routers:
            nis.extend(topo.nis_of_router(router))
        for index, ip in enumerate(ips):
            assignment[ip] = nis[index % len(nis)]
    return Mapping(assignment)


def _generate_app_channels(app_name: str, ips: list[str], topo: Topology,
                           mapping: Mapping, params: Section7Parameters,
                           fmt: WordFormat, rng: random.Random,
                           ni_load: dict[str, float]) -> list[ChannelSpec]:
    """Draw one application's connections within its IP set.

    ``ni_load`` tallies the estimated throughput slots on each NI's
    injection ("ni>" prefix) and ejection ("ni<" prefix) link across all
    applications, steering endpoint choice away from saturated NIs.
    """
    from repro.core.requirements import slots_for_throughput

    channels: list[ChannelSpec] = []
    for index in range(params.connections_per_application):
        throughput_mb = _log_uniform(rng, params.min_throughput_mb_s,
                                     params.max_throughput_mb_s)
        slots = slots_for_throughput(
            throughput_mb * MB, params.table_size, params.frequency_hz,
            fmt)
        src, dst = _pick_endpoints(ips, topo, mapping, rng,
                                   throughput_mb, params, ni_load, slots)
        ni_load[f"ni>{mapping.ni_of(src)}"] = \
            ni_load.get(f"ni>{mapping.ni_of(src)}", 0.0) + slots
        ni_load[f"ni<{mapping.ni_of(dst)}"] = \
            ni_load.get(f"ni<{mapping.ni_of(dst)}", 0.0) + slots
        latency = _draw_latency(src, dst, topo, mapping, params, fmt, rng)
        channels.append(ChannelSpec(
            name=f"{app_name}_c{index:02d}",
            src_ip=src, dst_ip=dst,
            throughput_bytes_per_s=throughput_mb * MB,
            max_latency_ns=latency,
            application=app_name))
    return channels


def _router_distance(topo: Topology, mapping: Mapping, src: str,
                     dst: str) -> int:
    """Manhattan distance between the routers hosting two IPs."""
    from repro.topology.builders import router_coords
    ra = topo.attached_router(mapping.ni_of(src))
    rb = topo.attached_router(mapping.ni_of(dst))
    (xa, ya), (xb, yb) = router_coords(topo, ra), router_coords(topo, rb)
    return abs(xa - xb) + abs(ya - yb)


def _pick_endpoints(ips: list[str], topo: Topology, mapping: Mapping,
                    rng: random.Random, throughput_mb: float,
                    params: Section7Parameters, ni_load: dict[str, float],
                    slots: int) -> tuple[str, str]:
    """Pick endpoints with bandwidth-aware locality and load steering.

    Heavy flows (above ~65 % of the range, log scale) are placed between
    IPs of the same router; moderate flows within one hop; light flows
    anywhere in the application.  This mirrors what a bandwidth-aware
    mapping flow (the paper reuses the Æthereal tools [16]) produces: the
    heavy streaming pipelines of an application are physically adjacent,
    while control traffic roams.  Without this, 200 random pairs at up to
    500 MB/s exceed any 4x3 mesh's cut capacity at 500 MHz.

    Candidates whose injection or ejection NI link would exceed a
    throughput budget (just over half the slot table, leaving headroom
    for latency-driven slots) are avoided; among admissible candidates
    the first sampled wins, keeping the draw random.
    """
    span = (math.log(params.max_throughput_mb_s) -
            math.log(params.min_throughput_mb_s))
    position = (math.log(throughput_mb) -
                math.log(params.min_throughput_mb_s)) / span
    if position > 0.65:
        max_hops = 0
    elif position > 0.35:
        max_hops = 1
    else:
        max_hops = 10_000
    budget = 0.55 * params.table_size
    fallback: tuple[str, str] | None = None
    fallback_cost = float("inf")

    def admissible_cost(src: str, dst: str) -> float:
        inject = ni_load.get(f"ni>{mapping.ni_of(src)}", 0.0) + slots
        eject = ni_load.get(f"ni<{mapping.ni_of(dst)}", 0.0) + slots
        return max(inject, eject)

    # Escalating locality rings: prefer the flow's natural distance, but
    # rather place it further away than overload an NI link.
    for ring in (max_hops, max_hops + 2, 10_000):
        for _ in range(300):
            src, dst = rng.sample(ips, 2)
            if mapping.ni_of(src) == mapping.ni_of(dst):
                continue
            if _router_distance(topo, mapping, src, dst) > ring:
                continue
            cost = admissible_cost(src, dst)
            if cost <= budget:
                return src, dst
            if cost < fallback_cost:
                fallback, fallback_cost = (src, dst), cost
        if ring >= 10_000:
            break
    if fallback is None:
        raise ConfigurationError(
            "could not find endpoints on distinct NIs; the mapping is "
            "too concentrated")
    return fallback


def _log_uniform(rng: random.Random, low: float, high: float) -> float:
    """Log-uniform draw in [low, high]."""
    return math.exp(rng.uniform(math.log(low), math.log(high)))


def _draw_latency(src: str, dst: str, topo: Topology, mapping: Mapping,
                  params: Section7Parameters, fmt: WordFormat,
                  rng: random.Random) -> float:
    """Uniform draw from the feasible part of the paper's latency range.

    The floor is the XY path's traversal time plus one slot of injection
    wait, padded by ``latency_feasibility_margin`` so the allocator has
    room to satisfy several tight channels on shared links.
    """
    path = xy_path(topo, mapping.ni_of(src), mapping.ni_of(dst))
    floor_cycles = (path.traversal_slots + 1) * fmt.flit_size
    floor_ns = floor_cycles / params.frequency_hz * 1e9 * \
        params.latency_feasibility_margin
    low = max(params.min_latency_ns, floor_ns)
    if low > params.max_latency_ns:
        low = params.max_latency_ns
    return rng.uniform(low, params.max_latency_ns)


def _relax_for_feasibility(channels_by_app: dict[str, list[ChannelSpec]],
                           topo: Topology, mapping: Mapping,
                           params: Section7Parameters,
                           fmt: WordFormat) -> None:
    """Iterate requirements against slot pressure, as a design flow would.

    The paper's tool flow negotiates requirements with the allocator;
    here the negotiation is explicit: estimate each channel's slot demand
    on its XY route, and while any **NI link's** aggregate demand exceeds
    ``link_pressure_budget`` of the slot table, relax the latency
    requirement of that link's tightest channel by 30 % (never beyond
    the 500 ns maximum; throughput requirements are never touched).
    Only NI injection/ejection links are policed: they have no path
    diversity, whereas router-router overloads are the allocator's job
    to route around.  Deterministic, and every requirement stays inside
    the paper's stated ranges.
    """
    from repro.core.requirements import slots_for_channel

    all_channels: list[ChannelSpec] = []
    for channels in channels_by_app.values():
        all_channels.extend(channels)
    budget = params.link_pressure_budget * params.table_size
    ni_set = set(topo.nis)

    def demand(spec: ChannelSpec) -> tuple[int, "object"]:
        path = xy_path(topo, mapping.ni_of(spec.src_ip),
                       mapping.ni_of(spec.dst_ip))
        slots, _ = slots_for_channel(spec, path, params.table_size,
                                     params.frequency_hz, fmt)
        return slots, path

    for _ in range(20 * len(all_channels)):
        pressure: dict[tuple[str, str], float] = {}
        holders: dict[tuple[str, str], list[int]] = {}
        demands = [demand(spec) for spec in all_channels]
        for index, (slots, path) in enumerate(demands):
            for key in path.link_keys():
                if key[0] not in ni_set and key[1] not in ni_set:
                    continue
                pressure[key] = pressure.get(key, 0.0) + slots
                holders.setdefault(key, []).append(index)
        overloaded = [key for key, load in pressure.items()
                      if load > budget]
        if not overloaded:
            return
        # Relax the tightest latency on the most loaded link that still
        # has a relaxable channel; links loaded purely by throughput are
        # left to the allocator unless they are beyond the hard limit.
        key = None
        candidates: list[int] = []
        for candidate_key in sorted(overloaded,
                                    key=lambda k: -pressure[k]):
            relaxable = [
                i for i in holders[candidate_key]
                if all_channels[i].max_latency_ns is not None and
                all_channels[i].max_latency_ns < params.max_latency_ns]
            if relaxable:
                key, candidates = candidate_key, relaxable
                break
        if key is None:
            worst = max(overloaded, key=lambda k: pressure[k])
            if pressure[worst] <= params.table_size - 2:
                return  # tight but allocatable; the allocator decides
            raise ConfigurationError(
                f"link {worst} is overloaded by throughput alone "
                f"({pressure[worst]:.0f} slots of {params.table_size}); "
                "lower the rates or enlarge the network")
        victim = min(candidates,
                     key=lambda i: all_channels[i].max_latency_ns)
        spec = all_channels[victim]
        relaxed = min(spec.max_latency_ns * 1.3, params.max_latency_ns)
        new_spec = ChannelSpec(
            name=spec.name, src_ip=spec.src_ip, dst_ip=spec.dst_ip,
            throughput_bytes_per_s=spec.throughput_bytes_per_s,
            max_latency_ns=relaxed, application=spec.application,
            burst_bytes=spec.burst_bytes)
        all_channels[victim] = new_spec
        app_list = channels_by_app[spec.application]
        app_list[[c.name for c in app_list].index(spec.name)] = new_spec
    raise ConfigurationError(
        "feasibility relaxation did not converge; the instance is "
        "over-constrained")
