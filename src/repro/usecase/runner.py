"""End-to-end flows for the Section VII experiments.

Chains the whole design flow for the 200-connection use case —
generate, allocate, analyse, simulate — for both networks.  All
simulation goes through the :class:`~repro.simulation.backend.
SimulationBackend` protocol, so these flows never construct a simulator
directly and any backend (flit-level, cycle-accurate, best-effort) can
be substituted:

* :func:`configure_section7` — slot allocation at 500 MHz; the paper's
  claim is that this succeeds with every requirement guaranteed;
* :func:`run_gs` — guaranteed-service simulation of the aelite
  configuration with per-connection traffic at the required rates;
  verifies that measured latencies stay within both the analytical
  bounds and the requirements;
* :func:`run_be` / :func:`be_frequency_sweep` — the same traffic on the
  best-effort baseline across operating frequencies; reports, per
  frequency, how many connections the measured worst-case latency
  satisfies (the paper finds all of them only above ~900 MHz, versus
  500 MHz for aelite).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import NocConfiguration, configure
from repro.core.exceptions import AllocationError, SimulationError
from repro.simulation.backend import (BestEffortBackend, FlitLevelBackend,
                                      SimRequest, SimResult,
                                      SimulationBackend)
from repro.simulation.traffic import (ConstantBitRate, PeriodicBurst,
                                      TrafficPattern)
from repro.usecase.generator import Section7Instance, generate_section7

__all__ = ["configure_section7", "cbr_traffic", "burst_traffic",
           "service_latencies_ns", "run_gs", "GsOutcome", "run_be",
           "BeOutcome", "be_frequency_sweep", "SweepRow"]

#: Slot-table size used for the Section VII allocation.  32 slots give
#: tight-latency channels enough granularity at 500 MHz while keeping
#: NI table pressure moderate.
SECTION7_TABLE_SIZE = 32


def configure_section7(instance: Section7Instance | None = None, *,
                       table_size: int = SECTION7_TABLE_SIZE,
                       frequency_hz: float | None = None,
                       max_negotiations: int = 40
                       ) -> tuple[Section7Instance, NocConfiguration]:
    """Allocate the use case, negotiating infeasible latencies.

    The generator's feasibility pass works on XY estimates; the allocator
    occasionally disagrees (different paths, different ordering).  Like
    the Æthereal tool flow, allocation failures are negotiated: the
    channel the allocator names gets its latency requirement relaxed by
    30 % (never beyond the range maximum) and allocation retries.  The
    returned instance reflects any relaxations.  If negotiation is
    exhausted, the raised error carries the *last* allocator failure
    (channel name and reason) so the bottleneck is diagnosable.
    """
    instance = instance or generate_section7()
    use_case = instance.use_case
    last_failure: AllocationError | None = None
    for _ in range(max_negotiations):
        try:
            config = configure(
                instance.topology, use_case,
                table_size=table_size,
                frequency_hz=(frequency_hz or
                              instance.parameters.frequency_hz),
                fmt=instance.fmt,
                mapping=instance.mapping,
                require_met=True)
            instance.use_case = use_case
            return instance, config
        except AllocationError as exc:
            if exc.channel is None:
                raise
            last_failure = exc
            use_case = _relax_channel(
                use_case, exc.channel,
                cap_ns=instance.parameters.max_latency_ns)
    if last_failure is None:
        raise AllocationError(
            f"use case still infeasible after {max_negotiations} "
            "requirement negotiations")
    raise AllocationError(
        f"use case still infeasible after {max_negotiations} requirement "
        f"negotiations; last failure on channel "
        f"{last_failure.channel!r}: {last_failure.reason}",
        channel=last_failure.channel,
        reason=last_failure.reason) from last_failure


def _relax_channel(use_case, channel_name: str, *, cap_ns: float):
    """Return a use case with one channel's latency relaxed by 30 %."""
    from dataclasses import replace

    from repro.core.application import Application, UseCase

    apps = []
    found = False
    for app in use_case.applications:
        channels = []
        for spec in app.channels:
            if spec.name == channel_name:
                found = True
                if spec.max_latency_ns is None or \
                        spec.max_latency_ns >= cap_ns:
                    raise AllocationError(
                        f"channel {channel_name!r} infeasible even at the "
                        f"range maximum of {cap_ns} ns",
                        channel=channel_name,
                        reason="latency cap reached during negotiation")
                spec = replace(spec, max_latency_ns=min(
                    spec.max_latency_ns * 1.3, cap_ns))
            channels.append(spec)
        apps.append(Application(app.name, tuple(channels)))
    if not found:
        raise AllocationError(
            f"allocator failed on unknown channel {channel_name!r}",
            channel=channel_name, reason="unknown channel")
    return UseCase(use_case.name, tuple(apps))


def cbr_traffic(config: NocConfiguration, *,
                frequency_hz: float | None = None,
                rate_factor: float = 1.0) -> dict[str, TrafficPattern]:
    """Per-connection CBR sources at the required rates.

    Offsets are staggered deterministically per channel so sources do
    not all burst in the same cycle (the stagger is stable across runs).
    """
    frequency = frequency_hz or config.frequency_hz
    patterns: dict[str, TrafficPattern] = {}
    for index, (name, ca) in enumerate(
            sorted(config.allocation.channels.items())):
        patterns[name] = ConstantBitRate.from_rate(
            ca.spec.throughput_bytes_per_s * rate_factor, frequency,
            config.fmt, offset_cycles=(index * 7) % 64)
    return patterns


def burst_traffic(config: NocConfiguration, *,
                  frequency_hz: float | None = None,
                  burst_messages: int = 3,
                  rate_factor: float = 1.0) -> dict[str, TrafficPattern]:
    """Bursty transaction sources at the required average rates.

    Each connection issues ``burst_messages`` flit-sized messages
    back-to-back, with the burst period chosen so the average byte rate
    equals the requirement — a small-DMA transaction pattern.  This is
    the canonical Section VII workload: bursts expose exactly the
    difference the paper reports, since TDM isolation bounds each flit's
    network latency regardless of everyone else's bursts while the
    best-effort network's tails grow with contention.
    """
    frequency = frequency_hz or config.frequency_hz
    fmt = config.fmt
    patterns: dict[str, TrafficPattern] = {}
    for index, (name, ca) in enumerate(
            sorted(config.allocation.channels.items())):
        bytes_per_burst = burst_messages * fmt.payload_bytes_per_flit
        period = max(1, round(frequency * bytes_per_burst /
                              (ca.spec.throughput_bytes_per_s *
                               rate_factor)))
        patterns[name] = PeriodicBurst(
            burst_messages, fmt.payload_words_per_flit, period,
            offset_cycles=(index * 13) % 97)
    return patterns


def service_latencies_ns(stats, channel: str) -> list[float]:
    """Per-message network service latencies of one channel.

    The service latency of a message excludes queueing behind the
    channel's *own* earlier messages: it runs from
    ``max(creation, injection of the previous message)`` to delivery.
    This is the paper's "flit latency": the time the network takes once
    a flit is at the head of its NI queue.  The analytical bound covers
    exactly this quantity, for any arrival process; end-to-end latency
    additionally contains self-queueing, which is the IP's contract
    violation, not the network's.

    Stats collectors that can answer from compiled schedule arrays
    (:class:`~repro.simulation.compiled.CompiledStats`) expose a
    ``service_latencies_ns`` method; it returns ``None`` for channels
    it cannot vectorise, in which case the record walk below runs.
    """
    fast = getattr(stats, "service_latencies_ns", None)
    if fast is not None:
        latencies = fast(channel)
        if latencies is not None:
            return latencies
    channel_stats = stats.channel(channel)
    injections = {r.message_id: r.time_ps
                  for r in channel_stats.injections}
    deliveries = sorted(channel_stats.deliveries,
                        key=lambda d: d.message_id)
    latencies: list[float] = []
    previous_injection: int | None = None
    for record in deliveries:
        ready = record.created_time_ps
        if previous_injection is not None and previous_injection > ready:
            ready = previous_injection
        latencies.append((record.delivered_time_ps - ready) / 1000.0)
        previous_injection = injections.get(record.message_id,
                                            previous_injection)
    return latencies


@dataclass(frozen=True)
class GsOutcome:
    """Result of the guaranteed-service run."""

    result: SimResult
    n_connections: int
    n_measured: int
    n_latency_ok: int
    n_within_bound: int
    worst_margin_ns: float

    @property
    def all_requirements_met(self) -> bool:
        """Every measured connection met its latency requirement."""
        return self.n_latency_ok == self.n_measured == self.n_connections

    @property
    def all_within_bounds(self) -> bool:
        """No connection ever exceeded its analytical bound."""
        return self.n_within_bound == self.n_measured


def run_gs(config: NocConfiguration, *, n_slots: int = 4000,
           traffic: dict[str, TrafficPattern] | None = None,
           backend: SimulationBackend | None = None) -> GsOutcome:
    """Simulate aelite under the use-case traffic and check guarantees.

    Checks measured *service* latencies (see :func:`service_latencies_ns`)
    against both the per-connection requirement and the analytical bound.
    ``backend`` substitutes any GS-capable backend for the default
    flit-level one (e.g. the cycle-accurate model for a slow ground-truth
    pass).
    """
    traffic = traffic or burst_traffic(config)
    backend = backend or FlitLevelBackend(config)
    result = backend.run(SimRequest(n_slots=n_slots, traffic=traffic))
    bounds = config.bounds()
    n_measured = n_ok = n_bound = 0
    worst_margin = float("inf")
    for name, ca in config.allocation.channels.items():
        latencies = service_latencies_ns(result.stats, name)
        if not latencies:
            continue
        n_measured += 1
        worst = max(latencies)
        required = ca.spec.max_latency_ns
        if required is not None:
            margin = required - worst
            worst_margin = min(worst_margin, margin)
            if margin >= 0:
                n_ok += 1
        else:
            n_ok += 1
        if worst <= bounds[name].latency_ns + 1e-9:
            n_bound += 1
    return GsOutcome(result=result,
                     n_connections=len(config.allocation.channels),
                     n_measured=n_measured, n_latency_ok=n_ok,
                     n_within_bound=n_bound,
                     worst_margin_ns=worst_margin)


@dataclass(frozen=True)
class BeOutcome:
    """Result of one best-effort run at one frequency."""

    frequency_hz: float
    result: SimResult
    n_connections: int
    n_measured: int
    n_latency_ok: int
    mean_latency_ns: float
    max_latency_ns: float

    @property
    def all_requirements_met(self) -> bool:
        """Every connection's measured worst case met its requirement."""
        return self.n_latency_ok == self.n_measured == self.n_connections


def run_be(config: NocConfiguration, *, frequency_hz: float,
           n_ticks: int = 4000,
           traffic: dict[str, TrafficPattern] | None = None,
           buffer_flits: int = 2) -> BeOutcome:
    """Simulate the best-effort baseline at one operating frequency.

    Uses the same service-latency metric as :func:`run_gs` for a fair
    comparison: self-queueing behind the channel's own messages is
    excluded, contention with other channels is in.
    """
    traffic = traffic or burst_traffic(config, frequency_hz=frequency_hz)
    backend = BestEffortBackend(config, buffer_flits=buffer_flits)
    result = backend.run(SimRequest(n_slots=n_ticks, traffic=traffic,
                                    frequency_hz=frequency_hz))
    n_measured = n_ok = 0
    latencies: list[float] = []
    worst = 0.0
    for name, ca in config.allocation.channels.items():
        channel_latencies = service_latencies_ns(result.stats, name)
        if not channel_latencies:
            continue
        n_measured += 1
        channel_worst = max(channel_latencies)
        latencies.extend(channel_latencies)
        worst = max(worst, channel_worst)
        required = ca.spec.max_latency_ns
        if required is None or channel_worst <= required:
            n_ok += 1
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    return BeOutcome(frequency_hz=frequency_hz, result=result,
                     n_connections=len(config.allocation.channels),
                     n_measured=n_measured, n_latency_ok=n_ok,
                     mean_latency_ns=mean, max_latency_ns=worst)


@dataclass(frozen=True)
class SweepRow:
    """One row of the best-effort frequency sweep table."""

    frequency_mhz: float
    n_latency_ok: int
    n_connections: int
    mean_latency_ns: float
    max_latency_ns: float
    all_met: bool


def be_frequency_sweep(config: NocConfiguration,
                       frequencies_hz: list[float], *,
                       n_ticks: int = 4000,
                       buffer_flits: int = 2) -> list[SweepRow]:
    """Run the BE baseline across frequencies (the paper's >900 MHz scan).

    Traffic is rebuilt per frequency from the byte rates, so the offered
    load in bytes per second is constant while the network speed varies.
    """
    if not frequencies_hz:
        raise SimulationError("frequency sweep needs at least one point")
    rows = []
    for frequency in frequencies_hz:
        outcome = run_be(config, frequency_hz=frequency, n_ticks=n_ticks,
                         buffer_flits=buffer_flits)
        rows.append(SweepRow(
            frequency_mhz=frequency / 1e6,
            n_latency_ok=outcome.n_latency_ok,
            n_connections=outcome.n_connections,
            mean_latency_ns=outcome.mean_latency_ns,
            max_latency_ns=outcome.max_latency_ns,
            all_met=outcome.all_requirements_met))
    return rows
