"""Table formatting shared by the experiment modules and benchmarks.

Every experiment returns its data as a list of dictionaries (one per
row); :func:`format_table` renders them as a fixed-width text table so
benchmarks and examples print the same artefact the paper's figures and
tables contain.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value: object) -> str:
    """Human formatting: thousands separators, sensible float precision."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] | None = None,
                 title: str = "") -> str:
    """Render rows as a fixed-width table.

    ``columns`` selects and orders the columns; by default the keys of
    the first row are used in their insertion order.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    rendered = [[format_value(row.get(col, "")) for col in cols]
                for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(cell.rjust(widths[i])
                                for i, cell in enumerate(r)))
    return "\n".join(lines)
