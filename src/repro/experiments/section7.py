"""The Section VII system experiments: use case, BE sweep, cost roll-up.

Three artefacts:

* :func:`usecase_gs_rows` — the guaranteed-service run at 500 MHz:
  per-application requirement satisfaction, bound compliance, and the
  composability verdict (application subsets must be trace-identical);
* :func:`be_sweep_rows` — the best-effort frequency scan reproducing
  "more than 900 MHz before the latency observed during simulation is
  lower than requested for all connections";
* :func:`cost_rows` — the router-network silicon cost of both options
  at their respective operating points (the paper: "the cost of the
  router network is roughly 5 times as high").

All simulation is driven through the unified
:class:`~repro.simulation.backend.SimulationBackend` protocol (via
:mod:`repro.usecase.runner` and :mod:`repro.simulation.composability`);
no experiment here constructs a simulator directly.
"""

from __future__ import annotations

from repro.core.configuration import NocConfiguration
from repro.simulation.composability import compare_subsets
from repro.synthesis.area_model import aethereal_gsbe_router_area_um2
from repro.synthesis.technology import (TECH_90LP, TECH_130,
                                        scale_area_um2)
from repro.synthesis.timing_model import router_area_at_frequency_um2
from repro.usecase.generator import Section7Instance, generate_section7
from repro.usecase.runner import (be_frequency_sweep, burst_traffic,
                                  configure_section7, run_be, run_gs,
                                  service_latencies_ns)

__all__ = ["section7_setup", "usecase_gs_rows", "be_sweep_rows",
           "cost_rows", "composability_rows", "DEFAULT_SWEEP_MHZ"]

DEFAULT_SWEEP_MHZ = [500, 600, 700, 800, 900, 1000, 1100]


def section7_setup(seed: int = 2009
                   ) -> tuple[Section7Instance, NocConfiguration]:
    """Generate and allocate the canonical use case."""
    from repro.usecase.generator import Section7Parameters
    instance = generate_section7(Section7Parameters(seed=seed))
    return configure_section7(instance)


def usecase_gs_rows(config: NocConfiguration, *, n_slots: int = 3000
                    ) -> list[dict[str, object]]:
    """Per-application guaranteed-service verification rows."""
    outcome = run_gs(config, n_slots=n_slots)
    rows: list[dict[str, object]] = []
    stats = outcome.result.stats
    bounds = config.bounds()
    by_app: dict[str, list[str]] = {}
    for name, ca in config.allocation.channels.items():
        by_app.setdefault(ca.spec.application, []).append(name)
    for app, channels in sorted(by_app.items()):
        worst_margin = float("inf")
        n_ok = 0
        max_latency = 0.0
        for name in channels:
            latencies = service_latencies_ns(stats, name)
            if not latencies:
                continue
            worst = max(latencies)
            max_latency = max(max_latency, worst)
            required = config.allocation.channel(name).spec.max_latency_ns
            if required is None or worst <= required:
                n_ok += 1
            if required is not None:
                worst_margin = min(worst_margin, required - worst)
        rows.append({
            "application": app,
            "connections": len(channels),
            "latency_ok": n_ok,
            "max_service_latency_ns": round(max_latency, 1),
            "worst_margin_ns": round(worst_margin, 1),
        })
    rows.append({
        "application": "TOTAL",
        "connections": outcome.n_connections,
        "latency_ok": outcome.n_latency_ok,
        "max_service_latency_ns": "-",
        "worst_margin_ns": round(outcome.worst_margin_ns, 1),
    })
    return rows


def be_sweep_rows(config: NocConfiguration, *,
                  frequencies_mhz: list[int] | None = None,
                  n_ticks: int = 3000) -> list[dict[str, object]]:
    """Best-effort frequency sweep rows (the paper's >900 MHz scan)."""
    frequencies = frequencies_mhz or DEFAULT_SWEEP_MHZ
    rows = []
    for sweep_row in be_frequency_sweep(
            config, [m * 1e6 for m in frequencies], n_ticks=n_ticks):
        rows.append({
            "frequency_mhz": sweep_row.frequency_mhz,
            "latency_ok": sweep_row.n_latency_ok,
            "connections": sweep_row.n_connections,
            "mean_latency_ns": round(sweep_row.mean_latency_ns, 1),
            "max_latency_ns": round(sweep_row.max_latency_ns, 1),
            "all_met": sweep_row.all_met,
        })
    return rows


def be_crossing_mhz(rows: list[dict[str, object]]) -> float | None:
    """First sweep frequency at which every requirement was met."""
    for row in rows:
        if row["all_met"]:
            return float(row["frequency_mhz"])  # type: ignore[arg-type]
    return None


def cost_rows(config: NocConfiguration, *,
              be_required_mhz: float = 1000.0) -> list[dict[str, object]]:
    """Router-network silicon cost at the two operating points.

    aelite runs the use case at 500 MHz; the best-effort Æthereal needs
    ``be_required_mhz`` (from the sweep).  The GS+BE router is synthesised
    towards that frequency — at or beyond its achievable maximum, hence
    at maximum effort — which is how the paper's "roughly 5 times" cost
    gap arises.
    """
    n_routers = len(config.topology.routers)
    fmt = config.fmt
    aelite_router = router_area_at_frequency_um2(5, 500e6, fmt,
                                                 tech=TECH_90LP)
    gsbe_130 = aethereal_gsbe_router_area_um2(5, fmt, tech=TECH_130)
    gsbe_90 = scale_area_um2(gsbe_130, TECH_130, TECH_90LP)
    # Synthesising the GS+BE router towards the BE-required frequency
    # lands at maximum effort (its achievable maximum is far below).
    from repro.synthesis.timing_model import MAX_EFFORT_FACTOR
    gsbe_at_freq = gsbe_90 * MAX_EFFORT_FACTOR
    rows = [
        {"network": "aelite GS-only @ 500 MHz",
         "router_um2": round(aelite_router),
         "routers": n_routers,
         "network_mm2": round(aelite_router * n_routers / 1e6, 4)},
        {"network": f"AEthereal GS+BE @ {be_required_mhz:.0f} MHz",
         "router_um2": round(gsbe_at_freq),
         "routers": n_routers,
         "network_mm2": round(gsbe_at_freq * n_routers / 1e6, 4)},
    ]
    ratio = gsbe_at_freq / aelite_router
    rows.append({"network": "cost ratio", "router_um2": round(ratio, 2),
                 "routers": "-", "network_mm2": round(ratio, 2)})
    return rows


def composability_rows(config: NocConfiguration, *, n_slots: int = 1500
                       ) -> list[dict[str, object]]:
    """Application-isolation verification rows.

    Each application is run alone (others silent) and compared, trace by
    trace, against the full four-application run; aelite must be
    bit-identical in every scenario.
    """
    traffic = burst_traffic(config)
    by_app: dict[str, set[str]] = {}
    for name, ca in config.allocation.channels.items():
        by_app.setdefault(ca.spec.application, set()).add(name)
    scenarios = {f"{app}_alone": channels
                 for app, channels in sorted(by_app.items())}
    reports = compare_subsets(config, traffic, scenarios, n_slots)
    return [{
        "scenario": report.scenario,
        "channels_compared": len(report.identical) + len(report.diverged),
        "identical": len(report.identical),
        "diverged": len(report.diverged),
        "composable": report.is_composable,
    } for report in reports]
