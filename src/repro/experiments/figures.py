"""Figure 5 and Figure 6 of the paper: synthesis sweeps.

* **Figure 5** — cell area versus target frequency for an arity-5,
  32-bit router: flat until ~650 MHz, a knee after 750 MHz, saturation
  around 875 MHz, below 0.015 mm^2 up to 650 MHz.
* **Figure 6(a)** — area and maximum frequency versus arity (2..7) at
  32-bit: area grows roughly linearly with arity despite the mux tree;
  frequency declines from ~1.3 GHz towards ~850 MHz.
* **Figure 6(b)** — area and maximum frequency versus data width
  (32..256 bit) for an arity-6 router: area linear in width, frequency
  declining linearly.

Each function returns plot-ready rows; the benchmarks print them and
EXPERIMENTS.md records the paper-versus-measured comparison.
"""

from __future__ import annotations

from repro.core.words import WordFormat
from repro.synthesis.technology import TECH_90LP, Technology
from repro.synthesis.timing_model import (frequency_sweep,
                                          max_frequency_hz,
                                          router_area_at_frequency_um2)

__all__ = ["figure5_rows", "figure6a_rows", "figure6b_rows",
           "FIG5_TARGETS_MHZ", "FIG6A_ARITIES", "FIG6B_WIDTHS"]

#: Target frequencies of the Figure 5 sweep (MHz), matching its x-axis.
FIG5_TARGETS_MHZ = [500, 525, 550, 575, 600, 625, 650, 675, 700, 725,
                    750, 775, 800, 825, 850, 875]

#: Arity range of Figure 6(a).
FIG6A_ARITIES = [2, 3, 4, 5, 6, 7]

#: Data widths of Figure 6(b).
FIG6B_WIDTHS = [32, 64, 96, 128, 160, 192, 224, 256]


def figure5_rows(*, arity: int = 5, fmt: WordFormat | None = None,
                 tech: Technology = TECH_90LP) -> list[dict[str, object]]:
    """Area/target-frequency trade-off rows (Figure 5)."""
    fmt = fmt or WordFormat()
    points = frequency_sweep(arity, [m * 1e6 for m in FIG5_TARGETS_MHZ],
                             fmt, tech=tech)
    return [{
        "target_mhz": p.target_mhz,
        "achieved_mhz": round(p.achieved_mhz, 1),
        "area_um2": round(p.area_um2),
        "area_mm2": round(p.area_mm2, 4),
    } for p in points]


def figure6a_rows(*, fmt: WordFormat | None = None,
                  tech: Technology = TECH_90LP) -> list[dict[str, object]]:
    """Area and max frequency versus arity (Figure 6a)."""
    fmt = fmt or WordFormat()
    rows = []
    for arity in FIG6A_ARITIES:
        fmax = max_frequency_hz(arity, fmt, tech=tech)
        area = router_area_at_frequency_um2(arity, fmax, fmt, tech=tech)
        rows.append({
            "arity": arity,
            "area_um2": round(area),
            "max_frequency_mhz": round(fmax / 1e6),
        })
    return rows


def figure6b_rows(*, arity: int = 6,
                  tech: Technology = TECH_90LP) -> list[dict[str, object]]:
    """Area and max frequency versus data width (Figure 6b)."""
    rows = []
    for width in FIG6B_WIDTHS:
        fmt = WordFormat(data_width=width)
        fmax = max_frequency_hz(arity, fmt, tech=tech)
        area = router_area_at_frequency_um2(arity, fmax, fmt, tech=tech)
        rows.append({
            "word_width_bits": width,
            "area_um2": round(area),
            "max_frequency_mhz": round(fmax / 1e6),
        })
    return rows
