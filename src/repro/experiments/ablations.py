"""Ablations of the design choices DESIGN.md calls out.

These sweep the knobs the paper fixes and show why the fixed values are
sensible:

* **slot-table size** — latency bound versus allocation success for the
  Section VII workload (small tables cannot spread slots finely enough;
  large tables raise the worst-case wait of one-slot channels);
* **FIFO depth versus skew** — the mesochronous stage's 4-word FIFO is
  exactly sufficient: depth 3 overflows under back-to-back flits, depth
  5+ is wasted area;
* **allocation ordering** — hardest-first ordering versus input order
  and throughput order, measured by allocation success and mean slots;
* **link pipeline stages** — each stage adds exactly one slot to the
  latency bound (the physical-scalability price of Section V);
* **simulation backend / clocking scheme** — one workload pushed through
  every registered :class:`~repro.simulation.backend.SimulationBackend`
  to show that the three GS views agree while best effort trades the
  latency bound for a lower average.
"""

from __future__ import annotations

from repro.core.allocation import AllocatorOptions, SlotAllocator
from repro.core.analysis import analyse, summarise
from repro.core.connection import MB, ChannelSpec
from repro.core.exceptions import AllocationError
from repro.core.words import WordFormat
from repro.synthesis.gates import fifo_area_um2
from repro.synthesis.technology import TECH_90LP
from repro.topology.builders import mesh
from repro.topology.mapping import round_robin
from repro.topology.routing import xy_path

__all__ = ["table_size_rows", "fifo_depth_rows", "ordering_rows",
           "pipeline_stage_rows", "backend_rows"]


def _workload(topo, n_channels: int = 24, seed: int = 5):
    import random
    rng = random.Random(seed)
    ips = [f"ip{i}" for i in range(16)]
    mapping = round_robin(ips, topo)
    channels = []
    for i in range(n_channels):
        src, dst = rng.sample(ips, 2)
        while mapping.ni_of(src) == mapping.ni_of(dst):
            src, dst = rng.sample(ips, 2)
        channels.append(ChannelSpec(
            f"c{i}", src, dst, rng.uniform(10, 100) * MB,
            max_latency_ns=rng.uniform(120, 400),
            application=f"app{i % 4}"))
    return channels, mapping


def table_size_rows(*, frequency_hz: float = 500e6
                    ) -> list[dict[str, object]]:
    """Allocation quality versus slot-table size."""
    topo = mesh(3, 2, nis_per_router=2)
    channels, mapping = _workload(topo)
    rows = []
    for table_size in (4, 8, 16, 32, 64, 128):
        try:
            allocation = SlotAllocator(
                topo, table_size=table_size,
                frequency_hz=frequency_hz).allocate(channels, mapping)
            summary = summarise(analyse(allocation))
            rows.append({
                "table_size": table_size,
                "allocated": len(allocation.channels),
                "all_met": summary.all_requirements_met,
                "mean_latency_bound_ns": round(summary.mean_latency_ns, 1),
                "mean_slots": round(summary.mean_slots_per_channel, 2),
                "mean_link_util": round(
                    allocation.mean_link_utilisation(), 3),
            })
        except AllocationError as exc:
            rows.append({
                "table_size": table_size, "allocated": 0,
                "all_met": False, "mean_latency_bound_ns": "-",
                "mean_slots": "-",
                "mean_link_util": f"failed: {exc.channel}",
            })
    return rows


def fifo_depth_rows() -> list[dict[str, object]]:
    """Mesochronous FIFO depth: functional verdict and area.

    Depth verdicts come from the worst-case occupancy argument of
    Section V (writer up to half a cycle ahead, back-to-back flits):
    the stage needs flit_size + 1 words.  Areas use the custom FIFO
    model.
    """
    fmt = WordFormat()
    width = fmt.data_width + 2
    rows = []
    for depth in (3, 4, 5, 6, 8):
        sufficient = depth >= fmt.flit_size + 1
        rows.append({
            "fifo_words": depth,
            "tolerates_half_cycle_skew": sufficient,
            "area_um2": round(fifo_area_um2(depth, width, TECH_90LP)),
            "verdict": ("minimum sufficient" if depth == fmt.flit_size + 1
                        else ("overflows under back-to-back flits"
                              if not sufficient else "wasted area")),
        })
    return rows


def ordering_rows() -> list[dict[str, object]]:
    """Greedy allocation order ablation."""
    topo = mesh(3, 2, nis_per_router=2)
    channels, mapping = _workload(topo, n_channels=30, seed=11)
    rows = []
    for order in ("tightness", "throughput", "input"):
        try:
            allocation = SlotAllocator(
                topo, table_size=16, frequency_hz=500e6,
                options=AllocatorOptions(order=order)).allocate(
                    channels, mapping)
            summary = summarise(analyse(allocation))
            rows.append({
                "order": order,
                "allocated": len(allocation.channels),
                "all_met": summary.all_requirements_met,
                "mean_slots": round(summary.mean_slots_per_channel, 2),
                "mean_link_util": round(
                    allocation.mean_link_utilisation(), 3),
            })
        except AllocationError as exc:
            rows.append({"order": order, "allocated": 0, "all_met": False,
                         "mean_slots": "-",
                         "mean_link_util": f"failed: {exc.channel}"})
    return rows


def backend_rows(*, n_slots: int = 400) -> list[dict[str, object]]:
    """One workload through every backend, via the unified protocol.

    The flit-level and cycle-accurate backends must agree on the logical
    flit schedule (the flit-synchronous abstraction is exact, across
    clocking schemes up to one cycle of mesochronous phase); the
    best-effort backend runs the same offered traffic without TDM and
    shows the average-versus-worst-case trade the paper quantifies.
    """
    from repro.core.application import Application, UseCase
    from repro.core.configuration import configure
    from repro.simulation.backend import SimRequest, create_backend
    from repro.simulation.traffic import ConstantBitRate
    from repro.topology.mapping import Mapping

    topo = mesh(2, 2, nis_per_router=1, pipeline_stages=1)
    channels = (
        ChannelSpec("c0", "ipA", "ipB", 80 * MB, application="app"),
        ChannelSpec("c1", "ipB", "ipC", 80 * MB, application="app"),
        ChannelSpec("c2", "ipC", "ipA", 80 * MB, application="app"),
    )
    use_case = UseCase("backend_ablation",
                       (Application("app", channels),))
    mapping = Mapping({"ipA": "ni0_0_0", "ipB": "ni1_0_0",
                       "ipC": "ni1_1_0"})
    config = configure(topo, use_case, table_size=8, frequency_hz=500e6,
                       mapping=mapping)
    traffic = {
        spec.name: ConstantBitRate.from_rate(
            spec.throughput_bytes_per_s, 500e6, config.fmt,
            offset_cycles=2)
        for spec in channels}
    request = SimRequest(n_slots=n_slots, traffic=traffic, seed=11)
    variants = [
        ("flit", "flit", {}),
        ("cycle/synchronous", "cycle", {"clocking": "synchronous"}),
        ("cycle/mesochronous", "cycle", {"clocking": "mesochronous"}),
        ("be", "be", {}),
    ]
    reference = create_backend("flit", config).run(request)
    rows: list[dict[str, object]] = []
    for label, kind, options in variants:
        result = (reference if label == "flit" else
                  create_backend(kind, config, **options).run(request))
        summary = result.latency_summary()
        deviation = 0
        for channel in traffic:
            # Match schedule entries by message identity, not position,
            # so a backend delivering fewer messages cannot misalign or
            # silently truncate the comparison.
            ref_by_message = {(mid, created): latency for mid, created,
                              latency in reference.logical_schedule(channel)}
            run_by_message = {(mid, created): latency for mid, created,
                              latency in result.logical_schedule(channel)}
            for key in ref_by_message.keys() & run_by_message.keys():
                deviation = max(deviation, abs(run_by_message[key] -
                                               ref_by_message[key]))
        rows.append({
            "backend": label,
            "messages": len(result.stats.all_deliveries()),
            "p50_ns": round(summary.p50, 1) if summary else "-",
            "p99_ns": round(summary.p99, 1) if summary else "-",
            "max_ns": round(summary.maximum, 1) if summary else "-",
            "max_deviation_cycles_vs_flit": deviation,
        })
    return rows


def pipeline_stage_rows() -> list[dict[str, object]]:
    """Latency-bound cost of link pipeline stages (Section V price)."""
    fmt = WordFormat()
    rows = []
    for stages in (0, 1, 2, 3):
        topo = mesh(3, 1, nis_per_router=1, pipeline_stages=stages)
        path = xy_path(topo, "ni0_0_0", "ni2_0_0")
        rows.append({
            "stages_per_link": stages,
            "traversal_slots": path.traversal_slots,
            "traversal_ns_at_500mhz": round(
                path.traversal_cycles(fmt) * 2.0, 1),
        })
    return rows
