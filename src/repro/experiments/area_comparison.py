"""The Section VII textual cost comparisons, as tables.

Rows for: the mesochronous link-stage costs (custom versus non-custom
FIFOs), the complete mesochronous arity-5 router, the related-work
comparison (Æthereal GS+BE, Miro Panades [4], Beigne [7]), the headline
aelite-versus-Æthereal ratios, and the throughput-per-area observation
for the arity-6, 64-bit router.
"""

from __future__ import annotations

from repro.core.words import WordFormat
from repro.synthesis.area_model import (link_stage_area_um2,
                                        mesochronous_router_area_um2)
from repro.synthesis.comparison import (aelite_vs_aethereal,
                                        related_work_table,
                                        throughput_per_area)
from repro.synthesis.gates import fifo_area_um2
from repro.synthesis.technology import TECH_90LP

__all__ = ["fifo_rows", "mesochronous_rows", "related_work_rows",
           "headline_ratio_rows", "throughput_rows"]


def fifo_rows() -> list[dict[str, object]]:
    """Bi-synchronous FIFO cost (paper: ~1500 um^2 custom, ~3300 not)."""
    width = WordFormat().data_width + 2
    return [
        {"fifo": "4-word custom [18]",
         "area_um2": round(fifo_area_um2(4, width, TECH_90LP,
                                         custom=True))},
        {"fifo": "4-word standard-cell [14]",
         "area_um2": round(fifo_area_um2(4, width, TECH_90LP,
                                         custom=False))},
    ]


def mesochronous_rows() -> list[dict[str, object]]:
    """Complete mesochronous arity-5 router (paper: ~0.032 mm^2)."""
    fmt = WordFormat()
    stage = link_stage_area_um2(fmt)
    total = mesochronous_router_area_um2(5, 5, fmt)
    return [
        {"component": "link pipeline stage (FIFO + FSM)",
         "area_um2": round(stage), "area_mm2": round(stage / 1e6, 4)},
        {"component": "arity-5 router + 5 link stages",
         "area_um2": round(total), "area_mm2": round(total / 1e6, 4)},
    ]


def related_work_rows() -> list[dict[str, object]]:
    """The related-work cost table."""
    return [{
        "design": row.design,
        "area_mm2": round(row.area_mm2, 4),
        "frequency_mhz": ("-" if row.frequency_mhz is None
                          else round(row.frequency_mhz)),
        "service_levels": row.service_levels,
        "composable": row.composable,
        "source": row.source,
    } for row in related_work_table()]


def headline_ratio_rows() -> list[dict[str, object]]:
    """The "roughly 5x smaller and 1.5x the frequency" comparison."""
    comparison = aelite_vs_aethereal()
    return [{
        "metric": "area (mm^2)",
        "aelite": round(comparison.aelite_area_mm2, 4),
        "aethereal_gs_be": round(comparison.aethereal_area_mm2, 4),
        "ratio": round(comparison.area_ratio, 2),
        "paper_claims": "roughly 5x smaller",
    }, {
        "metric": "frequency (MHz)",
        "aelite": round(comparison.aelite_frequency_mhz),
        "aethereal_gs_be": round(comparison.aethereal_frequency_mhz),
        "ratio": round(comparison.frequency_ratio, 2),
        "paper_claims": "1.5x the frequency",
    }]


def throughput_rows() -> list[dict[str, object]]:
    """Raw throughput per area (paper: arity-6/64-bit, 64 GB/s, 0.03 mm^2)."""
    rows = []
    for arity, width in ((5, 32), (6, 32), (6, 64), (7, 64)):
        fmt = WordFormat(data_width=width)
        gbytes, mm2 = throughput_per_area(arity, fmt)
        rows.append({
            "router": f"arity-{arity}, {width}-bit",
            "aggregate_gb_s": round(gbytes, 1),
            "area_mm2": round(mm2, 4),
            "gb_s_per_mm2": round(gbytes / mm2, 0),
        })
    return rows
