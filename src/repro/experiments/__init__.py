"""One module per paper figure/table; see DESIGN.md's experiment index."""

from repro.experiments.ablations import (backend_rows, fifo_depth_rows,
                                         ordering_rows,
                                         pipeline_stage_rows,
                                         table_size_rows)
from repro.experiments.area_comparison import (fifo_rows,
                                               headline_ratio_rows,
                                               mesochronous_rows,
                                               related_work_rows,
                                               throughput_rows)
from repro.experiments.figures import (FIG5_TARGETS_MHZ, FIG6A_ARITIES,
                                       FIG6B_WIDTHS, figure5_rows,
                                       figure6a_rows, figure6b_rows)
from repro.experiments.report import format_table, format_value
from repro.experiments.section7 import (DEFAULT_SWEEP_MHZ, be_crossing_mhz,
                                        be_sweep_rows, composability_rows,
                                        cost_rows, section7_setup,
                                        usecase_gs_rows)

__all__ = [
    "figure5_rows", "figure6a_rows", "figure6b_rows",
    "FIG5_TARGETS_MHZ", "FIG6A_ARITIES", "FIG6B_WIDTHS",
    "section7_setup", "usecase_gs_rows", "be_sweep_rows", "cost_rows",
    "composability_rows", "be_crossing_mhz", "DEFAULT_SWEEP_MHZ",
    "fifo_rows", "mesochronous_rows", "related_work_rows",
    "headline_ratio_rows", "throughput_rows",
    "table_size_rows", "fifo_depth_rows", "ordering_rows",
    "pipeline_stage_rows", "backend_rows",
    "format_table", "format_value",
]
