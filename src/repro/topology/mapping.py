"""IP-to-NI mapping heuristics.

The paper's Section VII use case maps 70 IPs onto the 48 NIs of a 4x3
concentrated mesh.  The mapping determines which NI serialises each IP's
connections, and therefore how much slot-table pressure each NI link sees.
Three heuristics are provided, all deterministic:

* :func:`round_robin` — simplest possible; IPs are dealt to NIs in order;
* :func:`traffic_balanced` — greedy bin-packing by aggregate IP bandwidth,
  heaviest first onto the lightest NI (ties broken by name), followed by a
  deterministic hop-aware swap refinement; by construction the result is
  never worse than :func:`round_robin` on :func:`hop_weighted_demand`,
  which is what makes it a sound warm start for the design-space
  mapping optimizer (:mod:`repro.design.mapping_opt`);
* :func:`communication_clustered` — greedily co-locates heavily
  communicating IP pairs on nearby routers to shorten paths.

:func:`hop_weighted_demand` is the shared placement metric: the sum over
channels of required bandwidth times the router-hop distance between the
endpoints' NIs — a topology-independent proxy for how many link-slots a
mapping will consume.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import networkx as nx

from repro.core.connection import ChannelSpec
from repro.core.exceptions import ConfigurationError, TopologyError
from repro.topology.graph import Topology

__all__ = ["Mapping", "round_robin", "traffic_balanced",
           "communication_clustered", "hop_weighted_demand",
           "router_distances"]


@dataclass(frozen=True)
class Mapping:
    """Immutable assignment of IP names to NI names."""

    ip_to_ni: Mapping[str, str] = field(default_factory=dict)

    def ni_of(self, ip: str) -> str:
        """NI hosting ``ip``; raises :class:`ConfigurationError` if unmapped."""
        try:
            return self.ip_to_ni[ip]
        except KeyError:
            raise ConfigurationError(f"IP {ip!r} is not mapped to any NI")

    def ips_of(self, ni: str) -> tuple[str, ...]:
        """All IPs hosted on ``ni``, sorted."""
        return tuple(sorted(ip for ip, n in self.ip_to_ni.items() if n == ni))

    @property
    def ips(self) -> tuple[str, ...]:
        """All mapped IPs, sorted."""
        return tuple(sorted(self.ip_to_ni))

    @property
    def nis(self) -> tuple[str, ...]:
        """All NIs that host at least one IP, sorted."""
        return tuple(sorted(set(self.ip_to_ni.values())))

    def validate(self, topo: Topology) -> None:
        """Every target must be an NI of ``topo``."""
        ni_set = set(topo.nis)
        for ip, ni in self.ip_to_ni.items():
            if ni not in ni_set:
                raise TopologyError(
                    f"IP {ip!r} mapped to unknown NI {ni!r}")

    def to_dict(self) -> dict[str, str]:
        """JSON-serialisable representation."""
        return dict(self.ip_to_ni)

    @staticmethod
    def from_dict(data: Mapping[str, str]) -> "Mapping":
        """Inverse of :meth:`to_dict`."""
        return Mapping(dict(data))


def round_robin(ips: Sequence[str], topo: Topology) -> Mapping:
    """Deal IPs to NIs in sorted order, wrapping around."""
    nis = topo.nis
    if not nis:
        raise TopologyError("topology has no NIs to map onto")
    assignment = {ip: nis[i % len(nis)] for i, ip in enumerate(sorted(ips))}
    return Mapping(assignment)


def router_distances(topo: Topology) -> dict[str, dict[str, int]]:
    """All-pairs router-hop distances of the router subgraph.

    Works on any builder family (torus wrap-around links included, since
    the distances come from the actual link graph, not coordinates).
    """
    rg = topo.router_graph()
    return {router: nx.single_source_shortest_path_length(rg, router)
            for router in topo.routers}


def hop_weighted_demand(topo: Topology, mapping: Mapping,
                        channels: Iterable[ChannelSpec], *,
                        distances: dict[str, dict[str, int]] | None
                        = None) -> float:
    """Sum over channels of throughput times router-hop distance.

    The shared placement metric of the mapping heuristics and the
    design-space optimizer: every router hop a channel traverses costs
    one slot reservation on one more link, so bandwidth times hops is a
    direct (topology-independent) proxy for aggregate slot consumption.
    Channels whose endpoints share a router contribute zero.
    """
    dist = distances or router_distances(topo)
    total = 0.0
    for ch in channels:
        src_router = topo.attached_router(mapping.ni_of(ch.src_ip))
        dst_router = topo.attached_router(mapping.ni_of(ch.dst_ip))
        hops = dist[src_router].get(dst_router)
        if hops is None:
            raise TopologyError(
                f"channel {ch.name!r}: no router path from "
                f"{src_router!r} to {dst_router!r} under mapping")
        total += ch.throughput_bytes_per_s * hops
    return total


def _swap_refined(assignment: dict[str, str], topo: Topology,
                  channels: Sequence[ChannelSpec],
                  dist: dict[str, dict[str, int]], *,
                  max_passes: int = 4) -> dict[str, str]:
    """First-improvement swap pass minimising hop-weighted demand.

    Swapping two IPs' NIs preserves the per-NI IP counts of the start
    assignment, so whatever balance the seeding phase established
    survives.  Deterministic: IPs are visited in sorted order and only
    strictly improving swaps are taken.
    """
    router_of = {ni: topo.attached_router(ni) for ni in set(assignment.values())}
    incident: dict[str, list[ChannelSpec]] = defaultdict(list)
    for ch in channels:
        incident[ch.src_ip].append(ch)
        if ch.dst_ip != ch.src_ip:
            incident[ch.dst_ip].append(ch)

    def cost_around(ips_touched: tuple[str, str]) -> float:
        seen: set[str] = set()
        total = 0.0
        for ip in ips_touched:
            for ch in incident.get(ip, ()):
                if ch.name in seen:
                    continue
                seen.add(ch.name)
                hops = dist[router_of[assignment[ch.src_ip]]].get(
                    router_of[assignment[ch.dst_ip]])
                if hops is None:
                    # A swap must never make an endpoint pair
                    # unreachable (one-way custom topologies).
                    return float("inf")
                total += ch.throughput_bytes_per_s * hops
        return total

    mapped = sorted(assignment)
    for _ in range(max_passes):
        improved = False
        for i, ip_a in enumerate(mapped):
            for ip_b in mapped[i + 1:]:
                if assignment[ip_a] == assignment[ip_b]:
                    continue
                before = cost_around((ip_a, ip_b))
                assignment[ip_a], assignment[ip_b] = \
                    assignment[ip_b], assignment[ip_a]
                after = cost_around((ip_a, ip_b))
                if after < before - 1e-9:
                    improved = True
                else:
                    assignment[ip_a], assignment[ip_b] = \
                        assignment[ip_b], assignment[ip_a]
        if not improved:
            break
    return assignment


def traffic_balanced(ips: Sequence[str], channels: Iterable[ChannelSpec],
                     topo: Topology) -> Mapping:
    """Greedy bandwidth balance across NIs, refined for locality.

    Each IP's weight is the sum of the throughput of all channels it
    sources or sinks; IPs are placed heaviest-first onto the NI with the
    least accumulated weight.  The greedy assignment is then compared
    against :func:`round_robin` on :func:`hop_weighted_demand` (the
    better of the two is kept, ties favouring the balanced one) and
    polished with a deterministic swap-only improvement pass — so the
    result is **guaranteed** no worse than ``round_robin`` on
    hop-weighted demand, while per-NI IP counts stay those of the
    seeding phase.
    """
    nis = topo.nis
    if not nis:
        raise TopologyError("topology has no NIs to map onto")
    channel_list = list(channels)
    weight: dict[str, float] = defaultdict(float)
    for ch in channel_list:
        weight[ch.src_ip] += ch.throughput_bytes_per_s
        weight[ch.dst_ip] += ch.throughput_bytes_per_s
    load = {ni: 0.0 for ni in nis}
    assignment: dict[str, str] = {}
    ordered = sorted(ips, key=lambda ip: (-weight.get(ip, 0.0), ip))
    for ip in ordered:
        target = min(nis, key=lambda ni: (load[ni], ni))
        assignment[ip] = target
        load[target] += weight.get(ip, 0.0)
    if not channel_list:
        return Mapping(assignment)
    dist = router_distances(topo)
    rr = dict(round_robin(ips, topo).ip_to_ni)
    try:
        greedy_cost = hop_weighted_demand(topo, Mapping(assignment),
                                          channel_list, distances=dist)
        rr_cost = hop_weighted_demand(topo, Mapping(rr), channel_list,
                                      distances=dist)
    except TopologyError:
        # Some endpoint pair has no router path (one-way custom
        # topologies): skip the hop-aware refinement and keep the
        # pre-refinement behaviour — the allocator reports such
        # channels cleanly.
        return Mapping(assignment)
    start = assignment if greedy_cost <= rr_cost else rr
    return Mapping(_swap_refined(dict(start), topo, channel_list, dist))


def communication_clustered(ips: Sequence[str],
                            channels: Iterable[ChannelSpec],
                            topo: Topology, *,
                            max_ips_per_ni: int | None = None) -> Mapping:
    """Co-locate communicating IPs on nearby routers.

    Channels are visited heaviest-first.  When one endpoint is already
    placed, the other is put on the free-est NI of the nearest router with
    spare capacity; when neither is placed, both are placed around the
    globally least-loaded router.  ``max_ips_per_ni`` defaults to a uniform
    capacity that fits all IPs.
    """
    nis = topo.nis
    if not nis:
        raise TopologyError("topology has no NIs to map onto")
    all_ips = sorted(ips)
    capacity = max_ips_per_ni or -(-len(all_ips) // len(nis))  # ceil division
    count: dict[str, int] = {ni: 0 for ni in nis}
    assignment: dict[str, str] = {}
    rg = topo.router_graph().to_undirected()
    dist = dict(nx.all_pairs_shortest_path_length(rg))

    def place(ip: str, near_router: str | None,
              avoid_ni: str | None = None) -> None:
        if ip in assignment:
            return
        candidates = [ni for ni in nis if count[ni] < capacity]
        if not candidates:
            raise ConfigurationError(
                f"cannot place IP {ip!r}: all NIs at capacity {capacity}")
        # Never share an NI with a communication partner when any other
        # NI is available: NI-local pairs cannot use the NoC at all.
        if avoid_ni is not None and len(candidates) > 1:
            candidates = [ni for ni in candidates if ni != avoid_ni]
        if near_router is None:
            target = min(candidates, key=lambda ni: (count[ni], ni))
        else:
            target = min(
                candidates,
                key=lambda ni: (dist[near_router][topo.attached_router(ni)],
                                count[ni], ni))
        assignment[ip] = target
        count[target] += 1

    ordered = sorted(channels,
                     key=lambda c: (-c.throughput_bytes_per_s, c.name))
    for ch in ordered:
        a_placed = ch.src_ip in assignment
        b_placed = ch.dst_ip in assignment
        if a_placed and b_placed:
            continue
        if a_placed:
            place(ch.dst_ip, topo.attached_router(assignment[ch.src_ip]),
                  avoid_ni=assignment[ch.src_ip])
        elif b_placed:
            place(ch.src_ip, topo.attached_router(assignment[ch.dst_ip]),
                  avoid_ni=assignment[ch.dst_ip])
        else:
            place(ch.src_ip, None)
            place(ch.dst_ip, topo.attached_router(assignment[ch.src_ip]),
                  avoid_ni=assignment[ch.src_ip])
    for ip in all_ips:
        place(ip, None)
    return Mapping(assignment)
