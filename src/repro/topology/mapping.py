"""IP-to-NI mapping heuristics.

The paper's Section VII use case maps 70 IPs onto the 48 NIs of a 4x3
concentrated mesh.  The mapping determines which NI serialises each IP's
connections, and therefore how much slot-table pressure each NI link sees.
Three heuristics are provided, all deterministic:

* :func:`round_robin` — simplest possible; IPs are dealt to NIs in order;
* :func:`traffic_balanced` — greedy bin-packing by aggregate IP bandwidth,
  heaviest first onto the lightest NI (ties broken by name);
* :func:`communication_clustered` — greedily co-locates heavily
  communicating IP pairs on nearby routers to shorten paths.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import networkx as nx

from repro.core.connection import ChannelSpec
from repro.core.exceptions import ConfigurationError, TopologyError
from repro.topology.graph import Topology

__all__ = ["Mapping", "round_robin", "traffic_balanced",
           "communication_clustered"]


@dataclass(frozen=True)
class Mapping:
    """Immutable assignment of IP names to NI names."""

    ip_to_ni: Mapping[str, str] = field(default_factory=dict)

    def ni_of(self, ip: str) -> str:
        """NI hosting ``ip``; raises :class:`ConfigurationError` if unmapped."""
        try:
            return self.ip_to_ni[ip]
        except KeyError:
            raise ConfigurationError(f"IP {ip!r} is not mapped to any NI")

    def ips_of(self, ni: str) -> tuple[str, ...]:
        """All IPs hosted on ``ni``, sorted."""
        return tuple(sorted(ip for ip, n in self.ip_to_ni.items() if n == ni))

    @property
    def ips(self) -> tuple[str, ...]:
        """All mapped IPs, sorted."""
        return tuple(sorted(self.ip_to_ni))

    @property
    def nis(self) -> tuple[str, ...]:
        """All NIs that host at least one IP, sorted."""
        return tuple(sorted(set(self.ip_to_ni.values())))

    def validate(self, topo: Topology) -> None:
        """Every target must be an NI of ``topo``."""
        ni_set = set(topo.nis)
        for ip, ni in self.ip_to_ni.items():
            if ni not in ni_set:
                raise TopologyError(
                    f"IP {ip!r} mapped to unknown NI {ni!r}")

    def to_dict(self) -> dict[str, str]:
        """JSON-serialisable representation."""
        return dict(self.ip_to_ni)

    @staticmethod
    def from_dict(data: Mapping[str, str]) -> "Mapping":
        """Inverse of :meth:`to_dict`."""
        return Mapping(dict(data))


def round_robin(ips: Sequence[str], topo: Topology) -> Mapping:
    """Deal IPs to NIs in sorted order, wrapping around."""
    nis = topo.nis
    if not nis:
        raise TopologyError("topology has no NIs to map onto")
    assignment = {ip: nis[i % len(nis)] for i, ip in enumerate(sorted(ips))}
    return Mapping(assignment)


def traffic_balanced(ips: Sequence[str], channels: Iterable[ChannelSpec],
                     topo: Topology) -> Mapping:
    """Greedy balance of aggregate bandwidth across NIs.

    Each IP's weight is the sum of the throughput of all channels it
    sources or sinks.  IPs are placed heaviest-first onto the NI with the
    least accumulated weight.
    """
    nis = topo.nis
    if not nis:
        raise TopologyError("topology has no NIs to map onto")
    weight: dict[str, float] = defaultdict(float)
    for ch in channels:
        weight[ch.src_ip] += ch.throughput_bytes_per_s
        weight[ch.dst_ip] += ch.throughput_bytes_per_s
    load = {ni: 0.0 for ni in nis}
    assignment: dict[str, str] = {}
    ordered = sorted(ips, key=lambda ip: (-weight.get(ip, 0.0), ip))
    for ip in ordered:
        target = min(nis, key=lambda ni: (load[ni], ni))
        assignment[ip] = target
        load[target] += weight.get(ip, 0.0)
    return Mapping(assignment)


def communication_clustered(ips: Sequence[str],
                            channels: Iterable[ChannelSpec],
                            topo: Topology, *,
                            max_ips_per_ni: int | None = None) -> Mapping:
    """Co-locate communicating IPs on nearby routers.

    Channels are visited heaviest-first.  When one endpoint is already
    placed, the other is put on the free-est NI of the nearest router with
    spare capacity; when neither is placed, both are placed around the
    globally least-loaded router.  ``max_ips_per_ni`` defaults to a uniform
    capacity that fits all IPs.
    """
    nis = topo.nis
    if not nis:
        raise TopologyError("topology has no NIs to map onto")
    all_ips = sorted(ips)
    capacity = max_ips_per_ni or -(-len(all_ips) // len(nis))  # ceil division
    count: dict[str, int] = {ni: 0 for ni in nis}
    assignment: dict[str, str] = {}
    rg = topo.router_graph().to_undirected()
    dist = dict(nx.all_pairs_shortest_path_length(rg))

    def place(ip: str, near_router: str | None,
              avoid_ni: str | None = None) -> None:
        if ip in assignment:
            return
        candidates = [ni for ni in nis if count[ni] < capacity]
        if not candidates:
            raise ConfigurationError(
                f"cannot place IP {ip!r}: all NIs at capacity {capacity}")
        # Never share an NI with a communication partner when any other
        # NI is available: NI-local pairs cannot use the NoC at all.
        if avoid_ni is not None and len(candidates) > 1:
            candidates = [ni for ni in candidates if ni != avoid_ni]
        if near_router is None:
            target = min(candidates, key=lambda ni: (count[ni], ni))
        else:
            target = min(
                candidates,
                key=lambda ni: (dist[near_router][topo.attached_router(ni)],
                                count[ni], ni))
        assignment[ip] = target
        count[target] += 1

    ordered = sorted(channels,
                     key=lambda c: (-c.throughput_bytes_per_s, c.name))
    for ch in ordered:
        a_placed = ch.src_ip in assignment
        b_placed = ch.dst_ip in assignment
        if a_placed and b_placed:
            continue
        if a_placed:
            place(ch.dst_ip, topo.attached_router(assignment[ch.src_ip]),
                  avoid_ni=assignment[ch.src_ip])
        elif b_placed:
            place(ch.src_ip, topo.attached_router(assignment[ch.dst_ip]),
                  avoid_ni=assignment[ch.dst_ip])
        else:
            place(ch.src_ip, None)
            place(ch.dst_ip, topo.attached_router(assignment[ch.src_ip]),
                  avoid_ni=assignment[ch.src_ip])
    for ip in all_ips:
        place(ip, None)
    return Mapping(assignment)
