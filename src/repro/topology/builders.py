"""Topology builders: mesh, concentrated mesh, ring, torus, line, custom.

All builders produce validated :class:`~repro.topology.graph.Topology`
instances with deterministic names and port numbering:

* mesh routers are ``r{x}_{y}`` with ``x`` the column (0-based, west to
  east) and ``y`` the row (0-based, north to south); coordinates are stored
  as node attributes ``x``/``y`` so XY routing can use them;
* NIs of a router are ``ni{x}_{y}_{k}`` with ``k`` counting the NIs of that
  router (a *concentrated* topology in the paper's sense has several NIs
  per router, e.g. the 4x3 mesh with 4 NIs per router of Section VII);
* ring/torus routers reuse the same scheme (a ring is a 1-row torus).

``pipeline_stages`` applies to all router-to-router links; NI-to-router
links are assumed local (same clock region as the router's input stage).
Use :meth:`Topology.set_pipeline_stages` for heterogeneous pipelining.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.exceptions import TopologyError
from repro.topology.graph import Topology

__all__ = ["mesh", "concentrated_mesh", "line", "ring", "torus",
           "single_router", "custom", "router_coords", "ni_names_of"]


def _router_name(x: int, y: int) -> str:
    return f"r{x}_{y}"


def _ni_name(x: int, y: int, k: int) -> str:
    return f"ni{x}_{y}_{k}"


def router_coords(topo: Topology, router: str) -> tuple[int, int]:
    """Mesh coordinates ``(x, y)`` stored by the builders."""
    attrs = topo.node_attrs(router)
    if "x" not in attrs or "y" not in attrs:
        raise TopologyError(f"router {router!r} carries no mesh coordinates")
    return int(attrs["x"]), int(attrs["y"])  # type: ignore[arg-type]


def ni_names_of(topo: Topology, router: str) -> tuple[str, ...]:
    """NIs attached to a router (alias of ``Topology.nis_of_router``)."""
    return topo.nis_of_router(router)


def mesh(cols: int, rows: int, *, nis_per_router: int = 1,
         pipeline_stages: int = 0, name: str | None = None) -> Topology:
    """Build a ``cols x rows`` 2D mesh.

    >>> topo = mesh(2, 2, nis_per_router=1)
    >>> len(topo.routers), len(topo.nis)
    (4, 4)
    >>> topo.has_link("r0_0", "r1_0") and topo.has_link("r1_0", "r0_0")
    True

    Parameters
    ----------
    cols, rows:
        Mesh extent; the paper's Section VII use case is ``mesh(4, 3,
        nis_per_router=4)``.
    nis_per_router:
        Number of NIs hanging off each router (concentration factor).
    pipeline_stages:
        Mesochronous link pipeline stages inserted on every router-router
        link.
    """
    if cols < 1 or rows < 1:
        raise TopologyError(f"mesh needs positive extent, got {cols}x{rows}")
    if nis_per_router < 0:
        raise TopologyError("nis_per_router must be >= 0")
    topo = Topology(name or f"mesh{cols}x{rows}")
    for y in range(rows):
        for x in range(cols):
            topo.add_router(_router_name(x, y), x=x, y=y)
    for y in range(rows):
        for x in range(cols):
            if x + 1 < cols:
                topo.connect_bidir(_router_name(x, y), _router_name(x + 1, y),
                                   pipeline_stages=pipeline_stages)
            if y + 1 < rows:
                topo.connect_bidir(_router_name(x, y), _router_name(x, y + 1),
                                   pipeline_stages=pipeline_stages)
    _attach_nis(topo, nis_per_router)
    topo.validate()
    return topo


def concentrated_mesh(cols: int, rows: int, *, nis_per_router: int = 4,
                      pipeline_stages: int = 0,
                      name: str | None = None) -> Topology:
    """A mesh with several NIs per router (the paper's evaluation topology)."""
    return mesh(cols, rows, nis_per_router=nis_per_router,
                pipeline_stages=pipeline_stages,
                name=name or f"cmesh{cols}x{rows}x{nis_per_router}")


def line(n: int, *, nis_per_router: int = 1, pipeline_stages: int = 0,
         name: str | None = None) -> Topology:
    """A 1D chain of ``n`` routers (a ``n x 1`` mesh)."""
    return mesh(n, 1, nis_per_router=nis_per_router,
                pipeline_stages=pipeline_stages, name=name or f"line{n}")


def ring(n: int, *, nis_per_router: int = 1, pipeline_stages: int = 0,
         name: str | None = None) -> Topology:
    """A bidirectional ring of ``n`` routers."""
    if n < 3:
        raise TopologyError(f"ring needs >= 3 routers, got {n}")
    topo = Topology(name or f"ring{n}")
    for i in range(n):
        topo.add_router(_router_name(i, 0), x=i, y=0)
    for i in range(n):
        topo.connect_bidir(_router_name(i, 0), _router_name((i + 1) % n, 0),
                           pipeline_stages=pipeline_stages)
    _attach_nis(topo, nis_per_router)
    topo.validate()
    return topo


def torus(cols: int, rows: int, *, nis_per_router: int = 1,
          pipeline_stages: int = 0, name: str | None = None) -> Topology:
    """A 2D torus (mesh with wrap-around links)."""
    if cols < 3 or rows < 3:
        raise TopologyError(
            f"torus needs extent >= 3 in both dimensions, got {cols}x{rows}")
    topo = Topology(name or f"torus{cols}x{rows}")
    for y in range(rows):
        for x in range(cols):
            topo.add_router(_router_name(x, y), x=x, y=y)
    for y in range(rows):
        for x in range(cols):
            topo.connect_bidir(_router_name(x, y),
                               _router_name((x + 1) % cols, y),
                               pipeline_stages=pipeline_stages)
    for x in range(cols):
        for y in range(rows):
            topo.connect_bidir(_router_name(x, y),
                               _router_name(x, (y + 1) % rows),
                               pipeline_stages=pipeline_stages)
    _attach_nis(topo, nis_per_router)
    topo.validate()
    return topo


def single_router(arity_nis: int = 2, *, name: str | None = None) -> Topology:
    """One router with ``arity_nis`` NIs — the smallest useful network."""
    if arity_nis < 1:
        raise TopologyError("single_router needs at least one NI")
    topo = Topology(name or "single")
    topo.add_router(_router_name(0, 0), x=0, y=0)
    _attach_nis(topo, arity_nis)
    topo.validate()
    return topo


def custom(router_edges: Iterable[tuple[str, str]],
           nis: Sequence[tuple[str, str]], *, pipeline_stages: int = 0,
           name: str = "custom") -> Topology:
    """Build an arbitrary topology.

    Parameters
    ----------
    router_edges:
        Directed router-to-router edges; add both directions for
        bidirectional cables.
    nis:
        Pairs ``(ni_name, router_name)``; each NI is connected both ways to
        its router.
    """
    topo = Topology(name)
    routers: list[str] = []
    edges = list(router_edges)
    for a, b in edges:
        for r in (a, b):
            if r not in routers:
                routers.append(r)
    ni_routers = [r for _, r in nis if r not in routers]
    for r in routers + ni_routers:
        topo.add_router(r)
    for a, b in edges:
        topo.connect(a, b, pipeline_stages=pipeline_stages)
    for ni_name, router in nis:
        topo.add_ni(ni_name)
        topo.connect(ni_name, router)
        topo.connect(router, ni_name)
    topo.validate()
    return topo


def _attach_nis(topo: Topology, nis_per_router: int) -> None:
    """Attach ``nis_per_router`` NIs to every router of ``topo``."""
    for router in topo.routers:
        attrs = topo.node_attrs(router)
        x = int(attrs.get("x", 0))  # type: ignore[arg-type]
        y = int(attrs.get("y", 0))  # type: ignore[arg-type]
        for k in range(nis_per_router):
            ni = _ni_name(x, y, k)
            topo.add_ni(ni, x=x, y=y, index=k)
            topo.connect(ni, router)
            topo.connect(router, ni)
