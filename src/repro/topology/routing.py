"""Path selection for source routing.

Provides deterministic XY routing for meshes (the classic dimension-ordered
route, which is what the Æthereal tool flow defaults to), generic k-shortest
path enumeration for arbitrary topologies, and a congestion-aware variant
that weighs links by their current slot occupancy so the allocator can steer
later channels around crowded regions.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

import networkx as nx

from repro.core.exceptions import TopologyError
from repro.core.path import Path, make_path
from repro.topology.builders import router_coords
from repro.topology.graph import Topology

__all__ = [
    "xy_route",
    "xy_path",
    "k_shortest_paths",
    "weighted_shortest_path",
    "candidate_paths",
]


def xy_route(topo: Topology, src_router: str, dst_router: str) -> list[str]:
    """Dimension-ordered (X then Y) router sequence on a mesh.

    Requires the builder-stored ``x``/``y`` coordinates and the mesh links
    to exist; raises :class:`TopologyError` otherwise.
    """
    sx, sy = router_coords(topo, src_router)
    dx, dy = router_coords(topo, dst_router)
    route = [src_router]
    x, y = sx, sy
    while x != dx:
        x += 1 if dx > x else -1
        nxt = f"r{x}_{y}"
        if not topo.has_link(route[-1], nxt):
            raise TopologyError(
                f"XY routing expects mesh link {route[-1]!r} -> {nxt!r}")
        route.append(nxt)
    while y != dy:
        y += 1 if dy > y else -1
        nxt = f"r{x}_{y}"
        if not topo.has_link(route[-1], nxt):
            raise TopologyError(
                f"XY routing expects mesh link {route[-1]!r} -> {nxt!r}")
        route.append(nxt)
    return route


def xy_path(topo: Topology, src_ni: str, dst_ni: str) -> Path:
    """End-to-end XY-routed path between two NIs."""
    src_router = topo.attached_router(src_ni)
    dst_router = topo.attached_router(dst_ni)
    routers = xy_route(topo, src_router, dst_router)
    return make_path(topo, src_ni, routers, dst_ni)


def k_shortest_paths(topo: Topology, src_ni: str, dst_ni: str,
                     k: int = 4) -> list[Path]:
    """Up to ``k`` loop-free shortest router paths between two NIs.

    Paths are ordered by hop count (ties broken by networkx's deterministic
    enumeration), so the first entry is always a minimal route.
    """
    if k < 1:
        raise TopologyError(f"k must be >= 1, got {k}")
    src_router = topo.attached_router(src_ni)
    dst_router = topo.attached_router(dst_ni)
    rg = topo.router_graph()
    paths: list[Path] = []
    if src_router == dst_router:
        return [make_path(topo, src_ni, [src_router], dst_ni)]
    try:
        generator: Iterator[list[str]] = nx.shortest_simple_paths(
            rg, src_router, dst_router)
        for routers in generator:
            paths.append(make_path(topo, src_ni, routers, dst_ni))
            if len(paths) >= k:
                break
    except nx.NetworkXNoPath:
        raise TopologyError(
            f"no router path from {src_router!r} to {dst_router!r}")
    return paths


def weighted_shortest_path(topo: Topology, src_ni: str, dst_ni: str,
                           link_weight: Callable[[tuple[str, str]], float]
                           ) -> Path:
    """Shortest path under a caller-supplied per-link weight.

    ``link_weight`` maps a directed link key to a non-negative cost; the
    allocator passes current slot occupancy so loaded links are avoided.
    """
    src_router = topo.attached_router(src_ni)
    dst_router = topo.attached_router(dst_ni)
    if src_router == dst_router:
        return make_path(topo, src_ni, [src_router], dst_ni)
    rg = topo.router_graph()

    def weight(u: str, v: str, _d: Mapping[str, object]) -> float:
        return 1.0 + link_weight((u, v))

    try:
        routers = nx.shortest_path(rg, src_router, dst_router, weight=weight)
    except nx.NetworkXNoPath:
        raise TopologyError(
            f"no router path from {src_router!r} to {dst_router!r}")
    return make_path(topo, src_ni, routers, dst_ni)


def candidate_paths(topo: Topology, src_ni: str, dst_ni: str, *,
                    k: int = 4,
                    link_weight: Callable[[tuple[str, str]], float] | None = None
                    ) -> list[Path]:
    """Candidate routes for the allocator: k-shortest plus one load-aware.

    The load-aware path (when ``link_weight`` is given) is prepended if it
    is not already among the k-shortest candidates, so the allocator tries
    the least-congested route first.
    """
    paths = k_shortest_paths(topo, src_ni, dst_ni, k)
    if link_weight is not None:
        weighted = weighted_shortest_path(topo, src_ni, dst_ni, link_weight)
        keys = {p.link_keys() for p in paths}
        if weighted.link_keys() not in keys:
            paths.insert(0, weighted)
        else:
            # Move the load-aware route to the front so it is tried first.
            paths.sort(key=lambda p: p.link_keys() != weighted.link_keys())
    return paths
