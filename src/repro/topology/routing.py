"""Path selection for source routing.

Provides deterministic XY routing for meshes (the classic dimension-ordered
route, which is what the Æthereal tool flow defaults to), generic k-shortest
path enumeration for arbitrary topologies, and a congestion-aware variant
that weighs links by their current slot occupancy so the allocator can steer
later channels around crowded regions.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

import networkx as nx

from repro.core.exceptions import TopologyError
from repro.core.path import Path, make_path
from repro.topology.builders import router_coords
from repro.topology.graph import Topology

__all__ = [
    "xy_route",
    "xy_path",
    "k_shortest_paths",
    "weighted_shortest_path",
    "merge_load_aware",
    "candidate_paths",
]


def xy_route(topo: Topology, src_router: str, dst_router: str) -> list[str]:
    """Dimension-ordered (X then Y) router sequence on a mesh.

    Requires the builder-stored ``x``/``y`` coordinates and the mesh links
    to exist; raises :class:`TopologyError` otherwise.
    """
    sx, sy = router_coords(topo, src_router)
    dx, dy = router_coords(topo, dst_router)
    route = [src_router]
    x, y = sx, sy
    while x != dx:
        x += 1 if dx > x else -1
        nxt = f"r{x}_{y}"
        if not topo.has_link(route[-1], nxt):
            raise TopologyError(
                f"XY routing expects mesh link {route[-1]!r} -> {nxt!r}")
        route.append(nxt)
    while y != dy:
        y += 1 if dy > y else -1
        nxt = f"r{x}_{y}"
        if not topo.has_link(route[-1], nxt):
            raise TopologyError(
                f"XY routing expects mesh link {route[-1]!r} -> {nxt!r}")
        route.append(nxt)
    return route


def xy_path(topo: Topology, src_ni: str, dst_ni: str) -> Path:
    """End-to-end XY-routed path between two NIs."""
    src_router = topo.attached_router(src_ni)
    dst_router = topo.attached_router(dst_ni)
    routers = xy_route(topo, src_router, dst_router)
    return make_path(topo, src_ni, routers, dst_ni)


def k_shortest_paths(topo: Topology, src_ni: str, dst_ni: str,
                     k: int = 4, *,
                     exclude_links: frozenset[tuple[str, str]] | set |
                     None = None) -> list[Path]:
    """Up to ``k`` loop-free shortest router paths between two NIs.

    Paths are ordered by hop count with ties broken by the router name
    sequence.  networkx's enumeration order among equal-cost paths depends
    on ``PYTHONHASHSEED``, so the tie group straddling the ``k``-th path is
    collected in full (up to a generous cap) and sorted before truncation —
    this is what makes allocations, and everything derived from them
    (reports, admission decisions), reproducible across processes.

    ``exclude_links`` names directed link keys that must not be traversed
    (the fault-injection layer passes the failed set); a search whose NI
    attachment link is excluded, or whose endpoints are disconnected on the
    surviving graph, raises :class:`TopologyError` like any unroutable pair.

    >>> from repro.topology.builders import mesh
    >>> topo = mesh(2, 2, nis_per_router=1)
    >>> [p.routers for p in k_shortest_paths(topo, "ni0_0_0",
    ...                                      "ni1_1_0", 2)]
    [('r0_0', 'r0_1', 'r1_1'), ('r0_0', 'r1_0', 'r1_1')]
    >>> [p.routers for p in k_shortest_paths(
    ...     topo, "ni0_0_0", "ni1_1_0", 2,
    ...     exclude_links=frozenset({("r0_0", "r0_1")}))]
    [('r0_0', 'r1_0', 'r1_1')]
    """
    if k < 1:
        raise TopologyError(f"k must be >= 1, got {k}")
    src_router = topo.attached_router(src_ni)
    dst_router = topo.attached_router(dst_ni)
    rg = topo.router_graph()
    if exclude_links:
        if (src_ni, src_router) in exclude_links or \
                (dst_router, dst_ni) in exclude_links:
            raise TopologyError(
                f"NI attachment link of {src_ni!r} or {dst_ni!r} is "
                "excluded; no surviving route exists")
        rg.remove_edges_from(
            [key for key in exclude_links if rg.has_edge(*key)])
    if src_router == dst_router:
        return [make_path(topo, src_ni, [src_router], dst_ni)]
    routes: list[list[str]] = []
    cap = max(32, 4 * k)
    try:
        generator: Iterator[list[str]] = nx.shortest_simple_paths(
            rg, src_router, dst_router)
        for routers in generator:
            if len(routes) >= k and len(routers) > len(routes[k - 1]):
                break  # past the tie group of the k-th path
            routes.append(routers)
            if len(routes) >= cap:
                break
    except nx.NetworkXNoPath:
        raise TopologyError(
            f"no router path from {src_router!r} to {dst_router!r}")
    routes.sort(key=lambda r: (len(r), r))
    return [make_path(topo, src_ni, routers, dst_ni)
            for routers in routes[:k]]


def weighted_shortest_path(topo: Topology, src_ni: str, dst_ni: str,
                           link_weight: Callable[[tuple[str, str]], float]
                           ) -> Path:
    """Shortest path under a caller-supplied per-link weight.

    ``link_weight`` maps a directed link key to a non-negative cost; the
    allocator passes current slot occupancy so loaded links are avoided.
    """
    src_router = topo.attached_router(src_ni)
    dst_router = topo.attached_router(dst_ni)
    if src_router == dst_router:
        return make_path(topo, src_ni, [src_router], dst_ni)
    rg = topo.router_graph()

    def weight(u: str, v: str, _d: Mapping[str, object]) -> float:
        return 1.0 + link_weight((u, v))

    try:
        routers = nx.shortest_path(rg, src_router, dst_router, weight=weight)
    except nx.NetworkXNoPath:
        raise TopologyError(
            f"no router path from {src_router!r} to {dst_router!r}")
    return make_path(topo, src_ni, routers, dst_ni)


def merge_load_aware(paths: list[Path], weighted: Path) -> list[Path]:
    """Merge a load-aware route into a candidate list, in place.

    The load-aware path is prepended if it is not already among the
    candidates; otherwise the matching candidate is (stably) moved to the
    front — either way the least-congested route is tried first.  Shared
    by :func:`candidate_paths` and the allocator's cached candidate flow
    so the merge rule cannot diverge.
    """
    keys = {p.link_keys() for p in paths}
    if weighted.link_keys() not in keys:
        paths.insert(0, weighted)
    else:
        paths.sort(key=lambda p: p.link_keys() != weighted.link_keys())
    return paths


def candidate_paths(topo: Topology, src_ni: str, dst_ni: str, *,
                    k: int = 4,
                    link_weight: Callable[[tuple[str, str]], float] | None = None
                    ) -> list[Path]:
    """Candidate routes: k-shortest plus one load-aware.

    Standalone variant of the allocator's cached candidate flow
    (:meth:`~repro.core.allocation.SlotAllocator.shortest_candidates`
    plus :func:`merge_load_aware`); note the allocator additionally
    filters routes by the header hop budget.
    """
    paths = k_shortest_paths(topo, src_ni, dst_ni, k)
    if link_weight is not None:
        weighted = weighted_shortest_path(topo, src_ni, dst_ni, link_weight)
        merge_load_aware(paths, weighted)
    return paths
