"""NoC topology graph: routers, network interfaces, and directed links.

The topology is the structural substrate everything else builds on: the
allocator reserves slots on its links, the simulators instantiate one model
per node, and the synthesis model sums areas over its routers and link
pipeline stages.

Conventions
-----------
* Nodes are identified by unique string names.  Builders in
  :mod:`repro.topology.builders` use ``r{x}_{y}`` for mesh routers and
  ``ni{x}_{y}_{k}`` for their NIs, but any names work.
* Links are **directed**; a bidirectional cable is two links.
* Each link records the output-port index at its source and the input-port
  index at its destination.  Ports are numbered in connection order, giving
  a deterministic port map that the header encoding relies on.
* ``pipeline_stages`` on a link counts mesochronous link pipeline stages
  (Section V of the paper); each stage adds one TDM slot to the traversal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Mapping

import networkx as nx

from repro.core.exceptions import TopologyError

__all__ = ["NodeKind", "Link", "Topology"]


class NodeKind(enum.Enum):
    """The two node types of an aelite network."""

    ROUTER = "router"
    NI = "ni"


@dataclass(frozen=True)
class Link:
    """A directed physical link.

    Attributes
    ----------
    src, dst:
        Node names of the driving and receiving element.
    src_port:
        Output-port index at the source (0 for an NI, which has a single
        network-facing port).
    dst_port:
        Input-port index at the destination.
    pipeline_stages:
        Number of mesochronous link pipeline stages on this link; each one
        delays the flit by exactly one TDM slot (three cycles).
    """

    src: str
    dst: str
    src_port: int
    dst_port: int
    pipeline_stages: int = 0

    @property
    def key(self) -> tuple[str, str]:
        """Dictionary key ``(src, dst)`` identifying this link."""
        return (self.src, self.dst)

    def __repr__(self) -> str:
        stages = f" +{self.pipeline_stages}ps" if self.pipeline_stages else ""
        return (f"Link({self.src}[p{self.src_port}] -> "
                f"{self.dst}[p{self.dst_port}]{stages})")


class Topology:
    """Mutable NoC structure with validation and convenience queries."""

    def __init__(self, name: str = "noc"):
        self.name = name
        self._graph = nx.DiGraph()
        self._next_out_port: dict[str, int] = {}
        self._next_in_port: dict[str, int] = {}

    # -- construction -------------------------------------------------------

    def add_router(self, name: str, **attrs: object) -> None:
        """Add a router node; extra attributes (e.g. mesh coords) are kept."""
        self._add_node(name, NodeKind.ROUTER, attrs)

    def add_ni(self, name: str, **attrs: object) -> None:
        """Add a network-interface node."""
        self._add_node(name, NodeKind.NI, attrs)

    def _add_node(self, name: str, kind: NodeKind,
                  attrs: Mapping[str, object]) -> None:
        if not name:
            raise TopologyError("node name must be non-empty")
        if name in self._graph:
            raise TopologyError(f"duplicate node name {name!r}")
        self._graph.add_node(name, kind=kind, **attrs)
        self._next_out_port[name] = 0
        self._next_in_port[name] = 0

    def connect(self, src: str, dst: str, *, pipeline_stages: int = 0) -> Link:
        """Add a directed link, auto-assigning the next free port numbers."""
        self._require_node(src)
        self._require_node(dst)
        if src == dst:
            raise TopologyError(f"self-loop on {src!r} is not allowed")
        if self._graph.has_edge(src, dst):
            raise TopologyError(f"link {src!r} -> {dst!r} already exists")
        if pipeline_stages < 0:
            raise TopologyError("pipeline_stages must be >= 0")
        if self.kind(src) is NodeKind.NI and self.kind(dst) is NodeKind.NI:
            raise TopologyError(
                f"NIs may not be directly connected ({src!r} -> {dst!r})")
        link = Link(src=src, dst=dst,
                    src_port=self._take_out_port(src),
                    dst_port=self._take_in_port(dst),
                    pipeline_stages=pipeline_stages)
        self._graph.add_edge(src, dst, link=link)
        return link

    def connect_bidir(self, a: str, b: str, *,
                      pipeline_stages: int = 0) -> tuple[Link, Link]:
        """Add links in both directions and return ``(a->b, b->a)``."""
        return (self.connect(a, b, pipeline_stages=pipeline_stages),
                self.connect(b, a, pipeline_stages=pipeline_stages))

    def set_pipeline_stages(self, src: str, dst: str, stages: int) -> Link:
        """Replace the pipeline-stage count of an existing link."""
        old = self.link(src, dst)
        if stages < 0:
            raise TopologyError("pipeline_stages must be >= 0")
        new = Link(src=old.src, dst=old.dst, src_port=old.src_port,
                   dst_port=old.dst_port, pipeline_stages=stages)
        self._graph.edges[src, dst]["link"] = new
        return new

    def _take_out_port(self, node: str) -> int:
        if self.kind(node) is NodeKind.NI:
            if self._next_out_port[node] > 0:
                raise TopologyError(
                    f"NI {node!r} already has a network-facing output link")
            self._next_out_port[node] = 1
            return 0
        port = self._next_out_port[node]
        self._next_out_port[node] = port + 1
        return port

    def _take_in_port(self, node: str) -> int:
        if self.kind(node) is NodeKind.NI:
            if self._next_in_port[node] > 0:
                raise TopologyError(
                    f"NI {node!r} already has a network-facing input link")
            self._next_in_port[node] = 1
            return 0
        port = self._next_in_port[node]
        self._next_in_port[node] = port + 1
        return port

    # -- queries ------------------------------------------------------------

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying directed graph (read-only by convention)."""
        return self._graph

    def kind(self, name: str) -> NodeKind:
        """Node kind of ``name``."""
        self._require_node(name)
        return self._graph.nodes[name]["kind"]

    def node_attrs(self, name: str) -> Mapping[str, object]:
        """All attributes stored on a node (includes ``kind``)."""
        self._require_node(name)
        return dict(self._graph.nodes[name])

    @property
    def routers(self) -> tuple[str, ...]:
        """All router names, sorted for determinism."""
        return tuple(sorted(n for n, d in self._graph.nodes(data=True)
                            if d["kind"] is NodeKind.ROUTER))

    @property
    def nis(self) -> tuple[str, ...]:
        """All NI names, sorted for determinism."""
        return tuple(sorted(n for n, d in self._graph.nodes(data=True)
                            if d["kind"] is NodeKind.NI))

    @property
    def links(self) -> tuple[Link, ...]:
        """All directed links, sorted by ``(src, dst)``."""
        return tuple(sorted((d["link"] for _, _, d in
                             self._graph.edges(data=True)),
                            key=lambda l: l.key))

    def link(self, src: str, dst: str) -> Link:
        """The link ``src -> dst``; raises :class:`TopologyError` if absent."""
        if not self._graph.has_edge(src, dst):
            raise TopologyError(f"no link {src!r} -> {dst!r}")
        return self._graph.edges[src, dst]["link"]

    def has_link(self, src: str, dst: str) -> bool:
        """True when a directed link ``src -> dst`` exists."""
        return self._graph.has_edge(src, dst)

    def successors(self, name: str) -> tuple[str, ...]:
        """Downstream neighbours, sorted."""
        self._require_node(name)
        return tuple(sorted(self._graph.successors(name)))

    def predecessors(self, name: str) -> tuple[str, ...]:
        """Upstream neighbours, sorted."""
        self._require_node(name)
        return tuple(sorted(self._graph.predecessors(name)))

    def arity(self, router: str) -> int:
        """Port count of a router: ``max(#inputs, #outputs)``."""
        if self.kind(router) is not NodeKind.ROUTER:
            raise TopologyError(f"{router!r} is not a router")
        return max(self._graph.in_degree(router),
                   self._graph.out_degree(router))

    def attached_router(self, ni: str) -> str:
        """The router an NI is cabled to (validated to be unique)."""
        if self.kind(ni) is not NodeKind.NI:
            raise TopologyError(f"{ni!r} is not an NI")
        succ = list(self._graph.successors(ni))
        if len(succ) != 1:
            raise TopologyError(
                f"NI {ni!r} must have exactly one outgoing link, has {len(succ)}")
        return succ[0]

    def nis_of_router(self, router: str) -> tuple[str, ...]:
        """All NIs attached to ``router``, sorted."""
        if self.kind(router) is not NodeKind.ROUTER:
            raise TopologyError(f"{router!r} is not a router")
        return tuple(sorted(n for n in self._graph.predecessors(router)
                            if self.kind(n) is NodeKind.NI))

    def router_graph(self) -> nx.DiGraph:
        """Subgraph induced by the routers (for path search).

        Built node-by-node in sorted order rather than via ``subgraph()``:
        networkx's induced-subgraph copy iterates a node *set*, whose order
        depends on ``PYTHONHASHSEED``, and that order leaks into shortest-
        path tie-breaking — allocations must not vary across processes.
        """
        rg = nx.DiGraph()
        rg.add_nodes_from(self.routers)
        for link in self.links:
            if rg.has_node(link.src) and rg.has_node(link.dst):
                rg.add_edge(link.src, link.dst, link=link)
        return rg

    def out_port(self, src: str, dst: str) -> int:
        """Output-port index used by ``src`` to reach ``dst``."""
        return self.link(src, dst).src_port

    def neighbor_on_port(self, router: str, out_port: int) -> str:
        """Inverse of :meth:`out_port`: which node hangs off a given port."""
        for succ in self._graph.successors(router):
            if self.link(router, succ).src_port == out_port:
                return succ
        raise TopologyError(f"router {router!r} has no output port {out_port}")

    def iter_link_keys(self) -> Iterator[tuple[str, str]]:
        """Iterate directed link keys, sorted."""
        for link in self.links:
            yield link.key

    def max_pipeline_stages(self) -> int:
        """Largest pipeline-stage count over all links."""
        return max((l.pipeline_stages for l in self.links), default=0)

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TopologyError`.

        * every NI has exactly one outgoing and one incoming link, both to
          a router;
        * the router subgraph is weakly connected (if there are >= 2
          routers);
        * every router has at least one input and one output.
        """
        for ni in self.nis:
            out = list(self._graph.successors(ni))
            inc = list(self._graph.predecessors(ni))
            if len(out) != 1 or len(inc) != 1:
                raise TopologyError(
                    f"NI {ni!r} needs exactly one link each way, has "
                    f"{len(out)} out / {len(inc)} in")
            if self.kind(out[0]) is not NodeKind.ROUTER or \
                    self.kind(inc[0]) is not NodeKind.ROUTER:
                raise TopologyError(f"NI {ni!r} must attach to a router")
        routers = self.routers
        if len(routers) >= 2:
            rg = self._graph.subgraph(routers)
            if not nx.is_weakly_connected(rg):
                raise TopologyError("router network is not connected")
        for r in routers:
            if self._graph.in_degree(r) == 0 or self._graph.out_degree(r) == 0:
                raise TopologyError(f"router {r!r} has a dangling side")

    # -- (de)serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable structural description."""
        return {
            "name": self.name,
            "routers": list(self.routers),
            "nis": list(self.nis),
            "links": [
                {"src": l.src, "dst": l.dst, "src_port": l.src_port,
                 "dst_port": l.dst_port, "pipeline_stages": l.pipeline_stages}
                for l in self.links
            ],
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "Topology":
        """Rebuild a topology saved with :meth:`to_dict`.

        Port numbers are re-derived from link order, so the serialised link
        list must be in the original connection order; :meth:`to_dict`
        preserves sorted order which keeps the mapping deterministic either
        way because readers must use the stored port numbers, which are
        re-checked here.
        """
        topo = Topology(str(data.get("name", "noc")))
        for r in data["routers"]:  # type: ignore[union-attr]
            topo.add_router(str(r))
        for n in data["nis"]:  # type: ignore[union-attr]
            topo.add_ni(str(n))
        for ld in data["links"]:  # type: ignore[union-attr]
            topo._connect_explicit(
                Link(src=str(ld["src"]), dst=str(ld["dst"]),
                     src_port=int(ld["src_port"]), dst_port=int(ld["dst_port"]),
                     pipeline_stages=int(ld["pipeline_stages"])))
        return topo

    def _connect_explicit(self, link: Link) -> None:
        """Insert a link with pre-assigned port numbers (deserialisation)."""
        self._require_node(link.src)
        self._require_node(link.dst)
        if self._graph.has_edge(link.src, link.dst):
            raise TopologyError(f"link {link.src!r} -> {link.dst!r} already exists")
        for succ in self._graph.successors(link.src):
            if self.link(link.src, succ).src_port == link.src_port:
                raise TopologyError(
                    f"output port {link.src_port} of {link.src!r} already used")
        for pred in self._graph.predecessors(link.dst):
            if self.link(pred, link.dst).dst_port == link.dst_port:
                raise TopologyError(
                    f"input port {link.dst_port} of {link.dst!r} already used")
        self._graph.add_edge(link.src, link.dst, link=link)
        self._next_out_port[link.src] = max(self._next_out_port[link.src],
                                            link.src_port + 1)
        self._next_in_port[link.dst] = max(self._next_in_port[link.dst],
                                           link.dst_port + 1)

    # -- internals ----------------------------------------------------------

    def _require_node(self, name: str) -> None:
        if name not in self._graph:
            raise TopologyError(f"unknown node {name!r}")

    def __repr__(self) -> str:
        return (f"Topology({self.name!r}: {len(self.routers)} routers, "
                f"{len(self.nis)} NIs, {len(self.links)} links)")
