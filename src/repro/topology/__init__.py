"""Topology substrate: NoC structure, builders, mapping, and routing.

Exports are resolved lazily (PEP 562) to keep cross-package imports
(``repro.core`` <-> ``repro.topology``) cycle-free.
"""

from __future__ import annotations

import importlib

_EXPORTS: dict[str, str] = {
    "Topology": "repro.topology.graph",
    "Link": "repro.topology.graph",
    "NodeKind": "repro.topology.graph",
    "mesh": "repro.topology.builders",
    "concentrated_mesh": "repro.topology.builders",
    "line": "repro.topology.builders",
    "ring": "repro.topology.builders",
    "torus": "repro.topology.builders",
    "single_router": "repro.topology.builders",
    "custom": "repro.topology.builders",
    "router_coords": "repro.topology.builders",
    "ni_names_of": "repro.topology.builders",
    "Mapping": "repro.topology.mapping",
    "round_robin": "repro.topology.mapping",
    "traffic_balanced": "repro.topology.mapping",
    "communication_clustered": "repro.topology.mapping",
    "hop_weighted_demand": "repro.topology.mapping",
    "router_distances": "repro.topology.mapping",
    "xy_route": "repro.topology.routing",
    "xy_path": "repro.topology.routing",
    "k_shortest_paths": "repro.topology.routing",
    "weighted_shortest_path": "repro.topology.routing",
    "candidate_paths": "repro.topology.routing",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    """Resolve exports on first access (avoids circular imports)."""
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.topology' has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
