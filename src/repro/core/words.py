"""Word-level framing: the phit/flit format and packet-header encoding.

aelite moves data in *phits* (physical digits) of ``data_width`` bits; a
*flit* (flow-control digit) is a fixed number of phits (three throughout the
paper) and corresponds to one TDM slot.  The first word of every packet is a
header that carries

* the **source route**: a sequence of router output ports, consumed
  least-significant-first, one port per router hop.  The header-parsing unit
  (HPU) of each router reads the low ``port_bits`` bits and shifts the path
  right so the next router sees its own port selection in the low bits;
* the **remote queue id** selecting the destination connection queue in the
  receiving network interface; and
* piggybacked **end-to-end credits** for the reverse channel.

The valid and end-of-packet markers are explicit sideband signals in aelite
(one of the differences with Æthereal that removes header decoding from the
router's critical path) and are therefore *not* part of the header word; they
travel alongside each word in the models in :mod:`repro.router` and
:mod:`repro.link`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.exceptions import HeaderFormatError

__all__ = [
    "WordFormat",
    "encode_path",
    "decode_next_port",
    "shift_path",
    "encode_header",
    "decode_header",
    "header_credits",
    "header_queue",
]


@dataclass(frozen=True)
class WordFormat:
    """Geometry of words, flits and packet headers.

    Parameters
    ----------
    data_width:
        Bits per word (phit).  The paper evaluates 32 through 256.
    flit_size:
        Words per flit; one flit occupies one TDM slot.  Fixed at 3 in the
        paper and defaulted to 3 here, but parametrisable for ablations.
    port_bits:
        Bits used to encode a single router output port in the source route.
        3 bits supports routers up to arity 8.
    queue_bits:
        Bits for the destination queue (connection) id within the receiving
        NI.
    credit_bits:
        Bits for piggybacked end-to-end credits.

    >>> fmt = WordFormat()          # the paper's 32-bit, 3-word format
    >>> fmt.payload_bytes_per_flit  # one word per flit is the header
    8
    >>> fmt.max_hops                # path bits / port bits
    7
    """

    data_width: int = 32
    flit_size: int = 3
    port_bits: int = 3
    queue_bits: int = 4
    credit_bits: int = 5

    def __post_init__(self) -> None:
        if self.data_width < 8:
            raise HeaderFormatError(f"data_width must be >= 8, got {self.data_width}")
        if self.flit_size < 2:
            raise HeaderFormatError(f"flit_size must be >= 2, got {self.flit_size}")
        if self.port_bits < 1 or self.queue_bits < 1 or self.credit_bits < 0:
            raise HeaderFormatError("port/queue/credit field widths must be positive")
        if self.path_bits < self.port_bits:
            raise HeaderFormatError(
                f"header has no room for a path: data_width={self.data_width}, "
                f"queue_bits={self.queue_bits}, credit_bits={self.credit_bits}"
            )

    # -- derived geometry ---------------------------------------------------

    @property
    def word_mask(self) -> int:
        """Bit mask of a full word."""
        return (1 << self.data_width) - 1

    @property
    def path_bits(self) -> int:
        """Bits available in the header for the source route."""
        return self.data_width - self.queue_bits - self.credit_bits

    @property
    def max_hops(self) -> int:
        """Maximum number of router hops encodable in one header word."""
        return self.path_bits // self.port_bits

    @property
    def max_port(self) -> int:
        """Largest encodable output-port number."""
        return (1 << self.port_bits) - 1

    @property
    def max_queue(self) -> int:
        """Largest encodable destination queue id."""
        return (1 << self.queue_bits) - 1

    @property
    def max_credits(self) -> int:
        """Largest credit count a single header can piggyback."""
        return (1 << self.credit_bits) - 1 if self.credit_bits else 0

    @property
    def payload_words_per_flit(self) -> int:
        """Payload words in a flit that starts a packet (header occupies one)."""
        return self.flit_size - 1

    @property
    def payload_bytes_per_flit(self) -> int:
        """Conservative payload bytes per slot: header counted in every flit.

        The allocator uses this by default so that reserved throughput is a
        guarantee independent of packet lengths; longer packets (consecutive
        slots) only ever do better.
        """
        return self.payload_words_per_flit * self.data_width // 8

    @property
    def bytes_per_word(self) -> int:
        """Bytes carried by one full word."""
        return self.data_width // 8

    # -- field slicing ------------------------------------------------------

    @property
    def _queue_shift(self) -> int:
        return self.path_bits

    @property
    def _credit_shift(self) -> int:
        return self.path_bits + self.queue_bits


def encode_path(ports: Sequence[int], fmt: WordFormat) -> int:
    """Pack router output ports into a path field, first hop in the low bits.

    Raises :class:`HeaderFormatError` if the path is too long for the header
    or a port number does not fit in ``port_bits``.
    """
    if len(ports) > fmt.max_hops:
        raise HeaderFormatError(
            f"path of {len(ports)} hops exceeds header capacity of "
            f"{fmt.max_hops} hops ({fmt.path_bits} path bits, "
            f"{fmt.port_bits} bits per port)"
        )
    value = 0
    for hop, port in enumerate(ports):
        if not 0 <= port <= fmt.max_port:
            raise HeaderFormatError(
                f"output port {port} at hop {hop} does not fit in "
                f"{fmt.port_bits} bits"
            )
        value |= port << (hop * fmt.port_bits)
    return value


def decode_next_port(path_field: int, fmt: WordFormat) -> int:
    """Return the output port for the current router (the low path bits)."""
    return path_field & fmt.max_port


def shift_path(header_word: int, fmt: WordFormat) -> int:
    """Consume one hop from a header word, as the HPU does.

    Only the path field shifts; queue id and credits are preserved.
    """
    path = header_word & ((1 << fmt.path_bits) - 1)
    rest = header_word & ~((1 << fmt.path_bits) - 1)
    return rest | (path >> fmt.port_bits)


def encode_header(ports: Iterable[int], queue: int, credits: int,
                  fmt: WordFormat) -> int:
    """Build a packet-header word from route, queue id and credits."""
    ports = list(ports)
    if not 0 <= queue <= fmt.max_queue:
        raise HeaderFormatError(
            f"queue id {queue} does not fit in {fmt.queue_bits} bits")
    if not 0 <= credits <= fmt.max_credits:
        raise HeaderFormatError(
            f"credit value {credits} does not fit in {fmt.credit_bits} bits")
    word = encode_path(ports, fmt)
    word |= queue << fmt._queue_shift
    word |= credits << fmt._credit_shift
    return word


def decode_header(header_word: int, fmt: WordFormat) -> tuple[int, int, int]:
    """Split a header word into ``(path_field, queue, credits)``."""
    path = header_word & ((1 << fmt.path_bits) - 1)
    queue = (header_word >> fmt._queue_shift) & fmt.max_queue
    credits = (header_word >> fmt._credit_shift) & fmt.max_credits if \
        fmt.credit_bits else 0
    return path, queue, credits


def header_queue(header_word: int, fmt: WordFormat) -> int:
    """Extract only the destination queue id from a header word."""
    return (header_word >> fmt._queue_shift) & fmt.max_queue


def header_credits(header_word: int, fmt: WordFormat) -> int:
    """Extract only the piggybacked credit count from a header word."""
    if not fmt.credit_bits:
        return 0
    return (header_word >> fmt._credit_shift) & fmt.max_credits
