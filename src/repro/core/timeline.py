"""Replayable reconfiguration timelines: live churn as a simulation input.

The control plane (:class:`~repro.core.reconfiguration.
ReconfigurationManager`, :class:`~repro.service.controller.
SessionService`) performs start/stop transitions *analytically*: slots
are moved in the bookkeeping and invariants are re-checked, but no
network is ever simulated across a transition.  A
:class:`ReconfigurationTimeline` closes that gap: it is the replayable
artifact of a churn run — every transition, timestamped in TDM slots and
carrying the exact :class:`~repro.core.allocation.ChannelAllocation`
records the transition committed — which the flit-level and best-effort
simulators can then *execute* epoch by epoch
(:meth:`~repro.simulation.flitsim.FlitLevelSimulator.run_timeline`).

Construction validates the timeline the same way the allocator validates
a static configuration: within every epoch (a maximal span with a
constant active set) no two active channels may share a link slot, so a
valid timeline is a sequence of valid configurations glued together by
transitions.

:class:`TimelineRecorder` converts wall-of-model-time transitions
(seconds, as the service sees them) into slot-stamped events; because
service time and simulated slot time are wildly different scales (a
session lives milliseconds, a slot lasts nanoseconds), the recorder can
*fit* the recorded trace into a requested simulation horizon, preserving
event order and relative spacing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import Allocation, ChannelAllocation
from repro.core.application import UseCase
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.core.words import WordFormat
from repro.topology.graph import Topology
from repro.topology.mapping import Mapping

__all__ = ["TimelineEvent", "ReconfigurationTimeline", "TimelineRecorder",
           "replay_configuration"]

_ACTIONS = ("start", "stop")


@dataclass(frozen=True)
class TimelineEvent:
    """One slot-stamped transition of a reconfiguration timeline.

    A ``start`` carries the exact allocations its transition committed
    (route and injection slots per channel); a ``stop`` releases every
    channel its application holds, so it carries none.
    """

    slot: int
    action: str
    application: str
    channels: tuple[ChannelAllocation, ...] = ()

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ConfigurationError(
                f"timeline event slot must be >= 0, got {self.slot}")
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"unknown timeline action {self.action!r}; expected one "
                f"of {_ACTIONS}")
        if not self.application:
            raise ConfigurationError(
                "timeline event needs an application name")
        if self.action == "start" and not self.channels:
            raise ConfigurationError(
                f"start of {self.application!r} carries no channel "
                "allocations")
        if self.action == "stop" and self.channels:
            raise ConfigurationError(
                f"stop of {self.application!r} must not carry channels")


class ReconfigurationTimeline:
    """An ordered, per-epoch-validated sequence of start/stop events.

    Events are normalised into deterministic order — by slot, stops
    before starts (slots a departing application frees at a boundary are
    available to an arriving one at the same boundary), then application
    name — and validated on construction: balanced start/stop pairing
    per application, unique active channel names, and contention-freedom
    of every epoch's active set.
    """

    def __init__(self, topology: Topology,
                 events: tuple[TimelineEvent, ...] | list[TimelineEvent],
                 *, horizon_slots: int, table_size: int,
                 frequency_hz: float, fmt: WordFormat | None = None):
        if horizon_slots <= 0:
            raise ConfigurationError(
                f"horizon_slots must be positive, got {horizon_slots}")
        if table_size <= 0:
            raise ConfigurationError(
                f"table_size must be positive, got {table_size}")
        if frequency_hz <= 0:
            raise ConfigurationError("frequency_hz must be positive")
        self.topology = topology
        self.horizon_slots = horizon_slots
        self.table_size = table_size
        self.frequency_hz = frequency_hz
        self.fmt = fmt or WordFormat()
        self.events: tuple[TimelineEvent, ...] = tuple(sorted(
            events, key=lambda e: (e.slot, e.action != "stop",
                                   e.application)))
        # Derived views are cached: a timeline is immutable once built,
        # and the simulators re-query these on every replay run.
        self._channel_names: tuple[str, ...] | None = None
        self._change_plan: tuple | None = None
        self._validate()

    # -- validation ------------------------------------------------------------

    def _validate(self) -> None:
        active_apps: dict[str, tuple[ChannelAllocation, ...]] = {}
        active_names: set[str] = set()
        occupied: dict[tuple[tuple[str, str], int], str] = {}
        link_keys = set(self.topology.iter_link_keys())
        for event in self.events:
            if event.slot >= self.horizon_slots:
                raise ConfigurationError(
                    f"timeline event at slot {event.slot} lies beyond "
                    f"the horizon of {self.horizon_slots} slots")
            if event.action == "start":
                if event.application in active_apps:
                    raise ConfigurationError(
                        f"application {event.application!r} started "
                        "twice without an intervening stop")
                for ca in event.channels:
                    name = ca.spec.name
                    if name in active_names:
                        raise ConfigurationError(
                            f"channel {name!r} started while already "
                            "active")
                    for key, slots in ca.link_slots(
                            self.table_size).items():
                        if key not in link_keys:
                            raise ConfigurationError(
                                f"channel {name!r} uses link {key} "
                                "unknown to the topology")
                        for slot in slots:
                            holder = occupied.get((key, slot))
                            if holder is not None:
                                raise AllocationError(
                                    f"epoch starting at slot "
                                    f"{event.slot}: contention on link "
                                    f"{key} slot {slot}: {holder!r} vs "
                                    f"{name!r}",
                                    channel=name,
                                    reason="slot contention")
                            occupied[(key, slot)] = name
                    active_names.add(name)
                active_apps[event.application] = event.channels
            else:
                channels = active_apps.pop(event.application, None)
                if channels is None:
                    raise ConfigurationError(
                        f"stop of {event.application!r} at slot "
                        f"{event.slot} without a matching start")
                for ca in channels:
                    active_names.discard(ca.spec.name)
                    for key, slots in ca.link_slots(
                            self.table_size).items():
                        for slot in slots:
                            del occupied[(key, slot)]

    # -- queries ---------------------------------------------------------------

    @property
    def channel_names(self) -> tuple[str, ...]:
        """All channel names ever started, sorted."""
        if self._channel_names is None:
            names: set[str] = set()
            for event in self.events:
                names.update(ca.spec.name for ca in event.channels)
            self._channel_names = tuple(sorted(names))
        return self._channel_names

    def channel_allocations(self) -> dict[str, ChannelAllocation]:
        """First-start allocation of every channel, keyed by name."""
        out: dict[str, ChannelAllocation] = {}
        for event in self.events:
            for ca in event.channels:
                out.setdefault(ca.spec.name, ca)
        return out

    def channel_intervals(self) -> dict[
            str, tuple[tuple[int, int, ChannelAllocation], ...]]:
        """Active ``(start_slot, end_slot, allocation)`` spans per channel.

        A channel never stopped runs to the horizon; a restarted channel
        contributes one span per start.
        """
        spans: dict[str, list[tuple[int, int, ChannelAllocation]]] = {}
        open_spans: dict[str, dict[str, tuple[int, ChannelAllocation]]] = {}
        for event in self.events:
            if event.action == "start":
                held = open_spans.setdefault(event.application, {})
                for ca in event.channels:
                    held[ca.spec.name] = (event.slot, ca)
            else:
                for name, (start, ca) in sorted(
                        open_spans.pop(event.application, {}).items()):
                    spans.setdefault(name, []).append(
                        (start, event.slot, ca))
        for held in open_spans.values():
            for name, (start, ca) in sorted(held.items()):
                spans.setdefault(name, []).append(
                    (start, self.horizon_slots, ca))
        return {name: tuple(sorted(entry))
                for name, entry in sorted(spans.items())}

    def survivors(self, *, until: int | None = None) -> tuple[str, ...]:
        """Channels still running at slot ``until`` (default: horizon).

        These are the channels whose behaviour the dynamic composability
        check compares against a solo run: they lived through every
        epoch boundary after their start.  Pass ``until`` when only a
        prefix of the timeline is simulated.
        """
        if until is None:
            until = self.horizon_slots
        return tuple(sorted(
            name for name, intervals in self.channel_intervals().items()
            if any(start < until <= stop
                   for start, stop, _ in intervals)))

    def epoch_boundaries(self) -> tuple[int, ...]:
        """Slots at which the active channel set changes, including 0."""
        return tuple(sorted({0} | {e.slot for e in self.events}))

    @property
    def n_epochs(self) -> int:
        """Number of maximal constant-configuration spans."""
        return len(self.epoch_boundaries())

    def change_plan(self, *, until: int | None = None) -> tuple[
            tuple[ChannelAllocation, ...],
            tuple[tuple[int, tuple[str, ...],
                        tuple[ChannelAllocation, ...]], ...]]:
        """Compiled form for simulators: initial channels plus changes.

        Returns the channels active from slot 0 and, per later boundary
        slot, the channel names to remove and the allocations to add —
        stops first, mirroring the event normalisation.  ``until`` drops
        boundaries at or beyond a simulated prefix of the horizon (the
        start/stop pairing is resolved over the *full* event list first,
        so truncation never unbalances an application).
        """
        if self._change_plan is None:
            app_channels: dict[str, tuple[ChannelAllocation, ...]] = {}
            initial: list[ChannelAllocation] = []
            by_slot: dict[int, tuple[list[str],
                                     list[ChannelAllocation]]] = {}
            for event in self.events:
                if event.action == "start":
                    app_channels[event.application] = event.channels
                    if event.slot == 0:
                        initial.extend(event.channels)
                    else:
                        by_slot.setdefault(event.slot, ([], []))[1].extend(
                            event.channels)
                else:
                    stopped = app_channels.pop(event.application)
                    by_slot.setdefault(event.slot, ([], []))[0].extend(
                        ca.spec.name for ca in stopped)
            changes = tuple(
                (slot, tuple(stops), tuple(starts))
                for slot, (stops, starts) in sorted(by_slot.items()))
            self._change_plan = (tuple(initial), changes)
        initial_t, changes = self._change_plan
        if until is not None:
            lo, hi = 0, len(changes)
            while lo < hi:  # first boundary at or beyond the prefix end
                mid = (lo + hi) // 2
                if changes[mid][0] < until:
                    lo = mid + 1
                else:
                    hi = mid
            changes = changes[:lo]
        return initial_t, changes

    def restricted_to(self, channel_names) -> "ReconfigurationTimeline":
        """The timeline containing only the named channels' transitions.

        This is the *solo reference* of the dynamic composability check:
        the survivors keep their exact start slots and allocations while
        every other application's churn disappears.
        """
        wanted = set(channel_names)
        retained_apps: set[str] = set()
        events: list[TimelineEvent] = []
        for event in self.events:
            if event.action == "start":
                kept = tuple(ca for ca in event.channels
                             if ca.spec.name in wanted)
                if kept:
                    retained_apps.add(event.application)
                    events.append(TimelineEvent(
                        event.slot, "start", event.application, kept))
            elif event.application in retained_apps:
                retained_apps.discard(event.application)
                events.append(TimelineEvent(
                    event.slot, "stop", event.application))
        return ReconfigurationTimeline(
            self.topology, events, horizon_slots=self.horizon_slots,
            table_size=self.table_size, frequency_hz=self.frequency_hz,
            fmt=self.fmt)

    def to_record(self) -> dict[str, object]:
        """Deterministic JSON-ready form (routes and slots included)."""
        return {
            "topology": self.topology.name,
            "horizon_slots": self.horizon_slots,
            "table_size": self.table_size,
            "frequency_mhz": round(self.frequency_hz / 1e6, 3),
            "n_epochs": self.n_epochs,
            "events": [
                {"slot": e.slot, "action": e.action,
                 "application": e.application,
                 "channels": [
                     {"name": ca.spec.name,
                      "src": ca.path.source, "dst": ca.path.dest,
                      "routers": list(ca.path.routers),
                      "slots": list(ca.slots)}
                     for ca in e.channels]}
                for e in self.events],
        }

    def __repr__(self) -> str:
        return (f"ReconfigurationTimeline({len(self.events)} events, "
                f"{self.n_epochs} epochs over {self.horizon_slots} "
                "slots)")


class TimelineRecorder:
    """Collects timestamped transitions and builds a timeline.

    The control plane records transitions in *seconds* of service time;
    :meth:`build` maps them onto TDM slots.  With ``fit=True`` (the
    default) the trace is linearly compressed so the last transition
    lands at ``fill`` of the requested horizon — service time (session
    lifetimes of milliseconds) and slot time (nanoseconds) differ by six
    orders of magnitude, so replaying at the physical slot rate would
    need billions of slots.  Order and relative spacing of transitions
    are preserved either way, which is all the composability argument
    needs: the active-set sequence is identical to the live run's.
    """

    def __init__(self, topology: Topology, *, table_size: int,
                 frequency_hz: float, fmt: WordFormat | None = None,
                 slots_per_second: float | None = None):
        self.topology = topology
        self.table_size = table_size
        self.frequency_hz = frequency_hz
        self.fmt = fmt or WordFormat()
        if slots_per_second is not None and slots_per_second <= 0:
            raise ConfigurationError("slots_per_second must be positive")
        self.slots_per_second = slots_per_second or (
            frequency_hz / self.fmt.flit_size)
        self._transitions: list[tuple[float, str, str,
                                      tuple[ChannelAllocation, ...]]] = []

    @property
    def n_transitions(self) -> int:
        """Transitions recorded so far."""
        return len(self._transitions)

    def _record(self, time_s: float, action: str, application: str,
                channels: tuple[ChannelAllocation, ...]) -> None:
        if time_s < 0:
            raise ConfigurationError("transition time must be >= 0")
        if self._transitions and time_s < self._transitions[-1][0]:
            raise ConfigurationError(
                "transitions must be recorded in time order")
        self._transitions.append((time_s, action, application, channels))

    def record_start(self, time_s: float, application: str,
                     channels) -> None:
        """Record one application/session start with its allocations."""
        self._record(time_s, "start", application, tuple(channels))

    def record_stop(self, time_s: float, application: str) -> None:
        """Record one application/session stop."""
        self._record(time_s, "stop", application, ())

    def build(self, *, horizon_slots: int, fit: bool = True,
              fill: float = 0.75) -> ReconfigurationTimeline:
        """Convert the recorded transitions into a validated timeline.

        Transitions mapping to a slot at or beyond the horizon are
        dropped (the mapping is monotone, so a dropped start always
        drops its stop too); a start whose stop is dropped becomes a
        survivor.  A session whose start and stop compress onto the
        *same* slot is zero-length at this resolution — it influences no
        epoch, so both its events are dropped (keeping it would order
        the stop before its own start under the stops-first boundary
        normalisation).
        """
        if not 0 < fill <= 1:
            raise ConfigurationError("fill must be in (0, 1]")
        rate = self.slots_per_second
        fitted = False
        if fit and self._transitions:
            last_s = self._transitions[-1][0]
            if last_s > 0:
                rate = horizon_slots * fill / last_s
                fitted = True
        events: list[TimelineEvent | None] = []
        open_start: dict[str, int] = {}  # application -> index in events
        for time_s, action, application, channels in self._transitions:
            slot = int(time_s * rate)
            if fitted:
                # A fitted trace lies inside the horizon by construction;
                # clamp away float wobble at fill=1.0 so the final
                # transition is never silently dropped.
                slot = min(slot, horizon_slots - 1)
            if slot >= horizon_slots:
                continue
            if action == "start":
                open_start[application] = len(events)
            else:
                index = open_start.pop(application, None)
                if index is not None and events[index].slot == slot:
                    events[index] = None  # zero-length session
                    continue
            events.append(TimelineEvent(slot, action, application,
                                        channels))
        return ReconfigurationTimeline(
            self.topology, [e for e in events if e is not None],
            horizon_slots=horizon_slots, table_size=self.table_size,
            frequency_hz=self.frequency_hz, fmt=self.fmt)


def replay_configuration(timeline: ReconfigurationTimeline
                         ) -> "NocConfiguration":
    """An empty-allocation configuration for replaying ``timeline``.

    Timeline replay draws its channel set from the timeline's events,
    not from a static allocation, but the simulation backends bind a
    :class:`~repro.core.configuration.NocConfiguration` for the
    operating point (topology, table size, frequency, word format).
    This builds that carrier configuration.
    """
    from repro.core.configuration import NocConfiguration

    return NocConfiguration(
        topology=timeline.topology,
        use_case=UseCase("replay", ()),
        mapping=Mapping({}),
        allocation=Allocation(timeline.topology, timeline.table_size,
                              timeline.frequency_hz, timeline.fmt),
        table_size=timeline.table_size,
        frequency_hz=timeline.frequency_hz,
        fmt=timeline.fmt)
