"""Source-routed paths and their slot arithmetic.

aelite uses source routing: the injecting NI writes the sequence of router
output ports into the packet header, and each router's HPU consumes one
entry.  A :class:`Path` records the traversed routers and links, and knows
the *slot shift* of every link: the number of TDM slots between injection
and the flit's appearance on that link.

Shift rules (Sections III and V of the paper):

* the NI's output link (link 0) carries the flit in its injection slot
  (shift 0);
* traversing a router takes one flit cycle, so the link after a router is
  used one slot later than the link before it;
* each mesochronous link pipeline stage adds one further slot, *after* the
  link it sits on is traversed (the stage re-aligns the flit into the next
  slot before presenting it to the following element).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Sequence

from repro.core.exceptions import ConfigurationError, TopologyError
from repro.core.words import WordFormat, encode_path

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.topology.graph import Link, Topology

__all__ = ["Path", "make_path"]


@dataclass(frozen=True)
class Path:
    """An end-to-end route from a source NI to a destination NI.

    ``links`` has ``len(routers) + 1`` entries: NI -> R0, R0 -> R1, ...,
    R_last -> NI.  Construction validates the chaining.
    """

    source: str
    dest: str
    routers: tuple[str, ...]
    links: tuple["Link", ...]

    def __post_init__(self) -> None:
        if len(self.links) != len(self.routers) + 1:
            raise ConfigurationError(
                f"path needs {len(self.routers) + 1} links for "
                f"{len(self.routers)} routers, got {len(self.links)}")
        expected = [self.source, *self.routers, self.dest]
        for i, link in enumerate(self.links):
            if link.src != expected[i] or link.dst != expected[i + 1]:
                raise ConfigurationError(
                    f"link {i} of path {self.source}->{self.dest} is {link}, "
                    f"expected {expected[i]} -> {expected[i + 1]}")

    # -- geometry -----------------------------------------------------------

    @property
    def n_routers(self) -> int:
        """Number of routers traversed."""
        return len(self.routers)

    @cached_property
    def n_pipeline_stages(self) -> int:
        """Total mesochronous link pipeline stages along the path."""
        return sum(l.pipeline_stages for l in self.links)

    @cached_property
    def out_ports(self) -> tuple[int, ...]:
        """Router output ports in traversal order — the header source route."""
        return tuple(l.src_port for l in self.links[1:])

    def header_path_field(self, fmt: WordFormat) -> int:
        """Encode the source route for a packet header."""
        return encode_path(self.out_ports, fmt)

    # -- slot arithmetic ----------------------------------------------------

    @cached_property
    def link_shifts(self) -> tuple[int, ...]:
        """Slot shift of each link relative to the injection slot.

        ``link_shifts[i]`` is the number of slots after injection at which
        a flit occupies ``links[i]``.
        """
        shifts = [0]
        for i in range(1, len(self.links)):
            # +1 for the router between link i-1 and link i, plus any
            # pipeline stages sitting on link i-1.
            shifts.append(shifts[-1] + 1 + self.links[i - 1].pipeline_stages)
        return tuple(shifts)

    @cached_property
    def arrival_shift(self) -> int:
        """Slots from injection until the flit enters the destination NI.

        The flit traverses the final link at ``link_shifts[-1]`` and any
        pipeline stages on that link add further slots; delivery completes
        at the end of that slot.
        """
        return self.link_shifts[-1] + self.links[-1].pipeline_stages

    @property
    def traversal_slots(self) -> int:
        """Whole slots from the start of injection to complete delivery.

        ``arrival_shift`` slots of shifting plus the delivery slot itself.
        """
        return self.arrival_shift + 1

    def traversal_cycles(self, fmt: WordFormat) -> int:
        """Path traversal time in cycles (excludes NI waiting time)."""
        return self.traversal_slots * fmt.flit_size

    # -- misc ---------------------------------------------------------------

    def link_keys(self) -> tuple[tuple[str, str], ...]:
        """Dictionary keys of all traversed links, in order."""
        return tuple(l.key for l in self.links)

    def __len__(self) -> int:
        return len(self.links)

    def __repr__(self) -> str:
        hops = " -> ".join([self.source, *self.routers, self.dest])
        return f"Path({hops})"


def make_path(topo: "Topology", source_ni: str,
              routers: Sequence[str], dest_ni: str) -> Path:
    """Build a :class:`Path` through ``routers`` using topology port data.

    Raises :class:`TopologyError` when any required link is missing.
    """
    if not routers:
        raise TopologyError(
            f"a path from {source_ni!r} to {dest_ni!r} needs at least one router")
    nodes = [source_ni, *routers, dest_ni]
    links = []
    for a, b in zip(nodes, nodes[1:]):
        links.append(topo.link(a, b))
    return Path(source=source_ni, dest=dest_ni,
                routers=tuple(routers), links=tuple(links))
