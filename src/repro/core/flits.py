"""Flit and packet datatypes shared by the hardware models.

A :class:`Flit` is the unit of both flow control and TDM arbitration: one
flit occupies exactly one slot on each link it traverses.  Flits carry their
words plus the explicit sideband markers of aelite (``valid`` on every word is
implied by the flit being present; ``eop`` marks the last flit of a packet).

Two kinds of flits exist:

* **data flits** carry a header word and/or payload words of a packet;
* **empty tokens** carry no useful words.  They exist only in the
  asynchronous-wrapper model (Section VI of the paper), where every output
  must produce one token per flit cycle so that neighbours can synchronise.

The ``meta`` field carries simulation bookkeeping (origin channel, sequence
number, injection timestamps).  Hardware models never branch on ``meta``;
it exists so monitors can measure latency without modifying the data path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.core.exceptions import ConfigurationError
from repro.core.words import WordFormat

__all__ = ["FlitKind", "FlitMeta", "Flit", "Packet"]


class FlitKind(enum.Enum):
    """Discriminates payload-bearing flits from synchronisation tokens."""

    DATA = "data"
    EMPTY = "empty"


@dataclass(frozen=True)
class FlitMeta:
    """Simulation-only bookkeeping attached to a flit.

    Attributes
    ----------
    channel:
        Name of the connection/channel the flit belongs to.
    sequence:
        Per-channel flit sequence number (0-based), used to check in-order
        delivery.
    payload_bytes:
        Useful payload bytes carried (excludes the header word).
    created_cycle:
        Cycle (in the injecting NI's clock domain) at which the message that
        produced this flit became available for injection.
    injected_slot:
        TDM slot in which the NI injected the flit.
    message_id:
        Identifier of the message whose payload this flit carries (flits
        never mix messages), or -1 for credit-only traffic.
    message_last:
        True when this flit completes its message; the receiving monitor
        records message latency at this flit's delivery.
    """

    channel: str = ""
    sequence: int = -1
    payload_bytes: int = 0
    created_cycle: int = -1
    created_time_ps: int = -1
    injected_slot: int = -1
    message_id: int = -1
    message_last: bool = False
    message_bytes: int = 0


@dataclass(frozen=True)
class Flit:
    """One flow-control digit: ``flit_size`` words moving as a unit.

    ``words`` always has the full flit length; unused trailing words in a
    short final flit are zero-filled (as the hardware would drive idle
    lines).  ``has_header`` is true for the first flit of a packet, whose
    word 0 is the header.
    """

    words: tuple[int, ...]
    eop: bool = False
    kind: FlitKind = FlitKind.DATA
    has_header: bool = False
    meta: FlitMeta | None = None

    @staticmethod
    def empty(fmt: WordFormat) -> "Flit":
        """Build an empty synchronisation token (Section VI)."""
        return Flit(words=(0,) * fmt.flit_size, eop=True,
                    kind=FlitKind.EMPTY, has_header=False)

    @staticmethod
    def data(words: Sequence[int], fmt: WordFormat, *, eop: bool,
             has_header: bool, meta: FlitMeta | None = None) -> "Flit":
        """Build a data flit, zero-padding ``words`` to the flit size."""
        if len(words) > fmt.flit_size:
            raise ConfigurationError(
                f"flit of {len(words)} words exceeds flit size {fmt.flit_size}")
        padded = tuple(words) + (0,) * (fmt.flit_size - len(words))
        return Flit(words=padded, eop=eop, kind=FlitKind.DATA,
                    has_header=has_header, meta=meta)

    @property
    def is_empty(self) -> bool:
        """True for synchronisation-only tokens."""
        return self.kind is FlitKind.EMPTY

    @property
    def header_word(self) -> int:
        """The header word (only meaningful when ``has_header`` is set)."""
        return self.words[0]

    def with_header_word(self, word: int) -> "Flit":
        """Return a copy with word 0 replaced (used by the HPU path shift)."""
        return replace(self, words=(word,) + self.words[1:])

    def with_meta(self, meta: FlitMeta) -> "Flit":
        """Return a copy carrying new simulation metadata."""
        return replace(self, meta=meta)


@dataclass(frozen=True)
class Packet:
    """An ordered sequence of flits terminated by an ``eop`` flit.

    Packets are a software-visible convenience; on the wire only flits and
    their sideband markers exist.  The constructor validates the framing
    invariants that the NI packetiser guarantees.
    """

    flits: tuple[Flit, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.flits:
            raise ConfigurationError("a packet needs at least one flit")
        if not self.flits[0].has_header:
            raise ConfigurationError("packet must start with a header flit")
        if any(f.has_header for f in self.flits[1:]):
            raise ConfigurationError("only the first flit may carry a header")
        if not self.flits[-1].eop:
            raise ConfigurationError("packet must end with an eop flit")
        if any(f.eop for f in self.flits[:-1]):
            raise ConfigurationError("eop may only be set on the final flit")

    def __len__(self) -> int:
        return len(self.flits)

    @property
    def header_word(self) -> int:
        """Header word of the packet."""
        return self.flits[0].header_word

    @property
    def payload_bytes(self) -> int:
        """Total payload bytes across all flits (from metadata)."""
        return sum(f.meta.payload_bytes for f in self.flits if f.meta)
