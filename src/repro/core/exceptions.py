"""Error hierarchy for the aelite reproduction.

All library-specific exceptions derive from :class:`ReproError` so callers can
catch a single base class.  Errors carry enough structured context (channel
names, link identities, slot numbers) to make allocation and simulation
failures diagnosable without re-running with a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An inconsistent or unsupported configuration was supplied.

    Raised for structural problems detected before any allocation or
    simulation starts: unknown nodes, mismatched port counts, slot-table
    sizes that do not match between NIs, header formats too small for the
    requested path length, and similar.
    """


class TopologyError(ConfigurationError):
    """The topology graph is malformed (dangling link, duplicate port, ...)."""


class HeaderFormatError(ConfigurationError):
    """A packet header cannot encode the requested path or field value."""


class AllocationError(ReproError):
    """The TDM slot allocator could not satisfy a set of requirements.

    Attributes
    ----------
    channel:
        Name of the first channel that could not be allocated, or ``None``
        when the failure is not attributable to a single channel.
    reason:
        Human-readable explanation (no free slots, no path, latency
        infeasible, ...).
    """

    def __init__(self, message: str, *, channel: str | None = None,
                 reason: str = ""):
        super().__init__(message)
        self.channel = channel
        self.reason = reason or message


class CapacityError(AllocationError):
    """Aggregate demand exceeds what the topology can ever carry."""


class SimulationError(ReproError):
    """An invariant was violated while simulating the network.

    The cycle-accurate models raise this for conditions that correspond to
    hardware failures: two valid flits contending for one output port,
    a bi-synchronous FIFO overflowing, or a flit arriving outside its
    assigned slot.  A passing simulation is therefore also an invariant
    check.
    """


class DeadlockError(SimulationError):
    """The asynchronous wrapper network stopped making progress."""


class FlowControlError(SimulationError):
    """End-to-end credit accounting went negative or a buffer overflowed."""
