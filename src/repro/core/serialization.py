"""Saving and restoring complete network configurations.

A validated :class:`~repro.core.configuration.NocConfiguration` is the
artefact a design flow hands to implementation; this module gives it a
stable JSON form so configurations can be versioned, diffed and reloaded
without re-running the allocator.  The round trip is exact: topology
(with port numbers), mapping, channel specifications, paths and slot
reservations all survive bit-identically, and loading re-validates the
contention-free invariant.
"""

from __future__ import annotations

import json
from typing import Mapping as TMapping

from repro.core.allocation import Allocation, ChannelAllocation
from repro.core.application import Application, UseCase
from repro.core.configuration import NocConfiguration
from repro.core.connection import ChannelSpec
from repro.core.exceptions import ConfigurationError
from repro.core.path import make_path
from repro.core.words import WordFormat
from repro.topology.graph import Topology
from repro.topology.mapping import Mapping

__all__ = ["configuration_to_dict", "configuration_from_dict",
           "save_configuration", "load_configuration"]

_FORMAT_VERSION = 1


def configuration_to_dict(config: NocConfiguration) -> dict[str, object]:
    """JSON-serialisable form of a complete configuration."""
    fmt = config.fmt
    return {
        "format_version": _FORMAT_VERSION,
        "table_size": config.table_size,
        "frequency_hz": config.frequency_hz,
        "word_format": {
            "data_width": fmt.data_width,
            "flit_size": fmt.flit_size,
            "port_bits": fmt.port_bits,
            "queue_bits": fmt.queue_bits,
            "credit_bits": fmt.credit_bits,
        },
        "topology": config.topology.to_dict(),
        "mapping": config.mapping.to_dict(),
        "use_case": {
            "name": config.use_case.name,
            "applications": [
                {"name": app.name,
                 "channels": [spec.to_dict() for spec in app.channels]}
                for app in config.use_case.applications],
        },
        "allocation": {
            name: {
                "routers": list(ca.path.routers),
                "slots": list(ca.slots),
            }
            for name, ca in sorted(config.allocation.channels.items())
        },
    }


def configuration_from_dict(data: TMapping[str, object]
                            ) -> NocConfiguration:
    """Rebuild and re-validate a configuration saved with
    :func:`configuration_to_dict`."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported configuration format version {version!r}")
    wf = data["word_format"]  # type: ignore[index]
    fmt = WordFormat(
        data_width=int(wf["data_width"]),  # type: ignore[index]
        flit_size=int(wf["flit_size"]),  # type: ignore[index]
        port_bits=int(wf["port_bits"]),  # type: ignore[index]
        queue_bits=int(wf["queue_bits"]),  # type: ignore[index]
        credit_bits=int(wf["credit_bits"]))  # type: ignore[index]
    topology = Topology.from_dict(data["topology"])  # type: ignore[arg-type]
    mapping = Mapping.from_dict(data["mapping"])  # type: ignore[arg-type]
    uc_data = data["use_case"]  # type: ignore[index]
    applications = tuple(
        Application(str(app["name"]), tuple(
            ChannelSpec.from_dict(ch) for ch in app["channels"]))
        for app in uc_data["applications"])  # type: ignore[index]
    use_case = UseCase(str(uc_data["name"]), applications)  # type: ignore[index]

    table_size = int(data["table_size"])  # type: ignore[arg-type]
    frequency_hz = float(data["frequency_hz"])  # type: ignore[arg-type]
    allocation = Allocation(topology, table_size, frequency_hz, fmt)
    specs = {spec.name: spec for spec in use_case.channels}
    for name, entry in data["allocation"].items():  # type: ignore[union-attr]
        spec = specs.get(str(name))
        if spec is None:
            raise ConfigurationError(
                f"allocation references unknown channel {name!r}")
        path = make_path(topology,
                         mapping.ni_of(spec.src_ip),
                         [str(r) for r in entry["routers"]],
                         mapping.ni_of(spec.dst_ip))
        allocation.commit(ChannelAllocation(
            spec=spec, path=path,
            slots=tuple(sorted(int(s) for s in entry["slots"]))))
    allocation.validate()
    return NocConfiguration(
        topology=topology, use_case=use_case, mapping=mapping,
        allocation=allocation, table_size=table_size,
        frequency_hz=frequency_hz, fmt=fmt)


def save_configuration(config: NocConfiguration, path: str) -> None:
    """Write a configuration to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(configuration_to_dict(config), handle, indent=2,
                  sort_keys=True)


def load_configuration(path: str) -> NocConfiguration:
    """Read a configuration from a JSON file and re-validate it."""
    with open(path, "r", encoding="utf-8") as handle:
        return configuration_from_dict(json.load(handle))
