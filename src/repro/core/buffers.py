"""NI buffer sizing and end-to-end credit accounting.

aelite avoids buffer overflow in the NIs with end-to-end, credit-based flow
control (Section III): the sending NI holds a credit counter initialised to
the destination queue's capacity, decrements it per payload word sent, and
receives increments piggybacked in the headers of packets travelling on the
reverse channel.

For the reserved throughput to be sustainable, the destination buffer must
cover the full *credit loop*: the words in flight during the time it takes
a word to travel forward plus the time for its credit to return.  The
formulas here are conservative (they round every partial slot up), which is
the right direction for guarantees: a larger buffer can only relax stalls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.allocation import ChannelAllocation
from repro.core.exceptions import ConfigurationError
from repro.core.slot_table import worst_case_wait_slots
from repro.core.words import WordFormat

__all__ = ["CreditLoop", "credit_loop", "required_rx_buffer_words",
           "required_tx_buffer_words", "credit_headroom_ok"]


@dataclass(frozen=True)
class CreditLoop:
    """Worst-case timing of the end-to-end credit cycle, in slots.

    Attributes
    ----------
    forward_slots:
        Slots for a flit to travel source NI -> destination NI.
    credit_wait_slots:
        Worst case slots a freshly produced credit waits in the destination
        NI for a reverse-channel slot (the reverse channel's max gap).
    reverse_slots:
        Slots for the credit-bearing header to travel back.
    """

    forward_slots: int
    credit_wait_slots: int
    reverse_slots: int

    @property
    def total_slots(self) -> int:
        """Full loop length in slots, plus one slot of NI processing."""
        return (self.forward_slots + self.credit_wait_slots +
                self.reverse_slots + 1)


def credit_loop(forward: ChannelAllocation, reverse: ChannelAllocation,
                table_size: int) -> CreditLoop:
    """Worst-case credit loop of a connection's channel pair."""
    if forward.path.source != reverse.path.dest or \
            forward.path.dest != reverse.path.source:
        raise ConfigurationError(
            f"channels {forward.spec.name!r} and {reverse.spec.name!r} do "
            "not form a forward/reverse pair")
    return CreditLoop(
        forward_slots=forward.path.traversal_slots,
        credit_wait_slots=worst_case_wait_slots(reverse.slots, table_size),
        reverse_slots=reverse.path.traversal_slots,
    )


def required_rx_buffer_words(forward: ChannelAllocation,
                             reverse: ChannelAllocation,
                             table_size: int, fmt: WordFormat) -> int:
    """Destination-queue capacity that sustains full reserved throughput.

    The source may inject up to ``n_slots`` payload-bearing flits per table
    rotation; over a credit loop of ``L`` slots that is
    ``ceil(L / table_size) * n_slots`` flits whose credits are still in
    flight.  One extra flit covers the flit in transit when the loop
    estimate is tight.
    """
    loop = credit_loop(forward, reverse, table_size)
    rotations = math.ceil(loop.total_slots / table_size)
    flits_in_flight = rotations * forward.n_slots + 1
    return flits_in_flight * fmt.payload_words_per_flit


def required_tx_buffer_words(forward: ChannelAllocation,
                             fmt: WordFormat, *, burst_bytes: int | None = None
                             ) -> int:
    """Source-queue capacity decoupling the IP from the slot table.

    Sized to absorb the IP's largest burst plus one table rotation's worth
    of reserved traffic, so a conforming IP never observes backpressure.
    """
    burst = burst_bytes if burst_bytes is not None \
        else forward.spec.burst_bytes
    if burst < 0:
        raise ConfigurationError("burst_bytes must be >= 0")
    burst_words = math.ceil(burst / fmt.bytes_per_word)
    rotation_words = forward.n_slots * fmt.payload_words_per_flit
    return burst_words + rotation_words


def credit_headroom_ok(forward: ChannelAllocation,
                       reverse: ChannelAllocation, table_size: int,
                       fmt: WordFormat) -> bool:
    """Can the reverse channel return credits as fast as they are produced?

    Each reverse-channel header carries at most ``fmt.max_credits`` credits
    (in payload words).  Per table rotation the forward channel consumes at
    most ``n_fwd * payload_words_per_flit`` credits while the reverse
    channel can return ``n_rev * max_credits``.
    """
    produced = forward.n_slots * fmt.payload_words_per_flit
    returned = reverse.n_slots * fmt.max_credits
    return returned >= produced
