"""Design-space exploration helpers.

The paper picks 500 MHz for the use case because it is *sufficient*;
a designer wants the tool to find that number.  This module provides:

* :func:`min_feasible_frequency` — binary search for the lowest
  operating frequency at which a use case allocates with all
  requirements guaranteed (aelite's predictability makes this a pure
  analysis question — no simulation needed);
* :func:`table_size_scan` — feasibility and bound quality across
  slot-table sizes, automating the trade-off the Section VII setup
  resolves by hand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import analyse, summarise
from repro.core.application import UseCase
from repro.core.configuration import configure
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.core.words import WordFormat
from repro.topology.graph import Topology
from repro.topology.mapping import Mapping

__all__ = ["min_feasible_frequency", "TableSizeResult", "table_size_scan"]


def _probe(topology: Topology, use_case: UseCase, mapping: Mapping,
           table_size: int, frequency_hz: float,
           fmt: WordFormat) -> AllocationError | None:
    """``None`` when the use case allocates with all requirements met;
    otherwise the allocator's failure (carrying channel and reason)."""
    try:
        configure(topology, use_case, table_size=table_size,
                  frequency_hz=frequency_hz, fmt=fmt, mapping=mapping,
                  require_met=True)
        return None
    except AllocationError as exc:
        return exc


def min_feasible_frequency(topology: Topology, use_case: UseCase,
                           mapping: Mapping, *, table_size: int,
                           fmt: WordFormat | None = None,
                           low_hz: float = 100e6,
                           high_hz: float = 2e9,
                           tolerance_hz: float = 10e6) -> float:
    """Lowest frequency at which every requirement is guaranteed.

    Binary search over the operating frequency; raises
    :class:`AllocationError` when even ``high_hz`` is insufficient — the
    raised error surfaces the allocator's last failure (channel name and
    reason), mirroring the Section VII negotiation loop, so the bottleneck
    channel is diagnosable instead of just "infeasible".
    Feasibility is monotone in frequency for a fixed workload (higher
    frequency shortens slots and raises per-slot bandwidth), which the
    search relies on.
    """
    fmt = fmt or WordFormat()
    if low_hz <= 0 or high_hz <= low_hz or tolerance_hz <= 0:
        raise ConfigurationError("invalid search interval")
    failure = _probe(topology, use_case, mapping, table_size, high_hz, fmt)
    if failure is not None:
        raise AllocationError(
            f"use case infeasible even at {high_hz / 1e6:.0f} MHz; "
            f"last failure on channel {failure.channel!r}: "
            f"{failure.reason}",
            channel=failure.channel,
            reason=failure.reason) from failure
    if _probe(topology, use_case, mapping, table_size, low_hz,
              fmt) is None:
        return low_hz
    lo, hi = low_hz, high_hz
    while hi - lo > tolerance_hz:
        mid = (lo + hi) / 2
        if _probe(topology, use_case, mapping, table_size, mid,
                  fmt) is None:
            hi = mid
        else:
            lo = mid
    return hi


@dataclass(frozen=True)
class TableSizeResult:
    """One row of a slot-table-size scan."""

    table_size: int
    feasible: bool
    mean_latency_bound_ns: float | None
    max_latency_bound_ns: float | None
    mean_link_utilisation: float | None


def table_size_scan(topology: Topology, use_case: UseCase,
                    mapping: Mapping, *, frequency_hz: float,
                    table_sizes: list[int] | None = None,
                    fmt: WordFormat | None = None
                    ) -> list[TableSizeResult]:
    """Feasibility and bound quality across slot-table sizes."""
    fmt = fmt or WordFormat()
    sizes = table_sizes or [8, 16, 32, 64, 128]
    results: list[TableSizeResult] = []
    for size in sizes:
        try:
            config = configure(topology, use_case, table_size=size,
                               frequency_hz=frequency_hz, fmt=fmt,
                               mapping=mapping, require_met=True)
        except AllocationError:
            results.append(TableSizeResult(size, False, None, None, None))
            continue
        bounds = analyse(config.allocation)
        summary = summarise(bounds)
        results.append(TableSizeResult(
            table_size=size, feasible=True,
            mean_latency_bound_ns=summary.mean_latency_ns,
            max_latency_bound_ns=summary.max_latency_ns,
            mean_link_utilisation=config.allocation
            .mean_link_utilisation()))
    return results
