"""Deprecated: design-space exploration moved to :mod:`repro.design`.

The exploration primitives grew into a full subsystem — analytical
pruning, probe caching, mapping optimisation, and a parallel Pareto
explorer — and now live in :mod:`repro.design.search`.  This module
re-exports the original three names so existing imports keep working;
new code should import from :mod:`repro.design` directly.
"""

from __future__ import annotations

import warnings

from repro.design.search import (TableSizeResult, min_feasible_frequency,
                                 table_size_scan)

__all__ = ["min_feasible_frequency", "TableSizeResult", "table_size_scan"]

warnings.warn(
    "repro.core.exploration is deprecated; import min_feasible_frequency, "
    "table_size_scan and TableSizeResult from repro.design instead",
    DeprecationWarning, stacklevel=2)
