"""Undisrupted reconfiguration: starting/stopping applications live.

The paper builds on the Æthereal reconfiguration flow ([16], "Undisrupted
quality-of-service during reconfiguration of multiple applications in
networks on chip"): because TDM reservations of different applications
are disjoint by construction, an application can be started or stopped
without touching — or even pausing — the others.

:class:`ReconfigurationManager` makes that an explicit, auditable
operation on a live :class:`~repro.core.allocation.Allocation`:

* :meth:`stop_application` releases exactly the application's slots;
* :meth:`start_application` allocates a new application into the free
  slots, never moving existing reservations;
* every transition returns a :class:`TransitionReport` proving that the
  reservations of all running applications are bit-identical before and
  after — the static counterpart of the simulator's trace-equality
  composability check;
* with a :class:`~repro.core.timeline.TimelineRecorder` attached, every
  successful transition is also emitted onto a replayable
  :class:`~repro.core.timeline.ReconfigurationTimeline`, so the exact
  start/stop sequence can afterwards be *executed* by the flit-level
  simulator and the trace-equality claim verified dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.allocation import (Allocation, SlotAllocator,
                                   excluded_link_keys)
from repro.core.application import Application
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.topology.mapping import Mapping

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.core.timeline import TimelineRecorder

__all__ = ["TransitionReport", "ReconfigurationManager"]


@dataclass(frozen=True)
class TransitionReport:
    """Audit record of one use-case transition.

    ``untouched`` proves isolation: the slot reservations (per link, per
    slot) of every application that kept running are identical before
    and after the transition.
    """

    action: str
    application: str
    channels_changed: tuple[str, ...]
    untouched: bool
    running_before: tuple[str, ...]
    running_after: tuple[str, ...]


def _reservation_snapshot(allocation: Allocation,
                          exclude_app: str) -> dict[str, object]:
    """Reservations of all applications except ``exclude_app``."""
    snapshot: dict[str, object] = {}
    for name, ca in allocation.channels.items():
        if ca.spec.application == exclude_app:
            continue
        snapshot[name] = (ca.path.link_keys(), ca.slots)
    return snapshot


class ReconfigurationManager:
    """Live use-case transitions over one allocation."""

    def __init__(self, allocator: SlotAllocator, mapping: Mapping,
                 allocation: Allocation | None = None, *,
                 recorder: "TimelineRecorder | None" = None):
        self.allocator = allocator
        self.mapping = mapping
        self.allocation = allocation or Allocation(
            allocator.topology, allocator.table_size,
            allocator.frequency_hz, allocator.fmt)
        self.history: list[TransitionReport] = []
        #: Optional timeline sink; successful transitions are recorded
        #: at the ``at_s`` timestamp the caller supplies.
        self.recorder = recorder
        #: Currently failed fabric; :meth:`apply_fault` accumulates it
        #: and :meth:`repair_fault` restores it, and the allocator is
        #: kept in sync so later starts never route over dead hardware.
        self.failed_links: frozenset[tuple[str, str]] = frozenset()
        self.failed_routers: frozenset[str] = frozenset()

    # -- queries --------------------------------------------------------------

    @property
    def running_applications(self) -> tuple[str, ...]:
        """Applications with at least one allocated channel."""
        return self.allocation.applications()

    def is_running(self, application: str) -> bool:
        """True when the application holds any reservations."""
        return application in self.running_applications

    # -- transitions ------------------------------------------------------------

    def start_application(self, application: Application, *,
                          at_s: float = 0.0) -> TransitionReport:
        """Allocate a new application without disturbing the others."""
        if self.is_running(application.name):
            raise ConfigurationError(
                f"application {application.name!r} is already running")
        before = _reservation_snapshot(self.allocation, application.name)
        running_before = self.running_applications
        try:
            self.allocator.extend(self.allocation,
                                  list(application.channels), self.mapping)
        except AllocationError:
            # A failed admission must leave no trace either.
            for spec in application.channels:
                if spec.name in self.allocation.channels:
                    self.allocation.release(spec.name)
            self.allocation.validate()
            raise
        after = _reservation_snapshot(self.allocation, application.name)
        report = TransitionReport(
            action="start", application=application.name,
            channels_changed=tuple(
                sorted(spec.name for spec in application.channels)),
            untouched=before == after,
            running_before=running_before,
            running_after=self.running_applications)
        self.history.append(report)
        if self.recorder is not None:
            self.recorder.record_start(
                at_s, application.name,
                tuple(self.allocation.channels[spec.name]
                      for spec in sorted(application.channels,
                                         key=lambda s: s.name)))
        return report

    def stop_application(self, application_name: str, *,
                         at_s: float = 0.0) -> TransitionReport:
        """Release one application's reservations; others keep theirs."""
        if not self.is_running(application_name):
            raise ConfigurationError(
                f"application {application_name!r} is not running")
        before = _reservation_snapshot(self.allocation, application_name)
        running_before = self.running_applications
        released = self.allocation.release_application(application_name)
        self.allocation.validate()
        after = _reservation_snapshot(self.allocation, application_name)
        report = TransitionReport(
            action="stop", application=application_name,
            channels_changed=released,
            untouched=before == after,
            running_before=running_before,
            running_after=self.running_applications)
        self.history.append(report)
        if self.recorder is not None:
            self.recorder.record_stop(at_s, application_name)
        return report

    def switch(self, stop: str, start: Application, *,
               at_s: float = 0.0) -> tuple[
            TransitionReport, TransitionReport]:
        """A use-case transition: stop one application, start another."""
        stop_report = self.stop_application(stop, at_s=at_s)
        start_report = self.start_application(start, at_s=at_s)
        return stop_report, start_report

    def apply_fault(self, failed_links=(), failed_routers=(), *,
                    at_s: float = 0.0, on_infeasible: str = "drop"):
        """Degrade the live allocation around failed fabric.

        Delegates to :meth:`~repro.core.allocation.Allocation.
        rebuild_excluding`: applications untouched by the failure keep
        their exact reservations; affected channels are re-allocated
        over surviving routes or dropped, per the returned
        :class:`~repro.core.allocation.RebuildReport`.  Each disrupted
        application is recorded to the attached timeline as a stop plus
        (when any of its channels survive) a restart carrying the
        degraded-mode allocations, and logged in :attr:`history` as an
        ``action="fault"`` transition.

        The failure persists: it accumulates into :attr:`failed_links` /
        :attr:`failed_routers` and the allocator's exclusion set, so
        applications started afterwards are routed around the dead
        fabric too.  :meth:`repair_fault` restores resources.
        """
        all_links = self.failed_links | frozenset(
            (k[0], k[1]) for k in failed_links)
        all_routers = self.failed_routers | frozenset(failed_routers)
        # Rebuild first: with on_infeasible="raise" a failure must leave
        # the manager exactly as it was — no half-applied exclusions.
        report = self.allocation.rebuild_excluding(
            all_links, all_routers,
            options=self.allocator.options,
            on_infeasible=on_infeasible)
        self.failed_links = all_links
        self.failed_routers = all_routers
        self.allocator.set_excluded_links(excluded_link_keys(
            self.allocator.topology, all_links, all_routers))
        rebuilt = report.allocation
        old_channels = self.allocation.channels
        running_before = self.running_applications
        changed = tuple(sorted(
            name for name, v in report.verdicts.items()
            if v.verdict != "unaffected"))
        disrupted = sorted({old_channels[name].spec.application
                            for name in changed})
        self.allocation = rebuilt
        for app in disrupted:
            if self.recorder is not None:
                self.recorder.record_stop(at_s, app)
                survivors = tuple(
                    ca for _, ca in sorted(rebuilt.channels.items())
                    if ca.spec.application == app)
                if survivors:
                    self.recorder.record_start(at_s, app, survivors)
            self.history.append(TransitionReport(
                action="fault", application=app,
                channels_changed=tuple(
                    n for n in changed
                    if old_channels[n].spec.application == app),
                untouched=report.untouched_intact,
                running_before=running_before,
                running_after=self.allocation.applications()))
        return report

    def repair_fault(self, failed_links=(), failed_routers=()) -> None:
        """Restore previously failed fabric.

        Running channels are left where they are (no disruption without
        cause — the paper's reconfiguration ethos); only the exclusion
        set shrinks, so later starts may use the repaired resources
        again.
        """
        self.failed_links = self.failed_links - frozenset(
            (k[0], k[1]) for k in failed_links)
        self.failed_routers = self.failed_routers - frozenset(
            failed_routers)
        self.allocator.set_excluded_links(excluded_link_keys(
            self.allocator.topology, self.failed_links,
            self.failed_routers))
