"""Connection and channel specifications.

A *channel* is a unidirectional guaranteed-service stream between two IP
ports with a throughput requirement and (optionally) a latency requirement.
A *connection* in the paper's sense pairs a forward data channel with a
reverse channel used for responses and/or piggybacked end-to-end credits.

The slot allocator works on channels; higher layers (use-case generation,
the NI model's credit loop) work on connections.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.core.exceptions import ConfigurationError

__all__ = ["ChannelSpec", "ConnectionSpec", "MB", "GB", "NS", "US"]

# Unit helpers so specs read like the paper ("10 to 500 Mbyte/s", "35 ns").
MB = 1_000_000.0
GB = 1_000_000_000.0
NS = 1e-9
US = 1e-6


@dataclass(frozen=True)
class ChannelSpec:
    """Requirements of one unidirectional guaranteed-service channel.

    Attributes
    ----------
    name:
        Globally unique channel name (used as slot-table owner).
    src_ip, dst_ip:
        Names of the producing and consuming IP ports.
    throughput_bytes_per_s:
        Required sustained payload throughput.
    max_latency_ns:
        Worst-case flit latency requirement (NI arrival to NI delivery), or
        ``None`` when the channel has no latency requirement.
    application:
        Application this channel belongs to (the unit of composability).
    burst_bytes:
        Largest back-to-back message the IP produces; used for buffer
        sizing, not for slot counting.

    >>> spec = ChannelSpec("video0", "cpu", "display", 40 * MB,
    ...                    max_latency_ns=500.0, application="video")
    >>> spec.scaled(1.5).throughput_bytes_per_s == 60 * MB
    True
    """

    name: str
    src_ip: str
    dst_ip: str
    throughput_bytes_per_s: float
    max_latency_ns: float | None = None
    application: str = ""
    burst_bytes: int = 16

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("channel name must be non-empty")
        if not self.src_ip or not self.dst_ip:
            raise ConfigurationError(
                f"channel {self.name!r} needs both endpoint IPs")
        if self.src_ip == self.dst_ip:
            raise ConfigurationError(
                f"channel {self.name!r} connects {self.src_ip!r} to itself")
        if self.throughput_bytes_per_s < 0:
            raise ConfigurationError(
                f"channel {self.name!r} has negative throughput requirement")
        if self.max_latency_ns is not None and self.max_latency_ns <= 0:
            raise ConfigurationError(
                f"channel {self.name!r} has non-positive latency requirement")
        if self.burst_bytes < 1:
            raise ConfigurationError(
                f"channel {self.name!r} needs burst_bytes >= 1")

    def scaled(self, throughput_factor: float) -> "ChannelSpec":
        """Copy with throughput multiplied by ``throughput_factor``."""
        return replace(self, throughput_bytes_per_s=(
            self.throughput_bytes_per_s * throughput_factor))

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "name": self.name, "src_ip": self.src_ip, "dst_ip": self.dst_ip,
            "throughput_bytes_per_s": self.throughput_bytes_per_s,
            "max_latency_ns": self.max_latency_ns,
            "application": self.application,
            "burst_bytes": self.burst_bytes,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "ChannelSpec":
        """Inverse of :meth:`to_dict`."""
        latency = data.get("max_latency_ns")
        return ChannelSpec(
            name=str(data["name"]), src_ip=str(data["src_ip"]),
            dst_ip=str(data["dst_ip"]),
            throughput_bytes_per_s=float(
                data["throughput_bytes_per_s"]),  # type: ignore[arg-type]
            max_latency_ns=None if latency is None else float(latency),  # type: ignore[arg-type]
            application=str(data.get("application", "")),
            burst_bytes=int(data.get("burst_bytes", 16)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class ConnectionSpec:
    """A forward channel plus an optional reverse channel.

    The reverse channel carries responses and returns end-to-end credits.
    For write-only or streaming connections that do not need responses, a
    minimal credit-return channel can be synthesised with
    :meth:`with_credit_return`.
    """

    name: str
    forward: ChannelSpec
    reverse: ChannelSpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("connection name must be non-empty")
        if self.reverse is not None:
            if (self.reverse.src_ip != self.forward.dst_ip or
                    self.reverse.dst_ip != self.forward.src_ip):
                raise ConfigurationError(
                    f"connection {self.name!r}: reverse channel endpoints "
                    "must mirror the forward channel")
            if self.reverse.application != self.forward.application:
                raise ConfigurationError(
                    f"connection {self.name!r}: both channels must belong "
                    "to the same application")

    @property
    def channels(self) -> tuple[ChannelSpec, ...]:
        """All constituent channels (forward first)."""
        if self.reverse is None:
            return (self.forward,)
        return (self.forward, self.reverse)

    def with_credit_return(self, *,
                           throughput_fraction: float = 0.05
                           ) -> "ConnectionSpec":
        """Add a minimal reverse channel for credit return if absent.

        Credits travel in packet headers, so the reverse bandwidth needed
        is a small fraction of the forward payload bandwidth; 5 % is a safe
        default for 3-word flits with 5 credit bits per header.
        """
        if self.reverse is not None:
            return self
        reverse = ChannelSpec(
            name=f"{self.forward.name}__cr",
            src_ip=self.forward.dst_ip, dst_ip=self.forward.src_ip,
            throughput_bytes_per_s=(
                self.forward.throughput_bytes_per_s * throughput_fraction),
            max_latency_ns=None,
            application=self.forward.application,
            burst_bytes=4)
        return ConnectionSpec(self.name, self.forward, reverse)
