"""Analytical worst-case bounds for allocated channels.

aelite's services are *predictable*: latency and throughput bounds follow
directly from the slot reservation (Section VII).  This module computes
those bounds in the dataflow style the paper references ([19]): the NoC is
a chain of actors firing once per flit cycle, so a flit waits at most one
maximum slot gap in the NI and then moves one hop (router or link pipeline
stage) per slot until delivery.

The bounds are *guarantees*: the property-based tests assert that no
simulated flit is ever later than :attr:`ChannelBounds.latency_ns`, and
that sustained measured throughput reaches
:attr:`ChannelBounds.throughput_bytes_per_s` under saturation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.allocation import Allocation, ChannelAllocation
from repro.core.requirements import latency_bound_ns, throughput_of_slots
from repro.core.words import WordFormat

__all__ = ["ChannelBounds", "channel_bounds", "analyse", "AnalysisSummary",
           "summarise"]


@dataclass(frozen=True)
class ChannelBounds:
    """Worst-case guarantees of one allocated channel.

    All latency figures bound a single flit from the instant it is ready in
    the source NI queue to the instant it is completely delivered into the
    destination NI queue.
    """

    channel: str
    application: str
    n_slots: int
    worst_wait_slots: int
    traversal_slots: int
    latency_cycles: int
    latency_ns: float
    throughput_bytes_per_s: float
    required_throughput_bytes_per_s: float
    required_latency_ns: float | None

    @property
    def meets_throughput(self) -> bool:
        """Guaranteed throughput covers the requirement."""
        return (self.throughput_bytes_per_s >=
                self.required_throughput_bytes_per_s * (1 - 1e-9))

    @property
    def meets_latency(self) -> bool:
        """Guaranteed latency covers the requirement (vacuous if none)."""
        if self.required_latency_ns is None:
            return True
        return self.latency_ns <= self.required_latency_ns * (1 + 1e-9)

    @property
    def meets_all(self) -> bool:
        """Both requirements hold."""
        return self.meets_throughput and self.meets_latency

    @property
    def throughput_slack(self) -> float:
        """Guaranteed minus required throughput (bytes/s)."""
        return self.throughput_bytes_per_s - self.required_throughput_bytes_per_s

    @property
    def latency_slack_ns(self) -> float:
        """Required minus guaranteed latency; ``inf`` without requirement."""
        if self.required_latency_ns is None:
            return float("inf")
        return self.required_latency_ns - self.latency_ns


def channel_bounds(ca: ChannelAllocation, table_size: int,
                   frequency_hz: float, fmt: WordFormat) -> ChannelBounds:
    """Bounds of a single channel allocation."""
    wait = ca.worst_wait_slots(table_size)
    traversal = ca.path.traversal_slots
    latency_cycles = (wait + traversal) * fmt.flit_size
    return ChannelBounds(
        channel=ca.spec.name,
        application=ca.spec.application,
        n_slots=ca.n_slots,
        worst_wait_slots=wait,
        traversal_slots=traversal,
        latency_cycles=latency_cycles,
        latency_ns=latency_bound_ns(wait, ca.path, frequency_hz, fmt),
        throughput_bytes_per_s=throughput_of_slots(
            ca.n_slots, table_size, frequency_hz, fmt),
        required_throughput_bytes_per_s=ca.spec.throughput_bytes_per_s,
        required_latency_ns=ca.spec.max_latency_ns,
    )


def analyse(allocation: Allocation) -> dict[str, ChannelBounds]:
    """Bounds for every channel of an allocation, keyed by channel name."""
    return {name: channel_bounds(ca, allocation.table_size,
                                 allocation.frequency_hz, allocation.fmt)
            for name, ca in sorted(allocation.channels.items())}


@dataclass(frozen=True)
class AnalysisSummary:
    """Aggregate view over all channel bounds of an allocation."""

    n_channels: int
    n_meeting_all: int
    total_guaranteed_bytes_per_s: float
    total_required_bytes_per_s: float
    max_latency_ns: float
    mean_latency_ns: float
    mean_slots_per_channel: float

    @property
    def all_requirements_met(self) -> bool:
        """Every channel meets both requirements."""
        return self.n_meeting_all == self.n_channels


def summarise(bounds: Mapping[str, ChannelBounds]) -> AnalysisSummary:
    """Aggregate a per-channel bounds map."""
    values = list(bounds.values())
    if not values:
        return AnalysisSummary(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return AnalysisSummary(
        n_channels=len(values),
        n_meeting_all=sum(1 for b in values if b.meets_all),
        total_guaranteed_bytes_per_s=sum(
            b.throughput_bytes_per_s for b in values),
        total_required_bytes_per_s=sum(
            b.required_throughput_bytes_per_s for b in values),
        max_latency_ns=max(b.latency_ns for b in values),
        mean_latency_ns=sum(b.latency_ns for b in values) / len(values),
        mean_slots_per_channel=sum(b.n_slots for b in values) / len(values),
    )
