"""TDM slot tables and the slot arithmetic of contention-free routing.

Every network interface regulates injection with a slot table of ``size``
slots; the table has the same size throughout the NoC (Section III of the
paper).  A reservation of slot ``s`` at the NI's output link implies slot
``(s + d) mod size`` on every downstream link, where ``d`` is the accumulated
*slot shift*: one slot per router traversed (its three-cycle flit cycle) and
one per mesochronous link pipeline stage (Section V allocates a slot for the
link traversal).

This module provides:

* :func:`shifted` / :func:`shifted_slots` — the per-hop reservation shift;
* :class:`SlotTable` — an ownership map from slot to channel, used both for
  NI injection tables and per-link occupancy accounting in the allocator;
* gap/wait analysis used by the latency bound (:mod:`repro.core.analysis`);
* :func:`spread_slots` — the equidistant slot-choice heuristic;
* bitmask slot arithmetic (:func:`slots_to_mask` / :func:`mask_to_slots` /
  :func:`rotate_mask`) and :func:`choose_slots_fast` — the integer-mask
  representation the allocation hot path and the online admission service
  (:mod:`repro.service`) use to intersect per-link occupancy in a handful
  of machine ops instead of per-slot set operations.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.core.exceptions import AllocationError, ConfigurationError

__all__ = [
    "shifted",
    "shifted_slots",
    "SlotTable",
    "worst_case_wait_slots",
    "max_consecutive_gap",
    "spread_slots",
    "ideal_positions",
    "slots_to_mask",
    "mask_to_slots",
    "rotate_mask",
    "choose_slots_fast",
]


def shifted(slot: int, shift: int, size: int) -> int:
    """Return ``(slot + shift) mod size``: the reservation ``shift`` hops on."""
    if size <= 0:
        raise ConfigurationError(f"slot table size must be positive, got {size}")
    return (slot + shift) % size


def shifted_slots(slots: Iterable[int], shift: int, size: int) -> frozenset[int]:
    """Shift a whole reservation set by ``shift`` slots (cyclically)."""
    return frozenset(shifted(s, shift, size) for s in slots)


def slots_to_mask(slots: Iterable[int], size: int) -> int:
    """Pack a slot set into an integer bitmask (bit ``s`` = slot ``s``)."""
    mask = 0
    for s in slots:
        if not 0 <= s < size:
            raise ConfigurationError(f"slot {s} outside table of size {size}")
        mask |= 1 << s
    return mask


def mask_to_slots(mask: int) -> tuple[int, ...]:
    """Unpack a bitmask into its slot numbers, ascending."""
    out: list[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return tuple(out)


def rotate_mask(mask: int, shift: int, size: int) -> int:
    """Cyclic rotation such that bit ``s`` of the result is bit
    ``(s + shift) % size`` of ``mask``.

    This is the bitmask form of un-shifting a link occupancy back to
    injection slots: a link whose free slots are ``mask`` admits injection
    in exactly the slots of ``rotate_mask(mask, shift, size)`` when the
    link sits ``shift`` slots downstream of the NI.
    """
    if size <= 0:
        raise ConfigurationError(f"slot table size must be positive, got {size}")
    shift %= size
    if not shift:
        return mask
    full = (1 << size) - 1
    return ((mask >> shift) | (mask << (size - shift))) & full


def choose_slots_fast(free: Iterable[int], n: int, size: int,
                      max_gap: int | None = None) -> tuple[int, ...] | None:
    """Single-anchor variant of :func:`spread_slots` for the admission
    hot path.

    :func:`spread_slots` anchors its equidistant template at *every* free
    slot and keeps the best — optimal spreading, but O(|free|²·n), which
    dominates per-admission cost in the online service.  This variant
    anchors only at the first free slot (deterministic), then falls back
    to the same gap-filling step when a ``max_gap`` constraint is not yet
    met.  Slot choices may differ from :func:`spread_slots`, but every
    returned reservation honours the same constraints, so the quoted
    bounds remain guarantees.
    """
    free_sorted = sorted(set(free))
    if n <= 0:
        raise AllocationError(f"cannot reserve {n} slots")
    if len(free_sorted) < n:
        return None
    chosen = _assign_near_ideal(free_sorted, n, size, free_sorted[0])
    if chosen is None:
        return None
    if max_gap is not None and max_consecutive_gap(chosen, size) > max_gap:
        chosen = _fill_gaps(chosen, free_sorted, size, max_gap)
    return chosen


def max_consecutive_gap(slots: Iterable[int], size: int) -> int:
    """Largest cyclic distance between consecutive reserved slots.

    For a single reserved slot the gap is ``size`` (a full table rotation);
    an empty reservation has no defined gap and raises.
    """
    ordered = sorted(set(slots))
    if not ordered:
        raise AllocationError("gap of an empty reservation is undefined")
    for s in ordered:
        if not 0 <= s < size:
            raise ConfigurationError(f"slot {s} outside table of size {size}")
    if len(ordered) == 1:
        return size
    gaps = [ordered[i + 1] - ordered[i] for i in range(len(ordered) - 1)]
    gaps.append(size - ordered[-1] + ordered[0])
    return max(gaps)


def worst_case_wait_slots(slots: Iterable[int], size: int) -> int:
    """Worst-case whole slots a just-missed message waits for injection.

    A message that becomes available an instant after slot ``s`` started can
    only use the *next* reserved slot; the worst case over all arrival
    instants equals the maximum cyclic gap between consecutive reserved
    slots.  This is the NI waiting-time term of the paper's latency bound
    (Section VII: "the latency follows directly from the waiting time in
    the NI plus the time required to traverse the path").

    >>> worst_case_wait_slots([0, 4], 8)   # evenly spread
    4
    >>> worst_case_wait_slots([0, 1], 8)   # bunched: long dry stretch
    7
    """
    return max_consecutive_gap(slots, size)


def ideal_positions(n: int, size: int) -> list[int]:
    """Equidistant slot positions for ``n`` reservations in a table.

    These are the targets of the spreading heuristic; they minimise the
    maximum gap (and hence the worst-case NI wait) when all are free.
    """
    if n <= 0:
        return []
    return [round(i * size / n) % size for i in range(n)]


def spread_slots(free: Iterable[int], n: int, size: int,
                 max_gap: int | None = None) -> tuple[int, ...] | None:
    """Choose ``n`` slots from ``free`` spread as evenly as possible.

    The heuristic anchors an equidistant template at each free slot, assigns
    every template position to the nearest remaining free slot, and keeps
    the anchoring with the smallest maximum gap.  If ``max_gap`` is given
    and the best choice of ``n`` slots still exceeds it, additional free
    slots are inserted into the largest gaps until the constraint holds or
    free slots run out.

    Returns the chosen slots sorted ascending, or ``None`` when no
    assignment with ``n`` (or, under ``max_gap``, more) slots exists.
    """
    free_sorted = sorted(set(free))
    if n <= 0:
        raise AllocationError(f"cannot reserve {n} slots")
    if len(free_sorted) < n:
        return None

    best: tuple[int, ...] | None = None
    best_gap = size + 1
    # Anchoring at every free slot is O(|free|^2 * n) in the worst case but
    # tables are small (typically 8..64 slots); measured cost is negligible
    # next to simulation.
    anchors = free_sorted if len(free_sorted) <= 64 else free_sorted[::2]
    for anchor in anchors:
        chosen = _assign_near_ideal(free_sorted, n, size, anchor)
        if chosen is None:
            continue
        gap = max_consecutive_gap(chosen, size)
        if gap < best_gap:
            best, best_gap = chosen, gap
            if max_gap is None and gap <= (size + n - 1) // n:
                break  # already optimal for n slots
    if best is None:
        return None

    if max_gap is not None and best_gap > max_gap:
        best = _fill_gaps(best, free_sorted, size, max_gap)
        if best is None:
            return None
    return best


def _assign_near_ideal(free_sorted: list[int], n: int, size: int,
                       anchor: int) -> tuple[int, ...] | None:
    """Greedy nearest-free assignment of an equidistant template at ``anchor``."""
    remaining = set(free_sorted)
    chosen: list[int] = []
    for offset in ideal_positions(n, size):
        target = (anchor + offset) % size
        pick = _nearest(remaining, target, size)
        if pick is None:
            return None
        remaining.discard(pick)
        chosen.append(pick)
    return tuple(sorted(chosen))


def _nearest(candidates: set[int], target: int, size: int) -> int | None:
    """Free slot with smallest cyclic distance to ``target`` (ties: earlier)."""
    if not candidates:
        return None
    return min(candidates,
               key=lambda s: (min((s - target) % size, (target - s) % size), s))


def _fill_gaps(chosen: tuple[int, ...], free_sorted: list[int], size: int,
               max_gap: int) -> tuple[int, ...] | None:
    """Insert extra free slots into the largest gaps until ``max_gap`` holds."""
    slots = set(chosen)
    available = [s for s in free_sorted if s not in slots]
    while max_consecutive_gap(slots, size) > max_gap:
        if not available:
            return None
        start, length = _largest_gap(sorted(slots), size)
        middle = (start + length // 2) % size
        pick = _nearest(set(available), middle, size)
        if pick is None:
            return None
        available.remove(pick)
        slots.add(pick)
    return tuple(sorted(slots))


def _largest_gap(ordered: list[int], size: int) -> tuple[int, int]:
    """Return ``(start_slot, gap_length)`` of the largest cyclic gap."""
    best_start, best_len = ordered[-1], size - ordered[-1] + ordered[0]
    for i in range(len(ordered) - 1):
        length = ordered[i + 1] - ordered[i]
        if length > best_len:
            best_start, best_len = ordered[i], length
    return best_start, best_len


@dataclass
class _Reservation:
    owner: str


class SlotTable:
    """Ownership map from TDM slot to channel name.

    Used in two roles:

    * as the **injection table** of a network interface (slot → channel to
      inject in that slot), and
    * as the **occupancy table** of a link during allocation (slot → channel
      whose flit traverses the link in that slot).

    Both roles need the same operations: reserve, release, query, and
    iterate.  Slot numbers are always in ``range(size)``.

    >>> table = SlotTable(8)
    >>> table.reserve(2, "video")
    >>> table.reserve(6, "video")
    >>> table.owner(2)
    'video'
    >>> sorted(table.free_slots())
    [0, 1, 3, 4, 5, 7]
    >>> table.utilisation()
    0.25

    Occupancy is mirrored in an integer bitmask (bit ``s`` set = slot ``s``
    reserved) so free/reserved queries and the allocator's per-link
    intersections cost a few machine ops instead of a table scan.  The
    owner map stays authoritative; the mask is pure acceleration.
    """

    __slots__ = ("_size", "_owners", "_mask", "_full", "_row")

    def __init__(self, size: int,
                 reservations: Mapping[int, str] | None = None):
        if size <= 0:
            raise ConfigurationError(
                f"slot table size must be positive, got {size}")
        self._size = size
        self._owners: dict[int, str] = {}
        self._mask = 0
        self._full = (1 << size) - 1
        self._row: tuple[str | None, ...] | None = None
        if reservations:
            for slot, owner in reservations.items():
                self.reserve(slot, owner)

    # -- basic queries ------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of slots in the table (the TDM period)."""
        return self._size

    def owner(self, slot: int) -> str | None:
        """Channel owning ``slot``, or ``None`` when the slot is free."""
        self._check_slot(slot)
        return self._owners.get(slot)

    def owner_row(self) -> tuple[str | None, ...]:
        """The whole ownership map as a flat slot-indexed tuple.

        This is the compiled form the simulation hot paths index
        (``row[slot % size]`` replaces a bounds-checked dict lookup per
        slot); the tuple is cached and rebuilt only after a mutation,
        so a steady-state schedule pays for it once.

        >>> table = SlotTable(4)
        >>> table.reserve(1, "audio")
        >>> table.owner_row()
        (None, 'audio', None, None)
        """
        if self._row is None:
            owners = self._owners
            self._row = tuple(owners.get(s) for s in range(self._size))
        return self._row

    def is_free(self, slot: int) -> bool:
        """True when no channel has reserved ``slot``."""
        self._check_slot(slot)
        return not self._mask >> slot & 1

    @property
    def occupancy_mask(self) -> int:
        """Bitmask of reserved slots (bit ``s`` set = slot ``s`` taken)."""
        return self._mask

    @property
    def free_mask(self) -> int:
        """Bitmask of unreserved slots (complement of the occupancy)."""
        return ~self._mask & self._full

    def free_slots(self) -> frozenset[int]:
        """All currently unreserved slots."""
        return frozenset(mask_to_slots(self.free_mask))

    def reserved_slots(self, owner: str | None = None) -> frozenset[int]:
        """Slots reserved by ``owner`` (or by anyone if ``owner`` is None)."""
        if owner is None:
            return frozenset(self._owners)
        return frozenset(s for s, o in self._owners.items() if o == owner)

    def owners(self) -> frozenset[str]:
        """All channels holding at least one slot."""
        return frozenset(self._owners.values())

    def utilisation(self) -> float:
        """Fraction of slots reserved."""
        return len(self._owners) / self._size

    def __iter__(self) -> Iterator[tuple[int, str | None]]:
        for slot in range(self._size):
            yield slot, self._owners.get(slot)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SlotTable):
            return NotImplemented
        return self._size == other._size and self._owners == other._owners

    def __repr__(self) -> str:
        cells = ",".join(self._owners.get(s, "-") or "-"
                         for s in range(self._size))
        return f"SlotTable[{cells}]"

    # -- mutation -----------------------------------------------------------

    def reserve(self, slot: int, owner: str) -> None:
        """Reserve ``slot`` for ``owner``; raises if already taken."""
        self._check_slot(slot)
        if not owner:
            raise ConfigurationError("slot owner must be a non-empty name")
        current = self._owners.get(slot)
        if current is not None and current != owner:
            raise AllocationError(
                f"slot {slot} already reserved by {current!r}",
                channel=owner, reason="slot conflict")
        self._owners[slot] = owner
        self._mask |= 1 << slot
        self._row = None

    def reserve_all(self, slots: Iterable[int], owner: str) -> None:
        """Reserve several slots atomically (rolls back on conflict)."""
        taken: list[int] = []
        try:
            for slot in slots:
                before = self._owners.get(slot)
                self.reserve(slot, owner)
                if before is None:
                    taken.append(slot)
        except AllocationError:
            for slot in taken:
                del self._owners[slot]
                self._mask &= ~(1 << slot)
            self._row = None
            raise

    def release(self, slot: int) -> None:
        """Free one slot (idempotent)."""
        self._check_slot(slot)
        if self._owners.pop(slot, None) is not None:
            self._mask &= ~(1 << slot)
            self._row = None

    def release_owner(self, owner: str) -> None:
        """Free every slot held by ``owner``."""
        for slot in [s for s, o in self._owners.items() if o == owner]:
            del self._owners[slot]
            self._mask &= ~(1 << slot)
            self._row = None

    def copy(self) -> "SlotTable":
        """Independent copy (used for what-if allocation)."""
        return SlotTable(self._size, dict(self._owners))

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation."""
        return {"size": self._size,
                "reservations": {str(s): o for s, o in self._owners.items()}}

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "SlotTable":
        """Inverse of :meth:`to_dict`."""
        size = int(data["size"])  # type: ignore[arg-type]
        raw = data.get("reservations", {})
        return SlotTable(size, {int(k): str(v)
                                for k, v in raw.items()})  # type: ignore[union-attr]

    # -- internals ----------------------------------------------------------

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self._size:
            raise ConfigurationError(
                f"slot {slot} outside table of size {self._size}")
