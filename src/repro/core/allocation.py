"""Contention-free TDM slot allocation.

This is the software counterpart of the Æthereal resource-allocation tools
the paper reuses ([16]): given a topology, a mapping of IPs to NIs, and a
set of guaranteed-service channels, find for every channel a source route
and a set of injection slots such that **no two flits ever use the same
link in the same slot** (Section III's contention-free routing invariant).

The algorithm is a deterministic greedy allocator in the UMARS tradition:

1. channels are ordered hardest-first (most slots needed, then tightest
   latency, then name for determinism);
2. for each channel a small set of candidate paths is considered —
   k-shortest plus a congestion-aware shortest path that weighs links by
   their current slot occupancy;
3. on each candidate path, the set of injection slots that are free on
   *every* traversed link (after per-hop shifting) is computed, and the
   spreading heuristic of :mod:`repro.core.slot_table` picks slots that
   minimise the worst-case injection wait;
4. the first path that satisfies both the slot count and the latency gap
   constraint wins; its reservations are committed to the per-link
   occupancy tables.

Committed allocations are never revisited (no backtracking); this mirrors
the incremental allocation used for undisrupted reconfiguration: channels
of a new application can be added to an existing allocation without
touching running applications, and removed again without leaving state
behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.connection import ChannelSpec
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.core.path import Path
from repro.core.requirements import latency_bound_ns, slots_for_channel
from repro.core.slot_table import (SlotTable, mask_to_slots, rotate_mask,
                                   shifted, spread_slots,
                                   worst_case_wait_slots)
from repro.core.words import WordFormat
from repro.topology.graph import Topology
from repro.topology.mapping import Mapping
from repro.topology.routing import (k_shortest_paths, merge_load_aware,
                                    weighted_shortest_path)

__all__ = ["ChannelAllocation", "Allocation", "AllocatorOptions",
           "SlotAllocator", "ChannelVerdict", "RebuildReport",
           "excluded_link_keys"]


def excluded_link_keys(topology: Topology,
                       failed_links=(), failed_routers=()
                       ) -> frozenset[tuple[str, str]]:
    """Normalise a failure set into the directed link keys it disables.

    A failed link disables itself; a failed router disables every link
    incident to it (so any path traversing the router, or any NI hanging
    off it, loses its route).  Unknown links or routers are configuration
    errors — a fault schedule must name real hardware.

    >>> from repro.topology.builders import mesh
    >>> topo = mesh(2, 2, nis_per_router=1)
    >>> sorted(excluded_link_keys(topo, [("r0_0", "r1_0")]))
    [('r0_0', 'r1_0')]
    >>> len(excluded_link_keys(topo, failed_routers=["r0_0"]))
    6
    """
    known = set(topology.iter_link_keys())
    excluded: set[tuple[str, str]] = set()
    for key in failed_links:
        key = (key[0], key[1])
        if key not in known:
            raise ConfigurationError(
                f"failure set names unknown link {key}")
        excluded.add(key)
    routers = set(topology.routers)
    failed_router_set = set(failed_routers)
    unknown = sorted(failed_router_set - routers)
    if unknown:
        raise ConfigurationError(
            f"failure set names unknown router(s) {unknown}")
    if failed_router_set:
        excluded.update(key for key in known
                        if key[0] in failed_router_set
                        or key[1] in failed_router_set)
    return frozenset(excluded)


def _path_free_mask(link_tables: dict[tuple[str, str], "SlotTable"],
                    path: Path, size: int) -> int:
    """Bitmask of injection slots free on every link of ``path``.

    Each link's free mask is rotated back by the link's slot shift and
    intersected — the whole contention check is one AND per link.
    Shared by the allocator hot path and degraded-mode re-allocation so
    the shift semantics cannot diverge.
    """
    mask = (1 << size) - 1
    for link, shift in zip(path.links, path.link_shifts):
        mask &= rotate_mask(link_tables[link.key].free_mask, shift, size)
        if not mask:
            break
    return mask


@dataclass(frozen=True)
class ChannelVerdict:
    """How one channel fared through a degraded-mode re-allocation.

    ``verdict`` is one of:

    * ``"unaffected"`` — the channel's path touches no failed resource;
      its reservations are carried over bit-identically;
    * ``"rerouted_same_bounds"`` — rerouted over surviving links with a
      worst-case latency bound and guaranteed throughput no worse than
      before the fault;
    * ``"rerouted_degraded"`` — rerouted, still meeting the channel's
      stated requirements, but with weaker bounds than pre-fault;
    * ``"dropped"`` — no surviving route can carry the channel.
    """

    channel: str
    verdict: str
    reason: str = ""
    old_latency_ns: float | None = None
    new_latency_ns: float | None = None
    old_n_slots: int | None = None
    new_n_slots: int | None = None

    def to_record(self) -> dict[str, object]:
        """Deterministic JSON-ready form."""
        return {
            "channel": self.channel,
            "verdict": self.verdict,
            "reason": self.reason,
            "old_latency_ns": (None if self.old_latency_ns is None
                               else round(self.old_latency_ns, 3)),
            "new_latency_ns": (None if self.new_latency_ns is None
                               else round(self.new_latency_ns, 3)),
            "old_n_slots": self.old_n_slots,
            "new_n_slots": self.new_n_slots,
        }


@dataclass
class RebuildReport:
    """Outcome of one :meth:`Allocation.rebuild_excluding` call.

    ``allocation`` is the degraded-mode allocation: untouched channels
    keep their exact :class:`ChannelAllocation` objects (the composability
    invariant, re-checked and reported as ``untouched_intact``); affected
    channels are rerouted over surviving paths or dropped, per
    ``verdicts``.
    """

    allocation: "Allocation"
    verdicts: dict[str, ChannelVerdict]
    excluded_links: frozenset[tuple[str, str]]
    failed_routers: tuple[str, ...]
    untouched_intact: bool

    def count(self, verdict: str) -> int:
        """Channels that ended with ``verdict``."""
        return sum(1 for v in self.verdicts.values()
                   if v.verdict == verdict)

    @property
    def n_affected(self) -> int:
        """Channels whose pre-fault path touched a failed resource."""
        return sum(1 for v in self.verdicts.values()
                   if v.verdict != "unaffected")

    @property
    def guarantee_retention(self) -> float:
        """Fraction of affected channels rerouted with unchanged bounds.

        1.0 when the failure touched no channel at all.
        """
        affected = self.n_affected
        if not affected:
            return 1.0
        return self.count("rerouted_same_bounds") / affected

    @property
    def survival_rate(self) -> float:
        """Fraction of affected channels that kept *any* allocation."""
        affected = self.n_affected
        if not affected:
            return 1.0
        return 1.0 - self.count("dropped") / affected

    def to_record(self) -> dict[str, object]:
        """Deterministic JSON-ready form (verdicts sorted by channel)."""
        return {
            "excluded_links": [list(key)
                               for key in sorted(self.excluded_links)],
            "failed_routers": list(self.failed_routers),
            "n_channels": len(self.verdicts),
            "n_affected": self.n_affected,
            "n_unaffected": self.count("unaffected"),
            "n_rerouted_same_bounds": self.count("rerouted_same_bounds"),
            "n_rerouted_degraded": self.count("rerouted_degraded"),
            "n_dropped": self.count("dropped"),
            "guarantee_retention": round(self.guarantee_retention, 4),
            "survival_rate": round(self.survival_rate, 4),
            "untouched_intact": self.untouched_intact,
            "verdicts": [self.verdicts[name].to_record()
                         for name in sorted(self.verdicts)],
        }


@dataclass(frozen=True)
class ChannelAllocation:
    """The route and injection slots granted to one channel."""

    spec: ChannelSpec
    path: Path
    slots: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.slots:
            raise AllocationError(
                f"channel {self.spec.name!r} allocated zero slots",
                channel=self.spec.name)
        if tuple(sorted(set(self.slots))) != self.slots:
            raise AllocationError(
                f"channel {self.spec.name!r} slots must be sorted and unique",
                channel=self.spec.name)

    @property
    def n_slots(self) -> int:
        """Number of slots held per table rotation."""
        return len(self.slots)

    def worst_wait_slots(self, table_size: int) -> int:
        """Worst-case whole-slot injection wait (max cyclic gap)."""
        return worst_case_wait_slots(self.slots, table_size)

    def link_slots(self, table_size: int) -> dict[tuple[str, str], frozenset[int]]:
        """Slots this channel occupies on each traversed link.

        Memoised per instance: the same map is consulted at commit, at
        release, and by every full validation, and the admission service
        does all three per session.
        """
        cache = self.__dict__.get("_link_slots_cache")
        if cache is not None and cache[0] == table_size:
            return cache[1]
        out: dict[tuple[str, str], frozenset[int]] = {}
        for link, shift in zip(self.path.links, self.path.link_shifts):
            out[link.key] = frozenset(
                shifted(s, shift, table_size) for s in self.slots)
        object.__setattr__(self, "_link_slots_cache", (table_size, out))
        return out


@dataclass
class Allocation:
    """A complete, validated set of channel allocations.

    ``link_tables`` holds the occupancy of every topology link; it is the
    authoritative record from which NI injection tables are derived and
    against which contention-freedom is (re)validated.
    """

    topology: Topology
    table_size: int
    frequency_hz: float
    fmt: WordFormat
    channels: dict[str, ChannelAllocation] = field(default_factory=dict)
    link_tables: dict[tuple[str, str], SlotTable] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.link_tables:
            self.link_tables = {key: SlotTable(self.table_size)
                                for key in self.topology.iter_link_keys()}

    # -- queries ------------------------------------------------------------

    def channel(self, name: str) -> ChannelAllocation:
        """Allocation of one channel by name."""
        try:
            return self.channels[name]
        except KeyError:
            raise AllocationError(f"channel {name!r} is not allocated",
                                  channel=name)

    def channels_from_ni(self, ni: str) -> tuple[ChannelAllocation, ...]:
        """All channels injecting at ``ni``, sorted by name."""
        return tuple(sorted(
            (ca for ca in self.channels.values() if ca.path.source == ni),
            key=lambda ca: ca.spec.name))

    def channels_to_ni(self, ni: str) -> tuple[ChannelAllocation, ...]:
        """All channels delivering to ``ni``, sorted by name."""
        return tuple(sorted(
            (ca for ca in self.channels.values() if ca.path.dest == ni),
            key=lambda ca: ca.spec.name))

    def ni_injection_table(self, ni: str) -> SlotTable:
        """The TDM table programmed into NI ``ni``."""
        table = SlotTable(self.table_size)
        for ca in self.channels_from_ni(ni):
            table.reserve_all(ca.slots, ca.spec.name)
        return table

    def link_utilisation(self) -> dict[tuple[str, str], float]:
        """Reserved-slot fraction per link."""
        return {key: table.utilisation()
                for key, table in self.link_tables.items()}

    def mean_link_utilisation(self) -> float:
        """Average reserved fraction over all links."""
        utils = self.link_utilisation()
        return sum(utils.values()) / len(utils) if utils else 0.0

    def applications(self) -> tuple[str, ...]:
        """All application names with allocated channels, sorted."""
        return tuple(sorted({ca.spec.application
                             for ca in self.channels.values()}))

    # -- mutation (incremental reconfiguration) -------------------------------

    def commit(self, ca: ChannelAllocation) -> None:
        """Add one channel's reservations; rolls back on any conflict."""
        if ca.spec.name in self.channels:
            raise AllocationError(
                f"channel {ca.spec.name!r} is already allocated",
                channel=ca.spec.name)
        committed: list[tuple[tuple[str, str], int]] = []
        try:
            for key, slots in ca.link_slots(self.table_size).items():
                table = self._table(key)
                for slot in sorted(slots):
                    table.reserve(slot, ca.spec.name)
                    committed.append((key, slot))
        except AllocationError:
            for key, slot in committed:
                self.link_tables[key].release(slot)
            raise
        self.channels[ca.spec.name] = ca

    def release(self, channel_name: str) -> ChannelAllocation:
        """Remove one channel, freeing its slots on every link."""
        ca = self.channel(channel_name)
        for key, slots in ca.link_slots(self.table_size).items():
            table = self._table(key)
            for slot in slots:
                table.release(slot)
        del self.channels[channel_name]
        return ca

    def release_application(self, application: str) -> tuple[str, ...]:
        """Remove all channels of one application (use-case transition)."""
        names = tuple(sorted(
            name for name, ca in self.channels.items()
            if ca.spec.application == application))
        for name in names:
            self.release(name)
        return names

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Re-derive all link occupancy from scratch and compare.

        Raises :class:`AllocationError` on any contention (two channels on
        one link-slot) or bookkeeping divergence.  This is the programmatic
        statement of the paper's contention-free routing invariant.
        """
        fresh: dict[tuple[str, str], dict[int, str]] = {
            key: {} for key in self.topology.iter_link_keys()}
        for ca in self.channels.values():
            for key, slots in ca.link_slots(self.table_size).items():
                if key not in fresh:
                    raise AllocationError(
                        f"channel {ca.spec.name!r} uses unknown link {key}",
                        channel=ca.spec.name)
                for slot in slots:
                    holder = fresh[key].get(slot)
                    if holder is not None:
                        raise AllocationError(
                            f"contention on link {key} slot {slot}: "
                            f"{holder!r} vs {ca.spec.name!r}",
                            channel=ca.spec.name, reason="slot contention")
                    fresh[key][slot] = ca.spec.name
        for key, owners in fresh.items():
            recorded = {s: self.link_tables[key].owner(s)
                        for s in self.link_tables[key].reserved_slots()}
            if recorded != owners:
                raise AllocationError(
                    f"occupancy bookkeeping diverged on link {key}: "
                    f"recorded {recorded}, derived {owners}")

    # -- degraded-mode re-allocation ------------------------------------------

    def rebuild_excluding(self, failed_links=(), failed_routers=(), *,
                          options: "AllocatorOptions | None" = None,
                          on_infeasible: str = "drop",
                          telemetry=None) -> RebuildReport:
        """Guarantee-preserving re-allocation around failed resources.

        Builds a *new* allocation in which every channel whose path avoids
        the failed links/routers keeps its exact reservations (same
        :class:`ChannelAllocation` object — the composability invariant
        under degradation), and every affected channel is re-allocated
        over surviving k-shortest paths, hardest-first.  ``self`` is
        never mutated.

        Per-channel outcomes are reported as :class:`ChannelVerdict`\\ s:
        ``rerouted_same_bounds`` (bounds no worse than pre-fault),
        ``rerouted_degraded`` (requirements still met, bounds weaker), or
        ``dropped``.  With ``on_infeasible="raise"`` an un-reroutable
        channel raises :class:`AllocationError` carrying the failing
        channel and the per-candidate reasons instead of producing a
        ``dropped`` verdict.

        A zero-failure call reproduces the allocation exactly: every
        channel is ``unaffected`` and the rebuilt occupancy is
        byte-identical to the original.
        """
        if on_infeasible not in ("drop", "raise"):
            raise ConfigurationError(
                f"on_infeasible must be 'drop' or 'raise', "
                f"got {on_infeasible!r}")
        options = options or AllocatorOptions()
        excluded = excluded_link_keys(self.topology, failed_links,
                                      failed_routers)
        rebuilt = Allocation(self.topology, self.table_size,
                             self.frequency_hz, self.fmt)
        verdicts: dict[str, ChannelVerdict] = {}
        affected: list[ChannelAllocation] = []
        for name, ca in sorted(self.channels.items()):
            if excluded and not excluded.isdisjoint(ca.path.link_keys()):
                affected.append(ca)
            else:
                try:
                    rebuilt.commit(ca)
                except AllocationError as exc:
                    raise AllocationError(
                        f"re-allocation bookkeeping failed while carrying "
                        f"over unaffected channel {name!r}: {exc}",
                        channel=name, reason=exc.reason) from exc
                verdicts[name] = ChannelVerdict(
                    channel=name, verdict="unaffected",
                    old_latency_ns=self._latency_bound(ca),
                    new_latency_ns=self._latency_bound(ca),
                    old_n_slots=ca.n_slots, new_n_slots=ca.n_slots)
        # Hardest first, mirroring the offline allocator: most slots
        # held pre-fault, then tightest latency requirement, then name.
        affected.sort(key=lambda ca: (
            -ca.n_slots,
            ca.spec.max_latency_ns if ca.spec.max_latency_ns is not None
            else float("inf"),
            ca.spec.name))
        for ca in affected:
            verdicts[ca.spec.name] = self._reroute_one(
                rebuilt, ca, excluded, options, on_infeasible)
        rebuilt.validate()
        # Composability re-check for untouched channels: every (link,
        # slot) reservation they held before the fault must be recorded
        # to them in the rebuilt occupancy tables — derived from the
        # tables, not from the carried-over objects, so bookkeeping
        # corruption would actually trip it.
        untouched_intact = True
        for name, v in verdicts.items():
            if v.verdict != "unaffected":
                continue
            for key, slots in self.channels[name].link_slots(
                    self.table_size).items():
                table = rebuilt.link_tables.get(key)
                if table is None or any(table.owner(s) != name
                                        for s in slots):
                    untouched_intact = False
                    break
            if not untouched_intact:
                break
        report = RebuildReport(
            allocation=rebuilt, verdicts=verdicts,
            excluded_links=excluded,
            failed_routers=tuple(sorted(set(failed_routers))),
            untouched_intact=untouched_intact)
        if telemetry is not None and telemetry.enabled:
            telemetry.counter("faults.rebuilds").inc()
            for verdict in ("unaffected", "rerouted_same_bounds",
                            "rerouted_degraded", "dropped"):
                n = report.count(verdict)
                if n:
                    telemetry.counter("faults.rebuild_verdicts",
                                      verdict=verdict).inc(n)
        return report

    def _latency_bound(self, ca: ChannelAllocation) -> float:
        """Worst-case latency bound of one channel at this operating
        point (injection wait plus path traversal, in nanoseconds)."""
        return latency_bound_ns(ca.worst_wait_slots(self.table_size),
                                ca.path, self.frequency_hz, self.fmt)

    def _reroute_one(self, rebuilt: "Allocation", ca: ChannelAllocation,
                     excluded: frozenset[tuple[str, str]],
                     options: "AllocatorOptions",
                     on_infeasible: str) -> ChannelVerdict:
        """Re-allocate one fault-affected channel over surviving paths."""
        from repro.core.exceptions import TopologyError

        spec = ca.spec
        old_latency = self._latency_bound(ca)
        failures: list[str] = []
        try:
            candidates = [
                p for p in k_shortest_paths(
                    self.topology, ca.path.source, ca.path.dest,
                    options.path_candidates, exclude_links=excluded)
                if len(p.out_ports) <= self.fmt.max_hops]
        except TopologyError as exc:
            candidates = []
            failures.append(str(exc))
        for path in candidates:
            try:
                n, gap = slots_for_channel(spec, path, self.table_size,
                                           self.frequency_hz, self.fmt)
            except AllocationError as exc:
                failures.append(f"{path!r}: {exc.reason}")
                continue
            size = self.table_size
            mask = _path_free_mask(rebuilt.link_tables, path, size)
            free = set(mask_to_slots(mask))
            if len(free) < n:
                failures.append(
                    f"{path!r}: {len(free)} free slots < {n} needed")
                continue
            slots = spread_slots(free, n, size, max_gap=gap)
            if slots is None:
                failures.append(
                    f"{path!r}: free slots cannot satisfy gap <= {gap}")
                continue
            new_ca = ChannelAllocation(spec=spec, path=path, slots=slots)
            try:
                rebuilt.commit(new_ca)
            except AllocationError as exc:
                raise AllocationError(
                    f"re-allocation commit failed for channel "
                    f"{spec.name!r} on {path!r}: {exc}",
                    channel=spec.name, reason=exc.reason) from exc
            new_latency = self._latency_bound(new_ca)
            same = (new_ca.n_slots >= ca.n_slots
                    and new_latency <= old_latency * (1 + 1e-9))
            return ChannelVerdict(
                channel=spec.name,
                verdict=("rerouted_same_bounds" if same
                         else "rerouted_degraded"),
                old_latency_ns=old_latency, new_latency_ns=new_latency,
                old_n_slots=ca.n_slots, new_n_slots=new_ca.n_slots)
        detail = "; ".join(failures) if failures else "no surviving route"
        if on_infeasible == "raise":
            raise AllocationError(
                f"cannot re-allocate channel {spec.name!r} around "
                f"{len(excluded)} failed link(s): {detail}",
                channel=spec.name, reason=detail)
        return ChannelVerdict(
            channel=spec.name, verdict="dropped", reason=detail,
            old_latency_ns=old_latency, old_n_slots=ca.n_slots)

    # -- internals -----------------------------------------------------------

    def _table(self, key: tuple[str, str]) -> SlotTable:
        try:
            return self.link_tables[key]
        except KeyError:
            raise AllocationError(f"unknown link {key} in allocation")

    def __repr__(self) -> str:
        return (f"Allocation({len(self.channels)} channels, "
                f"table={self.table_size}, "
                f"util={self.mean_link_utilisation():.1%})")


@dataclass(frozen=True)
class AllocatorOptions:
    """Tunables of the greedy allocator (all deterministic).

    Attributes
    ----------
    path_candidates:
        Number of k-shortest paths considered per channel.
    load_aware_path:
        Also try a congestion-weighted shortest path first.
    order:
        Channel processing order: ``"tightness"`` (hardest first — most
        slots, then tightest latency), ``"throughput"`` (highest bandwidth
        first), or ``"input"`` (caller-supplied order, for ablations).
    """

    path_candidates: int = 4
    load_aware_path: bool = True
    order: str = "tightness"

    def __post_init__(self) -> None:
        if self.path_candidates < 1:
            raise ConfigurationError("path_candidates must be >= 1")
        if self.order not in ("tightness", "throughput", "input"):
            raise ConfigurationError(f"unknown order {self.order!r}")


class SlotAllocator:
    """Greedy contention-free slot allocator over a fixed topology."""

    def __init__(self, topology: Topology, *, table_size: int,
                 frequency_hz: float, fmt: WordFormat | None = None,
                 options: AllocatorOptions | None = None,
                 telemetry=None):
        if table_size <= 0:
            raise ConfigurationError(
                f"slot table size must be positive, got {table_size}")
        if frequency_hz <= 0:
            raise ConfigurationError(
                f"frequency must be positive, got {frequency_hz}")
        topology.validate()
        self.topology = topology
        self.table_size = table_size
        self.frequency_hz = frequency_hz
        self.fmt = fmt or WordFormat()
        self.options = options or AllocatorOptions()
        # Route candidates are a function of (src, dst) alone for a fixed
        # topology and header format, so repeated admissions — the online
        # service's admit/release churn in particular — reuse them instead
        # of re-running k-shortest-paths every time.  Quotes additionally
        # fix the requirement, making slot counts and gap constraints
        # cacheable per (src, dst, throughput, latency) — one entry per
        # endpoint pair and QoS class in the admission service.
        self._kpath_cache: dict[tuple[str, str], tuple[Path, ...]] = {}
        self._quote_cache: dict[
            tuple[str, str, float, float | None],
            tuple[tuple[Path, int, int | None], ...]] = {}
        #: Directed link keys currently unusable (failed fabric).  The
        #: route caches stay fault-agnostic; the exclusion is applied
        #: when candidates are consulted, so repairs need no
        #: invalidation.  Empty on the healthy path, which pays one
        #: emptiness check.
        self.excluded_links: frozenset[tuple[str, str]] = frozenset()
        self.set_telemetry(telemetry)

    def set_telemetry(self, telemetry) -> None:
        """(Re)bind the allocator's instrumentation hub.

        Cache hit/miss counters are resolved once per bind, so cache
        consultations on the admission hot path pay one cached
        attribute call; the default Null hub makes those calls no-ops.
        """
        from repro.telemetry.hub import coalesce
        tel = coalesce(telemetry)
        self.telemetry = tel
        self._tel_kpath_hit = tel.counter("allocator.kpath_cache",
                                          outcome="hit")
        self._tel_kpath_miss = tel.counter("allocator.kpath_cache",
                                           outcome="miss")
        self._tel_quote_hit = tel.counter("allocator.quote_cache",
                                          outcome="hit")
        self._tel_quote_miss = tel.counter("allocator.quote_cache",
                                           outcome="miss")
        self._tel_kshortest = tel.counter(
            "allocator.kshortest_expansions")

    def set_excluded_links(
            self, excluded: frozenset[tuple[str, str]]) -> None:
        """Degrade (or restore) the fabric new allocations may use.

        Candidate routes crossing an excluded link are dropped at
        allocation time, so channels added after a fault cannot be
        quoted guarantees over dead hardware.
        """
        self.excluded_links = frozenset(excluded)

    # -- public API -----------------------------------------------------------

    def allocate(self, channels: Sequence[ChannelSpec],
                 mapping: Mapping) -> Allocation:
        """Allocate all ``channels``; raises on the first infeasible one."""
        allocation = Allocation(self.topology, self.table_size,
                                self.frequency_hz, self.fmt)
        self.extend(allocation, channels, mapping)
        return allocation

    def extend(self, allocation: Allocation, channels: Sequence[ChannelSpec],
               mapping: Mapping) -> None:
        """Add channels to an existing allocation without disturbing it.

        This is the reconfiguration primitive: running applications keep
        their reservations; only new channels acquire slots.
        """
        self._check_compatible(allocation)
        mapping.validate(self.topology)
        for spec in self._ordered(channels, mapping):
            allocation.commit(self._allocate_one(allocation, spec, mapping))
        allocation.validate()

    # -- internals --------------------------------------------------------------

    def _check_compatible(self, allocation: Allocation) -> None:
        if allocation.table_size != self.table_size:
            raise ConfigurationError(
                f"allocation table size {allocation.table_size} != "
                f"allocator table size {self.table_size}")
        if allocation.topology is not self.topology:
            raise ConfigurationError(
                "allocation was built for a different topology object")

    def _ordered(self, channels: Sequence[ChannelSpec],
                 mapping: Mapping) -> list[ChannelSpec]:
        seen: set[str] = set()
        for spec in channels:
            if spec.name in seen:
                raise ConfigurationError(
                    f"duplicate channel name {spec.name!r}")
            seen.add(spec.name)
        if self.options.order == "input":
            return list(channels)
        if self.options.order == "throughput":
            return sorted(channels,
                          key=lambda c: (-c.throughput_bytes_per_s, c.name))

        def tightness(spec: ChannelSpec) -> tuple[float, float, str]:
            # Hardest first: estimate slots on a shortest path, then the
            # latency requirement (tighter = smaller), then name.
            path = self._candidates(spec, mapping, None)[0]
            try:
                n, gap = slots_for_channel(spec, path, self.table_size,
                                           self.frequency_hz, self.fmt)
            except AllocationError:
                # Let _allocate_one produce the detailed error.
                return (-float("inf"), 0.0, spec.name)
            gap_rank = float(gap) if gap is not None else float("inf")
            return (-float(n), gap_rank, spec.name)

        return sorted(channels, key=tightness)

    def shortest_candidates(self, src_ni: str, dst_ni: str
                            ) -> tuple[Path, ...]:
        """Cached k-shortest candidate routes (header-encodable only).

        Load-agnostic, so the result depends on the topology alone and is
        memoised for the lifetime of the allocator.  May be empty when no
        route fits in the header's hop budget.
        """
        key = (src_ni, dst_ni)
        cached = self._kpath_cache.get(key)
        if cached is None:
            paths = k_shortest_paths(self.topology, src_ni, dst_ni,
                                     self.options.path_candidates)
            cached = tuple(p for p in paths
                           if len(p.out_ports) <= self.fmt.max_hops)
            self._kpath_cache[key] = cached
            self._tel_kpath_miss.inc()
            self._tel_kshortest.inc()
        else:
            self._tel_kpath_hit.inc()
        return cached

    def route_quotes(self, src_ni: str, dst_ni: str, spec: ChannelSpec
                     ) -> tuple[tuple[Path, int, int | None], ...]:
        """Cached ``(path, n_slots, max_gap)`` per candidate route.

        The slot count and latency-gap constraint of a requirement on a
        path do not depend on current occupancy, so for admission churn
        they are computed once per (endpoints, requirement) and replayed.
        Candidates whose traversal alone breaks the latency requirement
        are dropped; the result may be empty.
        """
        key = (src_ni, dst_ni, spec.throughput_bytes_per_s,
               spec.max_latency_ns)
        cached = self._quote_cache.get(key)
        if cached is None:
            quotes = []
            for path in self.shortest_candidates(src_ni, dst_ni):
                try:
                    n, gap = slots_for_channel(spec, path, self.table_size,
                                               self.frequency_hz, self.fmt)
                except AllocationError:
                    continue
                quotes.append((path, n, gap))
            cached = tuple(quotes)
            self._quote_cache[key] = cached
            self._tel_quote_miss.inc()
        else:
            self._tel_quote_hit.inc()
        return cached

    def _candidates(self, spec: ChannelSpec, mapping: Mapping,
                    allocation: Allocation | None) -> list[Path]:
        src_ni = mapping.ni_of(spec.src_ip)
        dst_ni = mapping.ni_of(spec.dst_ip)
        if src_ni == dst_ni:
            raise ConfigurationError(
                f"channel {spec.name!r}: both endpoints map to NI "
                f"{src_ni!r}; NI-local communication does not use the NoC")
        excluded = self.excluded_links
        cached = self.shortest_candidates(src_ni, dst_ni)
        usable = [p for p in cached
                  if not excluded or excluded.isdisjoint(p.link_keys())]
        exclusion_filtered = len(usable) < len(cached)
        if self.options.load_aware_path and allocation is not None:
            tables = allocation.link_tables

            def weight(key: tuple[str, str]) -> float:
                if key in excluded:
                    return 1e9  # failed fabric: effectively unroutable
                table = tables.get(key)
                return 4.0 * table.utilisation() if table is not None else 0.0

            weighted = weighted_shortest_path(self.topology, src_ni, dst_ni,
                                              weight)
            if len(weighted.out_ports) <= self.fmt.max_hops and \
                    (not excluded
                     or excluded.isdisjoint(weighted.link_keys())):
                merge_load_aware(usable, weighted)
        if not usable:
            if exclusion_filtered:
                raise AllocationError(
                    f"channel {spec.name!r}: no route from {src_ni!r} "
                    f"to {dst_ni!r} avoids the failed fabric",
                    channel=spec.name,
                    reason="no surviving route avoids failed fabric")
            raise AllocationError(
                f"channel {spec.name!r}: no route from {src_ni!r} to "
                f"{dst_ni!r} fits in {self.fmt.max_hops} header hops",
                channel=spec.name, reason="path too long for header")
        return usable

    def free_injection_mask(self, allocation: Allocation,
                            path: Path) -> int:
        """Bitmask of injection slots free on every link of ``path``.

        Delegates to the shared rotate-and-AND intersection
        (:func:`_path_free_mask`), one AND per link.
        """
        return _path_free_mask(allocation.link_tables, path,
                               self.table_size)

    def _free_injection_slots(self, allocation: Allocation,
                              path: Path) -> set[int]:
        """Injection slots free on every link of ``path`` after shifting."""
        return set(mask_to_slots(self.free_injection_mask(allocation, path)))

    def _allocate_one(self, allocation: Allocation, spec: ChannelSpec,
                      mapping: Mapping) -> ChannelAllocation:
        failures: list[str] = []
        for path in self._candidates(spec, mapping, allocation):
            try:
                n, gap = slots_for_channel(spec, path, self.table_size,
                                           self.frequency_hz, self.fmt)
            except AllocationError as exc:
                failures.append(f"{path!r}: {exc.reason}")
                continue
            free = self._free_injection_slots(allocation, path)
            if len(free) < n:
                failures.append(
                    f"{path!r}: {len(free)} free slots < {n} needed")
                continue
            slots = spread_slots(free, n, self.table_size, max_gap=gap)
            if slots is None:
                failures.append(
                    f"{path!r}: free slots cannot satisfy gap <= {gap}")
                continue
            return ChannelAllocation(spec=spec, path=path, slots=slots)
        detail = "; ".join(failures) if failures else "no candidate paths"
        raise AllocationError(
            f"cannot allocate channel {spec.name!r} "
            f"({spec.throughput_bytes_per_s / 1e6:.3g} MB/s, "
            f"latency {spec.max_latency_ns} ns): {detail}",
            channel=spec.name, reason=detail)
