"""Applications and use cases: the units of composability.

An *application* is a set of channels belonging to one piece of software
or hardware IP, developed and verified in isolation.  A *use case* is the
set of applications that run concurrently.  aelite's headline property is
that the temporal behaviour of each application is completely independent
of the others (composability): removing, adding, or misbehaving
applications never changes another application's flit timing.

These classes only group and validate channel specifications; the property
itself is enforced by the TDM allocation (disjoint slots by construction)
and demonstrated by :mod:`repro.simulation.composability`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.connection import ChannelSpec
from repro.core.exceptions import ConfigurationError

__all__ = ["Application", "UseCase"]


@dataclass(frozen=True)
class Application:
    """A named set of channels verified as one unit."""

    name: str
    channels: tuple[ChannelSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("application name must be non-empty")
        seen: set[str] = set()
        for ch in self.channels:
            if ch.name in seen:
                raise ConfigurationError(
                    f"application {self.name!r} has duplicate channel "
                    f"{ch.name!r}")
            seen.add(ch.name)
            if ch.application and ch.application != self.name:
                raise ConfigurationError(
                    f"channel {ch.name!r} claims application "
                    f"{ch.application!r} but is listed under {self.name!r}")

    @property
    def total_throughput_bytes_per_s(self) -> float:
        """Aggregate required bandwidth of the application."""
        return sum(ch.throughput_bytes_per_s for ch in self.channels)

    @property
    def ips(self) -> tuple[str, ...]:
        """All IP ports referenced by this application, sorted."""
        names = {ch.src_ip for ch in self.channels}
        names |= {ch.dst_ip for ch in self.channels}
        return tuple(sorted(names))

    def channel(self, name: str) -> ChannelSpec:
        """Look up one channel by name."""
        for ch in self.channels:
            if ch.name == name:
                return ch
        raise ConfigurationError(
            f"application {self.name!r} has no channel {name!r}")


@dataclass(frozen=True)
class UseCase:
    """A set of applications intended to run simultaneously."""

    name: str
    applications: tuple[Application, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("use-case name must be non-empty")
        app_names: set[str] = set()
        channel_names: set[str] = set()
        for app in self.applications:
            if app.name in app_names:
                raise ConfigurationError(
                    f"use case {self.name!r} has duplicate application "
                    f"{app.name!r}")
            app_names.add(app.name)
            for ch in app.channels:
                if ch.name in channel_names:
                    raise ConfigurationError(
                        f"channel name {ch.name!r} appears in more than one "
                        "application")
                channel_names.add(ch.name)

    @property
    def channels(self) -> tuple[ChannelSpec, ...]:
        """All channels across all applications, in application order."""
        out: list[ChannelSpec] = []
        for app in self.applications:
            out.extend(app.channels)
        return tuple(out)

    @property
    def ips(self) -> tuple[str, ...]:
        """All IP ports across all applications, sorted."""
        names: set[str] = set()
        for app in self.applications:
            names.update(app.ips)
        return tuple(sorted(names))

    def application(self, name: str) -> Application:
        """Look up one application by name."""
        for app in self.applications:
            if app.name == name:
                return app
        raise ConfigurationError(
            f"use case {self.name!r} has no application {name!r}")

    def subset(self, app_names: Iterable[str]) -> "UseCase":
        """A use case containing only the named applications.

        Used by the composability experiments: the allocation of the full
        use case is reused, and simulating any subset must produce
        bit-identical per-channel timing.
        """
        wanted = set(app_names)
        unknown = wanted - {a.name for a in self.applications}
        if unknown:
            raise ConfigurationError(
                f"unknown applications in subset: {sorted(unknown)}")
        apps = tuple(a for a in self.applications if a.name in wanted)
        return UseCase(f"{self.name}[{'+'.join(sorted(wanted))}]", apps)

    def application_of(self, channel_name: str) -> str:
        """Name of the application owning ``channel_name``."""
        for app in self.applications:
            for ch in app.channels:
                if ch.name == channel_name:
                    return app.name
        raise ConfigurationError(f"no channel named {channel_name!r}")
