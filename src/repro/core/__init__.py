"""Core of the aelite reproduction: the TDM guaranteed-service flow.

This package implements the paper's primary contribution in software
terms: word/flit formats, slot-table arithmetic, contention-free slot
allocation, and the analytical latency/throughput bounds that make the
services *predictable*.  The hardware models in :mod:`repro.router`,
:mod:`repro.link`, :mod:`repro.wrapper` and :mod:`repro.ni` realise the
same behaviour cycle by cycle.

Exports are resolved lazily (PEP 562) so that submodules of sibling
packages can import ``repro.core.*`` without triggering a circular import
through this ``__init__``.
"""

from __future__ import annotations

import importlib

_EXPORTS: dict[str, str] = {
    # words / flits
    "WordFormat": "repro.core.words",
    "encode_path": "repro.core.words",
    "decode_next_port": "repro.core.words",
    "shift_path": "repro.core.words",
    "encode_header": "repro.core.words",
    "decode_header": "repro.core.words",
    "header_queue": "repro.core.words",
    "header_credits": "repro.core.words",
    "Flit": "repro.core.flits",
    "FlitKind": "repro.core.flits",
    "FlitMeta": "repro.core.flits",
    "Packet": "repro.core.flits",
    # slots / paths
    "SlotTable": "repro.core.slot_table",
    "shifted": "repro.core.slot_table",
    "shifted_slots": "repro.core.slot_table",
    "worst_case_wait_slots": "repro.core.slot_table",
    "max_consecutive_gap": "repro.core.slot_table",
    "spread_slots": "repro.core.slot_table",
    "ideal_positions": "repro.core.slot_table",
    "Path": "repro.core.path",
    "make_path": "repro.core.path",
    # specs
    "ChannelSpec": "repro.core.connection",
    "ConnectionSpec": "repro.core.connection",
    "Application": "repro.core.application",
    "UseCase": "repro.core.application",
    "MB": "repro.core.connection",
    "GB": "repro.core.connection",
    "NS": "repro.core.connection",
    "US": "repro.core.connection",
    # requirements / allocation / analysis
    "slots_for_throughput": "repro.core.requirements",
    "throughput_of_slots": "repro.core.requirements",
    "max_gap_for_latency": "repro.core.requirements",
    "latency_bound_ns": "repro.core.requirements",
    "slot_duration_s": "repro.core.requirements",
    "table_rotation_s": "repro.core.requirements",
    "link_raw_bytes_per_s": "repro.core.requirements",
    "link_payload_bytes_per_s": "repro.core.requirements",
    "SlotAllocator": "repro.core.allocation",
    "AllocatorOptions": "repro.core.allocation",
    "Allocation": "repro.core.allocation",
    "ChannelAllocation": "repro.core.allocation",
    "ChannelVerdict": "repro.core.allocation",
    "RebuildReport": "repro.core.allocation",
    "excluded_link_keys": "repro.core.allocation",
    "ChannelBounds": "repro.core.analysis",
    "AnalysisSummary": "repro.core.analysis",
    "analyse": "repro.core.analysis",
    "channel_bounds": "repro.core.analysis",
    "summarise": "repro.core.analysis",
    # buffers / credits
    "CreditLoop": "repro.core.buffers",
    "credit_loop": "repro.core.buffers",
    "required_rx_buffer_words": "repro.core.buffers",
    "required_tx_buffer_words": "repro.core.buffers",
    "credit_headroom_ok": "repro.core.buffers",
    # configuration
    "NocConfiguration": "repro.core.configuration",
    "configure": "repro.core.configuration",
    # reconfiguration and dataflow analysis
    "ReconfigurationManager": "repro.core.reconfiguration",
    "TransitionReport": "repro.core.reconfiguration",
    "ReconfigurationTimeline": "repro.core.timeline",
    "TimelineEvent": "repro.core.timeline",
    "TimelineRecorder": "repro.core.timeline",
    "replay_configuration": "repro.core.timeline",
    "LatencyRateServer": "repro.core.dataflow",
    "latency_rate_of": "repro.core.dataflow",
    "analyse_dataflow": "repro.core.dataflow",
    "busy_period_latency_ns": "repro.core.dataflow",
    "backlog_bound_bytes": "repro.core.dataflow",
    # serialisation and design-space exploration
    "configuration_to_dict": "repro.core.serialization",
    "configuration_from_dict": "repro.core.serialization",
    "save_configuration": "repro.core.serialization",
    "load_configuration": "repro.core.serialization",
    # moved to repro.design.search; kept here for compatibility
    "min_feasible_frequency": "repro.design.search",
    "table_size_scan": "repro.design.search",
    "TableSizeResult": "repro.design.search",
    # errors
    "ReproError": "repro.core.exceptions",
    "ConfigurationError": "repro.core.exceptions",
    "TopologyError": "repro.core.exceptions",
    "HeaderFormatError": "repro.core.exceptions",
    "AllocationError": "repro.core.exceptions",
    "CapacityError": "repro.core.exceptions",
    "SimulationError": "repro.core.exceptions",
    "DeadlockError": "repro.core.exceptions",
    "FlowControlError": "repro.core.exceptions",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    """Resolve exports on first access (avoids circular imports)."""
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
