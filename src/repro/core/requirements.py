"""Translating channel requirements into slot counts and gap constraints.

The TDM arithmetic (Sections III and VII of the paper):

* the network runs at frequency ``f``; a flit/slot takes ``flit_size``
  cycles, so a slot lasts ``flit_size / f`` seconds;
* a table of ``S`` slots rotates every ``S * flit_size / f`` seconds;
* a channel holding ``n`` slots moves at most ``n`` flits per rotation, so
  its guaranteed payload throughput is
  ``n * payload_bytes_per_flit * f / (S * flit_size)``;
* its worst-case injection wait is the maximum cyclic gap ``g`` between its
  reserved slots (in slots), so its worst-case flit latency is
  ``(g + traversal_slots) * flit_size / f``.

Payload accounting is conservative by default: every flit is assumed to
spend one word on a packet header, which is exact for single-flit packets
and pessimistic (never optimistic) for longer packets.
"""

from __future__ import annotations

import math

from repro.core.connection import ChannelSpec
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.core.path import Path
from repro.core.words import WordFormat

__all__ = [
    "slot_duration_s",
    "table_rotation_s",
    "link_raw_bytes_per_s",
    "link_payload_bytes_per_s",
    "slots_for_throughput",
    "throughput_of_slots",
    "max_gap_for_latency",
    "latency_bound_ns",
    "check_frequency",
]


def check_frequency(frequency_hz: float) -> None:
    """Reject non-physical operating frequencies."""
    if frequency_hz <= 0:
        raise ConfigurationError(
            f"operating frequency must be positive, got {frequency_hz}")


def slot_duration_s(frequency_hz: float, fmt: WordFormat) -> float:
    """Wall-clock duration of one TDM slot (one flit cycle)."""
    check_frequency(frequency_hz)
    return fmt.flit_size / frequency_hz


def table_rotation_s(table_size: int, frequency_hz: float,
                     fmt: WordFormat) -> float:
    """Wall-clock duration of one full slot-table rotation."""
    if table_size <= 0:
        raise ConfigurationError(
            f"slot table size must be positive, got {table_size}")
    return table_size * slot_duration_s(frequency_hz, fmt)


def link_raw_bytes_per_s(frequency_hz: float, fmt: WordFormat) -> float:
    """Raw link bandwidth: one word per cycle."""
    check_frequency(frequency_hz)
    return frequency_hz * fmt.bytes_per_word


def link_payload_bytes_per_s(frequency_hz: float, fmt: WordFormat) -> float:
    """Maximum guaranteed payload bandwidth of one fully reserved link."""
    return (link_raw_bytes_per_s(frequency_hz, fmt) *
            fmt.payload_words_per_flit / fmt.flit_size)


def slots_for_throughput(throughput_bytes_per_s: float, table_size: int,
                         frequency_hz: float, fmt: WordFormat) -> int:
    """Minimum slots per table rotation for a throughput requirement.

    Always at least one: a channel with no bandwidth requirement still
    needs a slot to be able to communicate at all.
    """
    if throughput_bytes_per_s < 0:
        raise ConfigurationError("throughput requirement must be >= 0")
    rotation = table_rotation_s(table_size, frequency_hz, fmt)
    bytes_per_rotation = throughput_bytes_per_s * rotation
    n = math.ceil(bytes_per_rotation / fmt.payload_bytes_per_flit - 1e-12)
    n = max(n, 1)
    if n > table_size:
        raise AllocationError(
            f"throughput {throughput_bytes_per_s:.3g} B/s needs {n} slots "
            f"but the table only has {table_size}",
            reason="throughput exceeds link capacity")
    return n


def throughput_of_slots(n_slots: int, table_size: int, frequency_hz: float,
                        fmt: WordFormat) -> float:
    """Guaranteed payload throughput of ``n_slots`` reservations."""
    if n_slots < 0 or n_slots > table_size:
        raise ConfigurationError(
            f"slot count {n_slots} outside table of size {table_size}")
    rotation = table_rotation_s(table_size, frequency_hz, fmt)
    return n_slots * fmt.payload_bytes_per_flit / rotation


def max_gap_for_latency(max_latency_ns: float, path: Path, table_size: int,
                        frequency_hz: float, fmt: WordFormat) -> int:
    """Largest admissible slot gap for a latency requirement on ``path``.

    Solves ``(gap + traversal_slots) * flit_size / f <= L`` for ``gap``.
    Raises :class:`AllocationError` when even a fully reserved table
    (gap 1) cannot meet the requirement, i.e. the path alone is too slow.
    """
    check_frequency(frequency_hz)
    if max_latency_ns <= 0:
        raise ConfigurationError("latency requirement must be positive")
    budget_cycles = max_latency_ns * 1e-9 * frequency_hz
    traversal_cycles = path.traversal_cycles(fmt)
    wait_cycles = budget_cycles - traversal_cycles
    gap = math.floor(wait_cycles / fmt.flit_size + 1e-12)
    if gap < 1:
        raise AllocationError(
            f"latency {max_latency_ns:.4g} ns infeasible on {path!r}: "
            f"traversal alone takes {traversal_cycles} cycles "
            f"({traversal_cycles / frequency_hz * 1e9:.4g} ns) and the "
            "injection wait cannot go below one slot",
            reason="latency below path traversal time")
    return min(gap, table_size)


def latency_bound_ns(worst_wait_slots: int, path: Path, frequency_hz: float,
                     fmt: WordFormat) -> float:
    """Worst-case flit latency of a reservation with the given wait.

    ``worst_wait_slots`` is the maximum cyclic gap of the reserved slots
    (see :func:`repro.core.slot_table.worst_case_wait_slots`).
    """
    check_frequency(frequency_hz)
    cycles = (worst_wait_slots + path.traversal_slots) * fmt.flit_size
    return cycles / frequency_hz * 1e9


def slots_for_channel(spec: ChannelSpec, path: Path, table_size: int,
                      frequency_hz: float, fmt: WordFormat
                      ) -> tuple[int, int | None]:
    """Slot count and gap constraint for one channel on one path.

    Returns ``(n_slots, max_gap)`` where ``max_gap`` is ``None`` for
    channels without a latency requirement.
    """
    n = slots_for_throughput(spec.throughput_bytes_per_s, table_size,
                             frequency_hz, fmt)
    gap: int | None = None
    if spec.max_latency_ns is not None:
        gap = max_gap_for_latency(spec.max_latency_ns, path, table_size,
                                  frequency_hz, fmt)
        # A gap of g requires at least ceil(S / g) slots; reflect that in
        # the slot count so the spreading heuristic aims high enough.
        n = max(n, math.ceil(table_size / gap))
    return n, gap
