"""Dataflow (latency-rate) characterisation of allocated channels.

The paper analyses aelite in dataflow terms ([19]): the NI's TDM
arbitration plus the fixed-latency pipeline behave as a *latency-rate
server*.  A channel with slot set ``S`` on a path with traversal time
``theta_path`` serves any arrival stream with

* **rate** ``rho`` — its guaranteed bytes/second, and
* **latency** ``theta`` — the worst-case service start delay
  (the maximum slot gap) plus the path traversal,

so any message arriving when ``b`` bytes are already backlogged
completes within ``theta + (b + size) / rho``.  This module computes
those curves, bounds end-to-end backlog-aware latency for *any*
conforming arrival pattern (the generalisation of the single-flit bound
in :mod:`repro.core.analysis`), and derives buffer sizes from the burst
tolerance — the formal machinery the paper defers to future work for
the heterochronous case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import Allocation, ChannelAllocation
from repro.core.exceptions import ConfigurationError
from repro.core.requirements import throughput_of_slots
from repro.core.slot_table import worst_case_wait_slots
from repro.core.words import WordFormat

__all__ = ["LatencyRateServer", "latency_rate_of", "busy_period_latency_ns",
           "backlog_bound_bytes"]


@dataclass(frozen=True)
class LatencyRateServer:
    """A latency-rate abstraction of one allocated channel.

    Attributes
    ----------
    channel:
        Channel name.
    theta_ns:
        Service latency: worst slot wait plus path traversal.
    rho_bytes_per_s:
        Guaranteed service rate.
    """

    channel: str
    theta_ns: float
    rho_bytes_per_s: float

    def service_curve(self, t_ns: float) -> float:
        """Guaranteed bytes served within ``t_ns`` of a busy period."""
        if t_ns <= self.theta_ns:
            return 0.0
        return (t_ns - self.theta_ns) * 1e-9 * self.rho_bytes_per_s

    def latency_for_bytes(self, pending_bytes: float) -> float:
        """Completion bound (ns) for a message behind a backlog.

        ``pending_bytes`` includes the message itself.
        """
        if pending_bytes < 0:
            raise ConfigurationError("pending_bytes must be >= 0")
        return self.theta_ns + pending_bytes / self.rho_bytes_per_s * 1e9


def latency_rate_of(ca: ChannelAllocation, table_size: int,
                    frequency_hz: float,
                    fmt: WordFormat) -> LatencyRateServer:
    """Latency-rate parameters of one allocation."""
    wait_slots = worst_case_wait_slots(ca.slots, table_size)
    theta_cycles = (wait_slots + ca.path.traversal_slots) * fmt.flit_size
    return LatencyRateServer(
        channel=ca.spec.name,
        theta_ns=theta_cycles / frequency_hz * 1e9,
        rho_bytes_per_s=throughput_of_slots(
            ca.n_slots, table_size, frequency_hz, fmt))


def busy_period_latency_ns(server: LatencyRateServer, *,
                           burst_bytes: float,
                           message_bytes: float) -> float:
    """Worst-case latency of a message inside a burst of ``burst_bytes``.

    A conforming source that bursts ``burst_bytes`` at rate
    ``<= rho`` sees its last message complete by
    ``theta + burst_bytes / rho``; this is the latency-rate bound the
    Section VII service-latency measurements must respect for bursty
    workloads.
    """
    if burst_bytes < message_bytes:
        raise ConfigurationError(
            "burst must include at least the message itself")
    return server.latency_for_bytes(burst_bytes)


def backlog_bound_bytes(server: LatencyRateServer, *,
                        arrival_rate_bytes_per_s: float,
                        burst_bytes: float) -> float:
    """Maximum backlog of a (burst, rate)-constrained arrival stream.

    For a token-bucket arrival curve ``A(t) = burst + rate * t`` served
    by a latency-rate server, the backlog never exceeds
    ``burst + rate * theta`` provided ``rate <= rho``.  This sizes the
    NI decoupling buffer for conforming-but-bursty IPs.
    """
    if arrival_rate_bytes_per_s > server.rho_bytes_per_s * (1 + 1e-9):
        raise ConfigurationError(
            f"arrival rate {arrival_rate_bytes_per_s:.3g} B/s exceeds the "
            f"guaranteed rate {server.rho_bytes_per_s:.3g} B/s; the "
            "backlog is unbounded")
    return burst_bytes + arrival_rate_bytes_per_s * server.theta_ns * 1e-9


def analyse_dataflow(allocation: Allocation
                     ) -> dict[str, LatencyRateServer]:
    """Latency-rate servers for every channel of an allocation."""
    return {name: latency_rate_of(ca, allocation.table_size,
                                  allocation.frequency_hz, allocation.fmt)
            for name, ca in sorted(allocation.channels.items())}
