"""End-to-end NoC configuration: topology + mapping + allocation + bounds.

:class:`NocConfiguration` is the single object a user needs to hand to the
simulators and the synthesis model.  :func:`configure` is the convenience
flow that mirrors the Æthereal design tools: map the IPs, allocate every
channel contention-free, analyse the bounds, and (optionally) refuse
configurations whose guarantees do not cover the requirements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.core.allocation import (Allocation, AllocatorOptions,
                                   SlotAllocator)
from repro.core.analysis import (AnalysisSummary, ChannelBounds, analyse,
                                 summarise)
from repro.core.application import UseCase
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.core.words import WordFormat
from repro.topology.graph import Topology
from repro.topology.mapping import (Mapping, communication_clustered,
                                    round_robin, traffic_balanced)

__all__ = ["NocConfiguration", "configure"]

_MAPPING_STRATEGIES = ("round_robin", "traffic_balanced",
                       "communication_clustered")


@dataclass
class NocConfiguration:
    """A fully resolved network configuration.

    Everything downstream — flit-level simulation, detailed hardware
    simulation, synthesis-area roll-ups — consumes this object.
    """

    topology: Topology
    use_case: UseCase
    mapping: Mapping
    allocation: Allocation
    table_size: int
    frequency_hz: float
    fmt: WordFormat = field(default_factory=WordFormat)

    def bounds(self) -> dict[str, ChannelBounds]:
        """Per-channel worst-case guarantees."""
        return analyse(self.allocation)

    def summary(self) -> AnalysisSummary:
        """Aggregate guarantee summary."""
        return summarise(self.bounds())

    def unmet_channels(self) -> tuple[str, ...]:
        """Names of channels whose guarantees miss their requirements."""
        return tuple(sorted(name for name, b in self.bounds().items()
                            if not b.meets_all))

    @property
    def cycle_time_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1e9 / self.frequency_hz

    def __repr__(self) -> str:
        return (f"NocConfiguration({self.topology.name!r}, "
                f"{len(self.allocation.channels)} channels @ "
                f"{self.frequency_hz / 1e6:.0f} MHz, "
                f"table={self.table_size})")


def configure(topology: Topology, use_case: UseCase, *, table_size: int,
              frequency_hz: float, fmt: WordFormat | None = None,
              mapping: Mapping | str = "communication_clustered",
              options: AllocatorOptions | None = None,
              require_met: bool = True) -> NocConfiguration:
    """Run the full design flow for one use case.

    Parameters
    ----------
    mapping:
        Either a pre-built :class:`Mapping` or the name of a heuristic
        (``"round_robin"``, ``"traffic_balanced"``,
        ``"communication_clustered"``).
    require_met:
        When true (default), raise :class:`AllocationError` if any channel's
        guaranteed bounds fall short of its requirements.  Disable for
        exploratory sweeps that want to inspect partial results.
    """
    fmt = fmt or WordFormat()
    channels = use_case.channels
    if not channels:
        raise ConfigurationError(
            f"use case {use_case.name!r} has no channels to configure")
    resolved = _resolve_mapping(mapping, topology, use_case)
    allocator = SlotAllocator(topology, table_size=table_size,
                              frequency_hz=frequency_hz, fmt=fmt,
                              options=options)
    allocation = allocator.allocate(list(channels), resolved)
    config = NocConfiguration(topology=topology, use_case=use_case,
                              mapping=resolved, allocation=allocation,
                              table_size=table_size,
                              frequency_hz=frequency_hz, fmt=fmt)
    if require_met:
        unmet = config.unmet_channels()
        if unmet:
            bounds = config.bounds()
            worst = unmet[0]
            raise AllocationError(
                f"{len(unmet)} channel(s) cannot meet requirements at "
                f"{frequency_hz / 1e6:.0f} MHz; first: {worst!r} "
                f"(guaranteed {bounds[worst].latency_ns:.1f} ns / "
                f"{bounds[worst].throughput_bytes_per_s / 1e6:.1f} MB/s)",
                channel=worst, reason="guarantees below requirements")
    return config


def _resolve_mapping(mapping: Mapping | str, topology: Topology,
                     use_case: UseCase) -> Mapping:
    if isinstance(mapping, Mapping):
        mapping.validate(topology)
        return mapping
    if mapping == "round_robin":
        return round_robin(use_case.ips, topology)
    if mapping == "traffic_balanced":
        return traffic_balanced(use_case.ips, use_case.channels, topology)
    if mapping == "communication_clustered":
        return communication_clustered(use_case.ips, use_case.channels,
                                       topology)
    raise ConfigurationError(
        f"unknown mapping strategy {mapping!r}; expected one of "
        f"{_MAPPING_STRATEGIES} or a Mapping instance")
