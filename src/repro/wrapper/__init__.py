"""Asynchronous wrappers: stallable routers/NIs with token synchronisation."""

from repro.wrapper.asynchronous import (DEFAULT_INITIAL_TOKENS, AsyncWrapper,
                                        DeadlockWatchdog, connect_wrappers)
from repro.wrapper.controller import PortInterfaceController
from repro.wrapper.port_interface import (InputPortInterface,
                                          OutputPortInterface, TokenChannel)

__all__ = ["AsyncWrapper", "connect_wrappers", "DeadlockWatchdog",
           "DEFAULT_INITIAL_TOKENS", "PortInterfaceController",
           "InputPortInterface", "OutputPortInterface", "TokenChannel"]
