"""Port interfaces of the asynchronous wrapper (Section VI).

Each router/NI port is managed by a Port Interface:

* an **Input Port Interface (IPI)** holds arriving tokens (flits — data or
  empty) and signals the controller when at least one whole flit is
  present;
* an **Output Port Interface (OPI)** holds produced tokens and tracks how
  much of its FIFO is *not yet reserved*.  The reservation happens at fire
  time — before the router's two-cycle data path delivers the words — so
  the forwarding delay can never overflow the FIFO (the paper's "early
  reservation").

Tokens travel between wrappers over a :class:`TokenChannel`, the model of
the asynchronous link plus handshake: bounded occupancy (the downstream
IPI's capacity provides the back-pressure inherent in the handshake) and a
configurable transfer latency.  Empty tokens flow like data tokens — their
only purpose is to let the neighbour synchronise, exactly as in the paper.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.flits import Flit

__all__ = ["InputPortInterface", "OutputPortInterface", "TokenChannel"]


class InputPortInterface:
    """Token FIFO feeding one router/NI input."""

    def __init__(self, name: str, capacity_tokens: int = 2):
        if capacity_tokens < 1:
            raise ConfigurationError(
                f"IPI {name!r} needs capacity >= 1 token")
        self.name = name
        self.capacity = capacity_tokens
        self._tokens: deque[Flit] = deque()
        self.max_occupancy = 0

    def prime(self, token: Flit) -> None:
        """Insert an initial (reset-time) token."""
        self.push(token)

    def push(self, token: Flit) -> None:
        """Accept a token from the link; overflow is an invariant failure."""
        if len(self._tokens) >= self.capacity:
            raise SimulationError(
                f"IPI {self.name!r} overflow: link delivered a token with "
                "no space (handshake violated)")
        self._tokens.append(token)
        self.max_occupancy = max(self.max_occupancy, len(self._tokens))

    @property
    def fireable(self) -> bool:
        """True when a whole flit is available (the IPI's firing rule)."""
        return bool(self._tokens)

    @property
    def has_space(self) -> bool:
        """True when the IPI can accept another token from the link."""
        return len(self._tokens) < self.capacity

    def pop(self) -> Flit:
        """Consume the head token (called by the PIC at fire time)."""
        if not self._tokens:
            raise SimulationError(
                f"IPI {self.name!r}: fired without a token")
        return self._tokens.popleft()

    def __len__(self) -> int:
        return len(self._tokens)


class OutputPortInterface:
    """Token FIFO collecting one router/NI output, with early reservation."""

    def __init__(self, name: str, capacity_tokens: int = 2):
        if capacity_tokens < 1:
            raise ConfigurationError(
                f"OPI {name!r} needs capacity >= 1 token")
        self.name = name
        self.capacity = capacity_tokens
        self._tokens: deque[Flit] = deque()
        # "Space not yet reserved": decremented at fire time, incremented
        # when a token leaves towards the link.
        self.unreserved_space = capacity_tokens
        self.max_occupancy = 0

    @property
    def fireable(self) -> bool:
        """True when space for one more flit can be reserved."""
        return self.unreserved_space >= 1

    def reserve(self) -> None:
        """Reserve space for the token the current firing will produce."""
        if self.unreserved_space < 1:
            raise SimulationError(
                f"OPI {self.name!r}: fired without reservable space")
        self.unreserved_space -= 1

    def deliver(self, token: Flit) -> None:
        """Store the token produced by a firing (space was reserved)."""
        if len(self._tokens) >= self.capacity:
            raise SimulationError(
                f"OPI {self.name!r} overflow despite early reservation")
        self._tokens.append(token)
        self.max_occupancy = max(self.max_occupancy, len(self._tokens))

    @property
    def has_token(self) -> bool:
        """True when a token is waiting to be sent on the link."""
        return bool(self._tokens)

    def send(self) -> Flit:
        """Hand the head token to the link; frees reserved space."""
        if not self._tokens:
            raise SimulationError(f"OPI {self.name!r}: send without token")
        self.unreserved_space += 1
        return self._tokens.popleft()

    def __len__(self) -> int:
        return len(self._tokens)


@dataclass
class _InFlight:
    token: Flit
    deliver_at_ps: int


class TokenChannel:
    """The asynchronous link between an OPI and the next wrapper's IPI.

    Models the handshake's intrinsic flow control by bounding the number
    of tokens that are in flight or waiting in the destination IPI, and a
    fixed transfer latency for the clock-domain crossing.
    """

    def __init__(self, name: str, source: OutputPortInterface,
                 sink: InputPortInterface, *, latency_ps: int = 0):
        if latency_ps < 0:
            raise ConfigurationError(
                f"token channel {name!r}: latency must be >= 0")
        self.name = name
        self.source = source
        self.sink = sink
        self.latency_ps = latency_ps
        self._in_flight: deque[_InFlight] = deque()
        self.tokens_transferred = 0

    def service(self, now_ps: int) -> None:
        """Progress the link: deliver arrived tokens, launch new ones.

        Called by both endpoint wrappers on their own clock edges; the
        operation is idempotent per instant and respects token order.
        Runs to a fixpoint so that a zero-latency transfer launched now is
        also delivered now.
        """
        while True:
            progressed = False
            # Deliver tokens whose latency elapsed, while the IPI has room.
            while (self._in_flight and
                   self._in_flight[0].deliver_at_ps <= now_ps and
                   self.sink.has_space):
                self.sink.push(self._in_flight.popleft().token)
                self.tokens_transferred += 1
                progressed = True
            # Launch the next token when the handshake allows: total tokens
            # "owned" by the receiving side (in flight + buffered) must
            # stay within the IPI capacity, or the sender waits.
            while (self.source.has_token and
                   len(self._in_flight) + len(self.sink) <
                   self.sink.capacity):
                token = self.source.send()
                self._in_flight.append(
                    _InFlight(token, now_ps + self.latency_ps))
                progressed = True
            if not progressed:
                return

    @property
    def in_flight(self) -> int:
        """Tokens currently traversing the link."""
        return len(self._in_flight)
