"""The asynchronous wrapper: stallable routers and NIs (Section VI).

The wrapper turns a synchronous element (router or NI) into a *stallable
process* in the sense of latency-insensitive design ([20] in the paper):
the element advances from one flit cycle to the next only when all
neighbours have synchronised, established by the token discipline of the
port interfaces and the PIC.

Model semantics, mirroring the paper:

* The wrapper runs on the element's local clock, three cycles per flit
  cycle (window).  At each window boundary the PIC fires iff every IPI
  holds a token (a whole flit — data or empty) and every OPI can reserve
  space for one.
* A fired **router** window feeds the consumed tokens' words into the
  free-running router pipeline; the fire signal, delayed by the router's
  data-path depth, forms the capture window during which the emerging
  words are assembled into output tokens (one per output port — an
  *empty token* when no data was routed there, so neighbours can always
  synchronise).
* A fired **NI** window advances the NI by one flit cycle of *logical*
  time (its slot table indexes by firing count, not wall cycles) — this
  is what keeps the TDM schedule intact under stalling.
* At reset every IPI is primed with ``initial_tokens`` empty tokens
  (the paper's "a few cycles are spent at reset to produce initial empty
  tokens ... otherwise the system deadlocks").  Two tokens cover the
  token-loop pipeline depth so a fully synchronous system sustains one
  firing per window.

Because each firing consumes exactly one token per input in FIFO order,
the n-th firing of every element processes exactly the flits that the
globally synchronous network would process in that element's n-th slot:
the network is *flit-synchronous*, and the allocation's contention-free
guarantee transfers unchanged.  Link and clock latencies shift wall-clock
timing only — which the throughput and schedule tests verify.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Protocol

from repro.clocking.clock import ClockDomain
from repro.core.exceptions import ConfigurationError, DeadlockError
from repro.core.flits import Flit, FlitKind
from repro.core.words import WordFormat
from repro.simulation.signals import IDLE, Phit, WordWire
from repro.wrapper.controller import PortInterfaceController
from repro.wrapper.port_interface import (InputPortInterface,
                                          OutputPortInterface, TokenChannel)

__all__ = ["AsyncWrapper", "connect_wrappers", "DeadlockWatchdog",
           "DEFAULT_INITIAL_TOKENS"]

#: Tokens primed into every IPI at reset; two cover the production
#: pipeline (fire -> capture -> transfer) so equal clocks sustain one
#: firing per flit cycle.
DEFAULT_INITIAL_TOKENS = 2


class _Wrappable(Protocol):  # pragma: no cover - typing helper
    name: str
    inputs: list[WordWire]
    outputs: list[WordWire]

    def compute(self, cycle: int, time_ps: int) -> None: ...
    def commit(self, cycle: int, time_ps: int) -> None: ...


@dataclass
class _Capture:
    """An in-progress output-token assembly for one firing."""

    start_cycle: int
    collected: list[list[Phit]] = field(default_factory=list)


class AsyncWrapper:
    """Wraps one router or NI into a stallable process (``Clocked``)."""

    def __init__(self, name: str, inner: _Wrappable, clock: ClockDomain,
                 fmt: WordFormat, *, is_ni: bool,
                 ipi_capacity: int = 3, opi_capacity: int = 2,
                 initial_tokens: int = DEFAULT_INITIAL_TOKENS):
        if initial_tokens < 0:
            raise ConfigurationError("initial_tokens must be >= 0")
        if initial_tokens > ipi_capacity:
            raise ConfigurationError(
                f"wrapper {name!r}: {initial_tokens} initial tokens exceed "
                f"IPI capacity {ipi_capacity}")
        self.name = name
        self.inner = inner
        self.clock = clock
        self.fmt = fmt
        self.is_ni = is_ni
        self.ipis = [InputPortInterface(f"{name}.ipi{i}", ipi_capacity)
                     for i in range(len(inner.inputs))]
        self.opis = [OutputPortInterface(f"{name}.opi{o}", opi_capacity)
                     for o in range(len(inner.outputs))]
        self.pic = PortInterfaceController(f"{name}.pic", self.ipis,
                                           self.opis)
        for ipi in self.ipis:
            for _ in range(initial_tokens):
                ipi.prime(Flit.empty(fmt))
        self.in_channels: list[TokenChannel] = []
        self.out_channels: list[TokenChannel] = []
        self._window_tokens: list[Flit] | None = None
        self._captures: deque[_Capture] = deque()
        self._virtual_cycle = 0  # NI logical time (advances when fired)
        self.last_fire_time_ps: int | None = None

    # -- Clocked protocol ---------------------------------------------------

    def compute(self, cycle: int, time_ps: int) -> None:
        """Service links, decide firing, feed the inner element."""
        for channel in self.in_channels:
            channel.service(time_ps)
        for channel in self.out_channels:
            channel.service(time_ps)
        pos = cycle % self.fmt.flit_size
        if pos == 0:
            self._begin_window(cycle, time_ps)
        self._feed_inner(pos)
        if not self.is_ni:
            self.inner.compute(cycle, time_ps)
        elif self._window_tokens is not None:
            self.inner.compute(self._virtual_cycle, time_ps)

    def commit(self, cycle: int, time_ps: int) -> None:
        """Advance the inner element and collect output tokens."""
        if not self.is_ni:
            self.inner.commit(cycle, time_ps)
            for wire in self.inner.outputs:
                wire.latch()
            self._collect_outputs(cycle)
        elif self._window_tokens is not None:
            self.inner.commit(self._virtual_cycle, time_ps)
            for wire in self.inner.outputs:
                wire.latch()
            self._collect_outputs(cycle)
            self._virtual_cycle += 1

    # -- firing ----------------------------------------------------------------

    def _begin_window(self, cycle: int, time_ps: int) -> None:
        if self.pic.can_fire:
            self._window_tokens = self.pic.fire()
            self.last_fire_time_ps = time_ps
            # NI emissions are captured within the fired window; router
            # outputs emerge after the data path's delay (the paper's
            # delayed fire signal: flit_size - 1 cycles for the two
            # register stages past the IPI).
            delay = 0 if self.is_ni else self.fmt.flit_size - 1
            self._captures.append(_Capture(start_cycle=cycle + delay))
        else:
            self.pic.note_stall()
            self._window_tokens = None

    def _feed_inner(self, pos: int) -> None:
        tokens = self._window_tokens
        for i, wire in enumerate(self.inner.inputs):
            if tokens is None or tokens[i].is_empty:
                phit = IDLE
            else:
                flit = tokens[i]
                phit = Phit(word=flit.words[pos], valid=True,
                            eop=flit.eop and pos == self.fmt.flit_size - 1,
                            flit=flit, word_index=pos)
            wire.drive(phit)
            wire.latch()

    # -- output collection ---------------------------------------------------------

    def _collect_outputs(self, cycle: int) -> None:
        """Sample the inner element's outputs into the pending capture.

        Captures are strictly ordered and non-overlapping (each spans
        ``flit_size`` cycles and consecutive firings start ``flit_size``
        apart), so only the head capture can be active.
        """
        if not self._captures:
            return
        head = self._captures[0]
        if cycle < head.start_cycle:
            return
        head.collected.append([wire.sample() for wire in self.inner.outputs])
        if len(head.collected) == self.fmt.flit_size:
            self._captures.popleft()
            self._deliver_tokens(head)

    def _deliver_tokens(self, capture: _Capture) -> None:
        for o, opi in enumerate(self.opis):
            phits = [row[o] for row in capture.collected]
            if not any(p.valid for p in phits):
                opi.deliver(Flit.empty(self.fmt))
                continue
            source = next((p.flit for p in phits
                           if p.valid and p.flit is not None), None)
            token = Flit(words=tuple(p.word for p in phits),
                         eop=phits[-1].eop,
                         kind=FlitKind.DATA,
                         has_header=(source.has_header
                                     if source is not None else True),
                         meta=source.meta if source is not None else None)
            opi.deliver(token)

    # -- introspection ------------------------------------------------------------

    @property
    def firings(self) -> int:
        """Completed firings (logical flit cycles) of this element."""
        return self.pic.firings

    def __repr__(self) -> str:
        kind = "NI" if self.is_ni else "router"
        return (f"AsyncWrapper({self.name!r} [{kind}], "
                f"{self.pic.firings} firings)")


def connect_wrappers(source: AsyncWrapper, out_port: int,
                     sink: AsyncWrapper, in_port: int, *,
                     latency_ps: int = 0) -> TokenChannel:
    """Create the asynchronous token link between two wrapped elements."""
    channel = TokenChannel(
        f"{source.name}.out{out_port}->{sink.name}.in{in_port}",
        source.opis[out_port], sink.ipis[in_port], latency_ps=latency_ps)
    source.out_channels.append(channel)
    sink.in_channels.append(channel)
    return channel


class DeadlockWatchdog:
    """Engine watcher that detects a stalled wrapper network.

    The wrapper network is deadlock-free by construction (initial tokens
    put a token on every dependency cycle); the watchdog exists to fail
    fast — with a diagnostic — if a modelling or configuration error
    breaks that argument, rather than spinning forever.
    """

    def __init__(self, wrappers: list[AsyncWrapper], *,
                 timeout_ps: int):
        if timeout_ps <= 0:
            raise ConfigurationError("watchdog timeout must be positive")
        self.wrappers = wrappers
        self.timeout_ps = timeout_ps

    def __call__(self, now_ps: int) -> None:
        """Raise :class:`DeadlockError` when an element stopped firing.

        Each wrapper gets an individual grace period: from reset (for its
        first firing) and from its own last firing afterwards.
        """
        stuck: list[AsyncWrapper] = []
        for wrapper in self.wrappers:
            anchor = wrapper.last_fire_time_ps
            if anchor is None:
                if now_ps > self.timeout_ps:
                    stuck.append(wrapper)
            elif now_ps - anchor > self.timeout_ps:
                stuck.append(wrapper)
        if not stuck:
            return
        details = "; ".join(
            f"{w.name}: blocked on {w.pic.blocking_ports()}"
            for w in stuck[:4])
        raise DeadlockError(
            f"{len(stuck)} wrapped element(s) made no progress for "
            f"{self.timeout_ps} ps: {details}")
