"""The Port Interface Controller: the wrapper's firing rule.

The PIC implements the dataflow-actor semantics of Section VI: the wrapped
element proceeds from one flit cycle to the next only when **every** input
port interface holds a whole flit and **every** output port interface has
space for one.  The combined fire signal

* consumes one token per IPI (acting as the input FIFOs' accept),
* reserves one token of space per OPI (early reservation), and
* is re-distributed, delayed by the router data path (two cycles), as the
  valid signal that writes the produced words into the OPIs.

The controller is pure bookkeeping; the wrapper in
:mod:`repro.wrapper.asynchronous` sequences it against the inner element.
"""

from __future__ import annotations

from repro.core.exceptions import SimulationError
from repro.core.flits import Flit
from repro.wrapper.port_interface import (InputPortInterface,
                                          OutputPortInterface)

__all__ = ["PortInterfaceController"]


class PortInterfaceController:
    """AND-firing rule over all port interfaces of one wrapped element."""

    def __init__(self, name: str, ipis: list[InputPortInterface],
                 opis: list[OutputPortInterface]):
        self.name = name
        self.ipis = ipis
        self.opis = opis
        self.firings = 0
        self.stalled_flit_cycles = 0

    @property
    def can_fire(self) -> bool:
        """True when every IPI has a flit and every OPI has space."""
        return (all(ipi.fireable for ipi in self.ipis) and
                all(opi.fireable for opi in self.opis))

    def fire(self) -> list[Flit]:
        """Consume one token per input and reserve space per output.

        Returns the consumed input tokens, in port order.  Raises when
        called while :attr:`can_fire` is false — the wrapper must check
        first (hardware gates the fire signal combinationally).
        """
        if not self.can_fire:
            raise SimulationError(
                f"PIC {self.name!r}: fire() while not fireable")
        for opi in self.opis:
            opi.reserve()
        tokens = [ipi.pop() for ipi in self.ipis]
        self.firings += 1
        return tokens

    def note_stall(self) -> None:
        """Record a flit cycle in which the element could not fire."""
        self.stalled_flit_cycles += 1

    def blocking_ports(self) -> list[str]:
        """Names of the ports preventing a firing (for diagnostics)."""
        blocked = [ipi.name for ipi in self.ipis if not ipi.fireable]
        blocked += [opi.name for opi in self.opis if not opi.fireable]
        return blocked
