"""The aelite router: HPU, arbiterless switch, three-stage pipeline."""

from repro.router.hpu import HeaderParsingUnit
from repro.router.switch import Switch
from repro.router.synchronous import SynchronousRouter

__all__ = ["HeaderParsingUnit", "Switch", "SynchronousRouter"]
