"""Header Parsing Unit: source-route decoding with path shifting.

One HPU sits behind every router input (Section IV).  When a packet's
header word arrives, the HPU reads the low ``port_bits`` bits as the local
output port, shifts the path field right so the next router sees its own
selection, and holds the selected port for every subsequent word until the
explicit end-of-packet marker passes.

Because aelite carries valid and EoP as explicit sideband signals (unlike
Æthereal, which encodes them in-band), the HPU performs no decoding on the
critical path beyond the shift: this is the architectural simplification
the paper credits for the router's speed.
"""

from __future__ import annotations

from repro.core.words import WordFormat, decode_next_port, shift_path
from repro.simulation.signals import IDLE, Phit

__all__ = ["HeaderParsingUnit"]


class HeaderParsingUnit:
    """Stateful per-input route decoder.

    :meth:`process` consumes one input phit per cycle and returns the
    ``(output_port, phit)`` pair to hand to the switch, where the phit of a
    header word has its path already shifted.  Idle phits return
    ``(None, IDLE)``.
    """

    __slots__ = ("_fmt", "_current_port", "name")

    def __init__(self, fmt: WordFormat, name: str = "hpu"):
        self._fmt = fmt
        self._current_port: int | None = None
        self.name = name

    @property
    def busy(self) -> bool:
        """True while a packet is in flight through this input."""
        return self._current_port is not None

    @property
    def current_port(self) -> int | None:
        """Output port of the in-flight packet, if any."""
        return self._current_port

    def process(self, phit: Phit) -> tuple[int | None, Phit]:
        """Route one word; see class docstring."""
        if not phit.valid:
            return None, IDLE
        if self._current_port is None:
            # First word of a packet: the header.
            port = decode_next_port(phit.word, self._fmt)
            routed = Phit(word=shift_path(phit.word, self._fmt) &
                          self._fmt.word_mask,
                          valid=True, eop=phit.eop, flit=phit.flit,
                          word_index=phit.word_index)
            if not phit.eop:
                self._current_port = port
            return port, routed
        port = self._current_port
        if phit.eop:
            self._current_port = None
        return port, phit

    def reset(self) -> None:
        """Return to the between-packets state."""
        self._current_port = None
