"""The aelite switch: one-hot input-to-output assignment without arbitration.

Because contention is excluded by the off-line TDM schedule, the switch has
no arbiter at all (Section IV): it simply connects each requesting input to
its requested output.  Two inputs requesting the same output in the same
cycle is not possible in a correctly allocated network, so the model treats
it as a hard simulation error — making every detailed simulation double as
a check of the contention-free-routing invariant.
"""

from __future__ import annotations

from repro.core.exceptions import SimulationError
from repro.simulation.signals import IDLE, Phit

__all__ = ["Switch"]


class Switch:
    """Combinational one-hot crossbar with contention checking."""

    __slots__ = ("n_outputs", "name")

    def __init__(self, n_outputs: int, name: str = "switch"):
        self.n_outputs = n_outputs
        self.name = name

    def route(self, requests: list[tuple[int | None, Phit]]
              ) -> list[Phit]:
        """Map per-input ``(output_port, phit)`` pairs to per-output phits.

        Raises :class:`SimulationError` when an input requests a port that
        does not exist or when two inputs collide on one output — the
        hardware equivalent of a TDM schedule violation.
        """
        outputs: list[Phit] = [IDLE] * self.n_outputs
        claimed_by: list[int | None] = [None] * self.n_outputs
        for input_index, (port, phit) in enumerate(requests):
            if port is None or not phit.valid:
                continue
            if not 0 <= port < self.n_outputs:
                raise SimulationError(
                    f"{self.name}: input {input_index} requests output "
                    f"{port}, but the switch has {self.n_outputs} outputs")
            if claimed_by[port] is not None:
                raise SimulationError(
                    f"{self.name}: contention on output {port}: inputs "
                    f"{claimed_by[port]} and {input_index} both hold valid "
                    "words (TDM schedule violated)")
            claimed_by[port] = input_index
            outputs[port] = phit
        return outputs
