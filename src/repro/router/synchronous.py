"""Cycle-accurate model of the three-stage aelite router (Section IV).

The router has exactly the paper's structure:

* **stage 1** — one word register per input port (the only buffering);
* **stage 2** — a Header Parsing Unit per input that selects the output
  port from the source route and holds it until end-of-packet;
* **stage 3** — the arbiterless one-hot switch driving registered outputs.

A word presented on an input wire therefore appears on the selected output
wire three cycles later, which is the router's one-slot (one flit cycle)
contribution to the reservation shift.

The model is parametrisable only in its port counts and word format —
exactly the parametrisation the paper allows — and contains no routing
table, no arbiter and no flow control.  It raises
:class:`~repro.core.exceptions.SimulationError` on output contention,
turning every simulation into a check of the contention-free schedule.
"""

from __future__ import annotations

from repro.core.exceptions import ConfigurationError
from repro.core.words import WordFormat
from repro.router.hpu import HeaderParsingUnit
from repro.router.switch import Switch
from repro.simulation.signals import IDLE, Phit, WordWire

__all__ = ["SynchronousRouter"]


class SynchronousRouter:
    """Three-stage pipelined aelite router (implements ``Clocked``).

    Wire protocol: ``inputs[i]`` and ``outputs[o]`` are
    :class:`~repro.simulation.signals.WordWire` objects created by the
    router; the network builder connects neighbouring elements by sharing
    wire objects (an output wire of one element *is* the input wire of the
    next, matching a registered output driving a wire segment).
    """

    def __init__(self, name: str, n_inputs: int, n_outputs: int,
                 fmt: WordFormat | None = None):
        if n_inputs < 1 or n_outputs < 1:
            raise ConfigurationError(
                f"router {name!r} needs at least one input and one output")
        self.name = name
        self.fmt = fmt or WordFormat()
        self.inputs = [WordWire(f"{name}.in{i}") for i in range(n_inputs)]
        self.outputs = [WordWire(f"{name}.out{o}") for o in range(n_outputs)]
        self._hpus = [HeaderParsingUnit(self.fmt, f"{name}.hpu{i}")
                      for i in range(n_inputs)]
        self._switch = Switch(n_outputs, f"{name}.switch")
        # Pipeline registers.
        self._stage1: list[Phit] = [IDLE] * n_inputs
        self._stage2: list[tuple[int | None, Phit]] = \
            [(None, IDLE)] * n_inputs
        # Values prepared in compute, latched in commit.
        self._next_stage1: list[Phit] = [IDLE] * n_inputs
        self._next_outputs: list[Phit] = [IDLE] * n_outputs

    # -- geometry ---------------------------------------------------------

    @property
    def n_inputs(self) -> int:
        """Number of input ports."""
        return len(self.inputs)

    @property
    def n_outputs(self) -> int:
        """Number of output ports."""
        return len(self.outputs)

    @property
    def arity(self) -> int:
        """Port count in the paper's sense (max of the two sides)."""
        return max(self.n_inputs, self.n_outputs)

    # -- Clocked protocol ---------------------------------------------------

    def compute(self, cycle: int, time_ps: int) -> None:
        """Read input wires and current pipeline registers."""
        self._next_stage1 = [wire.sample() for wire in self.inputs]
        # Stage 3 decision: the switch is combinational on the stage-2
        # registers; contention raises here, before any state advances.
        self._next_outputs = self._switch.route(self._stage2)

    def commit(self, cycle: int, time_ps: int) -> None:
        """Advance the pipeline and drive output registers."""
        # Stage 3: registered outputs.
        for wire, phit in zip(self.outputs, self._next_outputs):
            wire.drive(phit)
        # Stage 2: run the HPUs on the stage-1 registers (state advances).
        self._stage2 = [hpu.process(phit)
                        for hpu, phit in zip(self._hpus, self._stage1)]
        # Stage 1: latch the input wires.
        self._stage1 = list(self._next_stage1)

    # -- introspection ------------------------------------------------------

    def occupancy(self) -> int:
        """Valid words currently inside the pipeline (for tests)."""
        count = sum(1 for p in self._stage1 if p.valid)
        count += sum(1 for _, p in self._stage2 if p.valid)
        return count

    def reset(self) -> None:
        """Flush all pipeline state (simulation reset)."""
        n_in, n_out = self.n_inputs, self.n_outputs
        self._stage1 = [IDLE] * n_in
        self._stage2 = [(None, IDLE)] * n_in
        self._next_stage1 = [IDLE] * n_in
        self._next_outputs = [IDLE] * n_out
        for hpu in self._hpus:
            hpu.reset()

    def __repr__(self) -> str:
        return (f"SynchronousRouter({self.name!r}, {self.n_inputs}x"
                f"{self.n_outputs}, {self.fmt.data_width}-bit)")
