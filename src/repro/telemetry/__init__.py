"""Deterministic observability: metrics, sim-time tracing, profiling.

The paper's headline claim is *predictability*; this package makes the
reproduction's own machinery predictable to observe.  One
:class:`Telemetry` hub is threaded through the four hot layers —
admission (:mod:`repro.service.admission`), allocation
(:mod:`repro.core.allocation`), the compiled executor
(:mod:`repro.simulation.compiled`), and campaigns
(:mod:`repro.campaign.runner`) — and captures:

* :mod:`repro.telemetry.metrics` — counters, gauges, and fixed-bucket
  histograms keyed by name + label tuples;
* :mod:`repro.telemetry.spans` — spans whose timestamps are *simulated*
  slots/cycles/milliseconds, never wall clock, so traces inherit the
  repo's byte-determinism; wall-clock data is quarantined in ``meta``;
* :mod:`repro.telemetry.export` — JSONL, Prometheus text exposition,
  and Perfetto-loadable Chrome trace-event JSON;
* :mod:`repro.telemetry.monitor` — the analysis tier: the
  guarantee-conformance watchdog (observed latency/throughput vs the
  quoted analytical bounds, classified ``within_bounds`` / ``tight`` /
  ``violated``), fabric utilisation rollups, and the ``bench-check``
  perf-regression sentinel over ``benchmarks/records/BENCH_*.json``;
* :mod:`repro.telemetry.profiling` — the CLI ``--profile`` wrapper.

Disabled is the default: every instrumented constructor takes
``telemetry=None`` and normalises it to :data:`NULL_TELEMETRY`, whose
instruments are shared no-ops — the overhead gate
(``benchmarks/bench_telemetry_overhead.py``) holds enabled-mode capture
under 5% on the admission hot path and disabled mode within noise.
"""

from repro.telemetry.export import chrome_trace, prometheus_text, to_jsonl
from repro.telemetry.hub import (NULL_TELEMETRY, NullTelemetry, Telemetry,
                                 coalesce)
from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricRegistry)
from repro.telemetry.monitor import (BenchCheckReport, BenchVerdict,
                                     ChannelConformance,
                                     ConformanceReport, FabricRollup,
                                     MonitorSpec, bench_check,
                                     campaign_conformance,
                                     conformance_from_result,
                                     quote_conformance,
                                     timeline_conformance)
from repro.telemetry.profiling import run_profiled
from repro.telemetry.spans import CounterTrack, Span

__all__ = [
    "Telemetry", "NullTelemetry", "NULL_TELEMETRY", "coalesce",
    "Counter", "Gauge", "Histogram", "MetricRegistry", "Span",
    "CounterTrack",
    "to_jsonl", "prometheus_text", "chrome_trace", "run_profiled",
    "MonitorSpec", "ChannelConformance", "ConformanceReport",
    "conformance_from_result", "timeline_conformance",
    "quote_conformance", "campaign_conformance", "FabricRollup",
    "BenchVerdict", "BenchCheckReport", "bench_check",
]
