"""Render a telemetry capture: JSONL, Prometheus text, Chrome trace.

Three targets, one source of truth (the hub's registry + span list):

* :func:`to_jsonl` — one canonical JSON object per line: all metrics in
  registry-sorted order, then all sim-time spans in emission order, then
  a single trailing ``{"kind": "meta", ...}`` line holding everything
  wall-clock (phase timers, wall metrics/spans).  Strip that one line
  and the stream is byte-deterministic across repeated runs.
* :func:`prometheus_text` — Prometheus text exposition (``# TYPE``
  headers, ``_total``/``_bucket``/``_sum``/``_count`` conventions) for
  scraping or eyeballing.
* :func:`chrome_trace` — Chrome trace-event JSON, loadable in Perfetto
  (https://ui.perfetto.dev) for epoch/session/campaign timelines.  Each
  span track becomes a named thread; wall-clock tracks live in their own
  process so simulated and measured time never share an axis.
"""

from __future__ import annotations

import json
import re

from repro.telemetry.spans import SPAN_UNITS, Span

__all__ = ["to_jsonl", "prometheus_text", "chrome_trace"]

_CANONICAL = {"sort_keys": True, "separators": (",", ":")}
_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _dumps(obj: dict) -> str:
    return json.dumps(obj, **_CANONICAL)


def to_jsonl(tel) -> str:
    """The JSONL rendering of a :class:`~repro.telemetry.Telemetry`.

    Deterministic lines first, the wall-clock ``meta`` line last.
    """
    lines = [_dumps({"kind": "header", "name": tel.name, "version": 1})]
    wall_metrics = []
    for metric in tel.registry.metrics():
        if metric.wall:
            wall_metrics.append(metric.to_record())
        else:
            lines.append(_dumps(metric.to_record()))
    wall_spans = []
    for span in tel.spans:
        if span.wall:
            wall_spans.append(span.to_record())
        else:
            lines.append(_dumps(span.to_record()))
    wall_counters = []
    for counter in getattr(tel, "counter_tracks", ()):
        if counter.wall:
            wall_counters.append(counter.to_record())
        else:
            lines.append(_dumps(counter.to_record()))
    meta = {"kind": "meta", **tel.meta}
    if wall_metrics:
        meta["wall_metrics"] = wall_metrics
    if wall_spans:
        meta["wall_spans"] = wall_spans
    if wall_counters:
        meta["wall_counter_tracks"] = wall_counters
    lines.append(_dumps(meta))
    return "\n".join(lines) + "\n"


def _prom_name(name: str) -> str:
    return _PROM_BAD.sub("_", name)


def _prom_label_value(value) -> str:
    """Escape one label value per the text exposition format.

    The format requires ``\\`` -> ``\\\\``, newline -> ``\\n`` and
    ``"`` -> ``\\"`` inside the double-quoted value; anything else
    passes through (values are UTF-8, not restricted like names).
    """
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _prom_labels(labels, extra: str = "") -> str:
    parts = [f'{_prom_name(k)}="{_prom_label_value(v)}"'
             for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(tel) -> str:
    """Prometheus text exposition of every metric (wall ones included)."""
    out: list[str] = []
    typed: set[str] = set()
    for metric in tel.registry.metrics():
        name = _prom_name(metric.name)
        if metric.kind == "counter":
            name += "_total"
        if name not in typed:
            typed.add(name)
            out.append(f"# TYPE {name} {metric.kind}")
        if metric.kind == "histogram":
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                le = 'le="%s"' % bound
                out.append(f"{name}_bucket"
                           f"{_prom_labels(metric.labels, le)}"
                           f" {cumulative}")
            inf = 'le="+Inf"'
            out.append(f"{name}_bucket"
                       f"{_prom_labels(metric.labels, inf)}"
                       f" {metric.count}")
            out.append(f"{name}_sum{_prom_labels(metric.labels)}"
                       f" {round(metric.sum, 6)}")
            out.append(f"{name}_count{_prom_labels(metric.labels)}"
                       f" {metric.count}")
        else:
            out.append(f"{name}{_prom_labels(metric.labels)} "
                       f"{metric.value}")
    return "\n".join(out) + "\n" if out else ""


def chrome_trace(tel) -> dict:
    """Chrome trace-event JSON for the capture, as a plain dict.

    Simulated tracks share pid 1 (process ``tel.name``); wall-clock
    tracks get pid 2 (process ``<name> [wall]``).  Track-to-thread ids
    are assigned in first-appearance order, so the layout is as
    deterministic as the span stream itself.
    """
    events: list[dict] = []
    tids: dict[tuple[int, str], int] = {}
    for pid, label in ((1, tel.name), (2, f"{tel.name} [wall]")):
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": label}})
    for span in tel.spans:
        pid = 2 if span.wall else 1
        key = (pid, span.track)
        tid = tids.get(key)
        if tid is None:
            tid = len([k for k in tids if k[0] == pid]) + 1
            tids[key] = tid
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid,
                           "args": {"name": f"{span.track} "
                                            f"[{span.unit}]"}})
        scale = SPAN_UNITS[span.unit]
        ts = round(span.start * scale, 3)
        dur = round(span.duration * scale, 3)
        event = {"name": span.name, "cat": span.track, "pid": pid,
                 "tid": tid, "ts": ts, "args": dict(span.args)}
        if dur > 0:
            event.update(ph="X", dur=dur)
        else:
            event.update(ph="i", s="t")
        events.append(event)
    for counter in getattr(tel, "counter_tracks", ()):
        pid = 2 if counter.wall else 1
        scale = SPAN_UNITS[counter.unit]
        for ts, value in counter.points:
            events.append({"ph": "C", "name": counter.name,
                           "cat": counter.track, "pid": pid, "tid": 0,
                           "ts": round(ts * scale, 3),
                           "args": {counter.name: value}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _doctest_roundtrip() -> bool:
    """Smoke-check the three exporters agree on one tiny capture.

    >>> _doctest_roundtrip()
    True
    """
    from repro.telemetry.hub import Telemetry
    tel = Telemetry("t")
    tel.counter("hits", outcome="fast").inc(3)
    tel.span("e0", 0, 4, track="epochs", unit="slot")
    jsonl = to_jsonl(tel)
    prom = prometheus_text(tel)
    trace = chrome_trace(tel)
    return ('"kind":"span"' in jsonl
            and 'hits_total{outcome="fast"} 3' in prom
            and any(e.get("ph") == "X" for e in trace["traceEvents"]))
