"""Profiling hooks: the ``--profile`` cProfile wrapper for the CLI.

Deliberately tiny — the heavy lifting is stdlib :mod:`cProfile` — but
centralised here so every subcommand profiles the same way and tests can
exercise the wrapper without spawning a CLI process.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from typing import Callable, TypeVar

__all__ = ["run_profiled"]

T = TypeVar("T")


def run_profiled(func: Callable[[], T], *, sort: str = "cumulative",
                 limit: int = 25, stream=None) -> T:
    """Run ``func`` under :mod:`cProfile`, print top stats, return result.

    Stats go to ``stream`` (default ``sys.stderr``, so profiling never
    contaminates report stdout).

    >>> result = run_profiled(lambda: sum(range(100)),
    ...                       stream=io.StringIO())
    >>> result
    4950
    """
    profiler = cProfile.Profile()
    result = profiler.runcall(func)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(limit)
    out = stream if stream is not None else sys.stderr
    out.write(f"--- profile (top {limit} by {sort}) ---\n")
    out.write(buffer.getvalue())
    return result
