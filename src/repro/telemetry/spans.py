"""Sim-time spans: the tracing half of the telemetry subsystem.

A :class:`Span` is one named interval on a named track.  Its ``start``
and ``end`` are *simulated* quantities — slots, cycles, or simulated
milliseconds — never wall-clock readings, so a trace is as deterministic
as the simulation that produced it.  Wall-clock spans (CLI phase timers,
campaign worker activity) are allowed but must be flagged ``wall=True``;
exporters then segregate them into the ``meta`` section that the
byte-determinism tests ignore.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Span", "CounterTrack", "SPAN_UNITS"]

# Recognised span time units and their scale to Chrome-trace
# microseconds.  "slot" and "cycle" are unit-less simulation ticks;
# rendering one tick as one microsecond keeps Perfetto zoomable.
SPAN_UNITS: dict[str, float] = {
    "us": 1.0, "ms": 1e3, "s": 1e6, "slot": 1.0, "cycle": 1.0,
}


@dataclass(slots=True)
class Span:
    """One traced interval (``end == start`` renders as an instant).

    >>> s = Span("s0", track="sessions", unit="ms", start=1.5, end=9.0)
    >>> s.duration
    7.5
    """

    name: str
    track: str
    unit: str
    start: float
    end: float
    wall: bool = False
    args: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.unit not in SPAN_UNITS:
            raise ValueError(
                f"span unit {self.unit!r} not one of {sorted(SPAN_UNITS)}")
        if self.end < self.start:
            raise ValueError(
                f"span {self.name!r} ends ({self.end}) before it starts "
                f"({self.start})")

    @property
    def duration(self) -> float:
        """Span length in its own unit."""
        return self.end - self.start

    def to_record(self) -> dict:
        """Canonical JSON-ready form (used by the JSONL exporter)."""
        record = {"kind": "span", "name": self.name, "track": self.track,
                  "unit": self.unit, "start": round(self.start, 6),
                  "end": round(self.end, 6)}
        if self.args:
            record["args"] = self.args
        return record


@dataclass(slots=True)
class CounterTrack:
    """A sampled value series rendered as a Perfetto counter track.

    ``points`` are ``(timestamp, value)`` samples in the track's
    ``unit`` timebase, non-decreasing in time.  The Chrome-trace
    exporter turns each sample into a ``ph: "C"`` counter event, so the
    series plots as a stacked area chart alongside the span tracks —
    the fabric-utilisation rollups of
    :mod:`repro.telemetry.monitor` use this for per-epoch heatlines.

    >>> ct = CounterTrack("util", track="fabric", unit="slot",
    ...                   points=((0, 0.25), (64, 0.5)))
    >>> len(ct.points)
    2
    """

    name: str
    track: str
    unit: str
    points: tuple[tuple[float, float], ...]
    wall: bool = False

    def __post_init__(self):
        if self.unit not in SPAN_UNITS:
            raise ValueError(
                f"counter unit {self.unit!r} not one of "
                f"{sorted(SPAN_UNITS)}")
        self.points = tuple((float(ts), float(value))
                            for ts, value in self.points)
        if not self.points:
            raise ValueError(
                f"counter track {self.name!r} needs at least one point")
        if any(b[0] < a[0] for a, b in zip(self.points,
                                           self.points[1:])):
            raise ValueError(
                f"counter track {self.name!r} points must be "
                "time-ordered")

    def to_record(self) -> dict:
        """Canonical JSON-ready form (used by the JSONL exporter)."""
        return {"kind": "counter_track", "name": self.name,
                "track": self.track, "unit": self.unit,
                "points": [[round(ts, 6), round(value, 6)]
                           for ts, value in self.points]}
