"""Deterministic metric primitives: counters, gauges, histograms.

Every metric is keyed by ``(kind, name, labels)`` in a
:class:`MetricRegistry`; instruments are plain mutable objects so hot
paths can look them up once (the cold path) and then pay only an
attribute increment per event.  Histograms use *fixed* bucket bounds
supplied at creation time — never adaptive ones — so two runs over the
same event stream produce byte-identical bucket vectors.

The ``Null*`` variants overwrite every mutator with a no-op; they are
what :class:`repro.telemetry.NullTelemetry` hands out, keeping
instrumented hot loops allocation-free when telemetry is disabled.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry",
           "NullCounter", "NullGauge", "NullHistogram",
           "NULL_COUNTER", "NULL_GAUGE", "NULL_HISTOGRAM"]

LabelItems = tuple[tuple[str, str], ...]


class Counter:
    """A monotonically increasing count of events.

    >>> c = Counter("admission.decisions", (("outcome", "accept"),))
    >>> c.inc(); c.inc(2)
    >>> c.value
    3
    """

    __slots__ = ("name", "labels", "wall", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = (), *,
                 wall: bool = False):
        self.name = name
        self.labels = labels
        self.wall = wall
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def to_record(self) -> dict:
        """Canonical JSON-ready form (used by the JSONL exporter)."""
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A point-in-time value that can move both ways (queue depth etc.).

    >>> g = Gauge("campaign.queue_depth")
    >>> g.set(5); g.dec(); g.inc(3)
    >>> g.value
    7
    """

    __slots__ = ("name", "labels", "wall", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = (), *,
                 wall: bool = False):
        self.name = name
        self.labels = labels
        self.wall = wall
        self.value: float = 0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Raise the gauge by ``amount``."""
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        """Lower the gauge by ``amount``."""
        self.value -= amount

    def to_record(self) -> dict:
        """Canonical JSON-ready form (used by the JSONL exporter)."""
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """A fixed-bucket distribution.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last edge.  Deterministic by construction: the
    edges are frozen at creation, so bucket vectors never depend on the
    order or range of observations.

    >>> h = Histogram("width", (), bounds=(1, 4, 16))
    >>> for v in (0, 1, 2, 5, 99):
    ...     h.observe(v)
    >>> h.counts      # <=1, <=4, <=16, overflow
    [2, 1, 1, 1]
    >>> h.count, h.sum
    (5, 107.0)
    """

    __slots__ = ("name", "labels", "wall", "bounds", "counts", "count",
                 "sum")
    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems = (), *,
                 bounds: Iterable[float] = (), wall: bool = False):
        self.name = name
        self.labels = labels
        self.wall = wall
        self.bounds = tuple(bounds)
        if not self.bounds:
            raise ValueError(
                f"histogram {name!r} needs at least one bucket bound")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"histogram {name!r} bounds must be strictly increasing: "
                f"{self.bounds}")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def to_record(self) -> dict:
        """Canonical JSON-ready form (used by the JSONL exporter)."""
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels),
                "le": list(self.bounds), "counts": list(self.counts),
                "count": self.count, "sum": round(self.sum, 6)}


class NullCounter(Counter):
    """A counter whose :meth:`inc` does nothing (disabled telemetry)."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        """Discard the increment."""


class NullGauge(Gauge):
    """A gauge whose mutators do nothing (disabled telemetry)."""

    __slots__ = ()

    def set(self, value: float) -> None:
        """Discard the value."""

    def inc(self, amount: float = 1) -> None:
        """Discard the increment."""

    def dec(self, amount: float = 1) -> None:
        """Discard the decrement."""


class NullHistogram(Histogram):
    """A histogram whose :meth:`observe` does nothing (disabled)."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        """Discard the observation."""


NULL_COUNTER = NullCounter("null")
NULL_GAUGE = NullGauge("null")
NULL_HISTOGRAM = NullHistogram("null", bounds=(1,))


class MetricRegistry:
    """All metrics of one :class:`~repro.telemetry.Telemetry` instance.

    Instruments are created on first request and shared afterwards, so
    callers may freely re-request ``counter("x", outcome="hit")`` — the
    same object comes back each time.

    >>> reg = MetricRegistry()
    >>> a = reg.counter("hits", route="fast")
    >>> a is reg.counter("hits", route="fast")
    True
    >>> [m.name for m in reg.metrics()]
    ['hits']
    """

    def __init__(self):
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}

    def _get(self, factory, kind: str, name: str, labels: dict,
             **kwargs):
        items: LabelItems = tuple(sorted(labels.items()))
        key = (kind, name, items)
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name, items, **kwargs)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, *, wall: bool = False,
                **labels: str) -> Counter:
        """The counter for ``name`` + ``labels`` (created on demand)."""
        return self._get(Counter, "counter", name, labels, wall=wall)

    def gauge(self, name: str, *, wall: bool = False,
              **labels: str) -> Gauge:
        """The gauge for ``name`` + ``labels`` (created on demand)."""
        return self._get(Gauge, "gauge", name, labels, wall=wall)

    def histogram(self, name: str, *, bounds: Iterable[float],
                  wall: bool = False, **labels: str) -> Histogram:
        """The histogram for ``name`` + ``labels`` (created on demand).

        ``bounds`` must match on every request for the same series.
        """
        hist = self._get(Histogram, "histogram", name, labels,
                         bounds=bounds, wall=wall)
        if hist.bounds != tuple(bounds):
            raise ValueError(
                f"histogram {name!r} re-requested with different bounds: "
                f"{hist.bounds} != {tuple(bounds)}")
        return hist

    def metrics(self) -> list[Counter | Gauge | Histogram]:
        """Every registered instrument, in deterministic sorted order."""
        return [self._metrics[key] for key in sorted(self._metrics)]
