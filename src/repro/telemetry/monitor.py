"""Guarantee-conformance monitoring: turning telemetry into verdicts.

The paper's headline property is *predictability*: every admitted
connection carries an analytical worst-case latency and a guaranteed
throughput (:func:`~repro.core.analysis.channel_bounds`), and
composability means observed behaviour must stay inside those quotes no
matter what anyone else does.  PR 7's telemetry records raw metrics but
draws no conclusions; this module is the analysis tier that closes the
loop — it consumes the existing artifacts (``SimResult`` stats,
``ReconfigurationTimeline`` schedules, service quote streams, campaign
records, ``BENCH_*.json`` perf trajectories) and emits *classified
verdicts*:

* **guarantee conformance** — per channel/session, compare observed
  worst-case and mean service latency and delivered throughput against
  the quoted analytical bounds, classifying each into ``within_bounds``
  / ``tight`` / ``violated`` (:class:`ChannelConformance`), folded into
  one canonical, byte-deterministic :class:`ConformanceReport`.
  Builders exist for every artifact the repo produces: a static GS run
  (:func:`conformance_from_result`), a churn timeline replay
  (:func:`timeline_conformance`), a live service's quote stream
  (:func:`quote_conformance`) and a campaign's aggregated records
  (:func:`campaign_conformance`);
* **fabric introspection** — :class:`FabricRollup` folds slot schedules
  into per-link utilisation and per-NI slot-occupancy tables with
  hotspot top-K views, plus Chrome-trace counter tracks on the existing
  Perfetto export;
* a **perf-regression sentinel** — :func:`bench_check` fits a robust
  baseline (median of prior entries) over each recorded
  ``benchmarks/records/BENCH_*.json`` trajectory and fails on
  configurable ops/s regression, so the recorded perf history is a
  gate, not just an artifact (``python -m repro bench-check``).

Everything here inherits the repo's determinism contract: reports are
pure functions of simulated quantities, canonically serialised (sorted
keys, fixed rounding), byte-identical across repeated runs and across
serial/parallel campaign executions.  Wall-clock never enters a
conformance verdict — the only wall-derived consumer is the
regression sentinel, which reads *recorded* trajectories from disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "MonitorSpec", "ChannelConformance", "ConformanceReport",
    "conformance_from_result", "timeline_conformance",
    "quote_conformance", "campaign_conformance", "FabricRollup",
    "BenchVerdict", "BenchCheckReport", "bench_check",
]

#: Verdict severity order; combining verdicts takes the worst.
VERDICTS = ("within_bounds", "tight", "violated")


@dataclass(frozen=True)
class MonitorSpec:
    """Tunables of the conformance watchdog.

    ``slack_fraction`` is the *remaining-headroom* threshold below
    which an observation is flagged ``tight``: with the default 0.2, a
    channel whose observed worst case consumes 80 % or more of its
    quoted bound is tight.  ``eps`` is the relative tolerance for the
    violation comparison itself (floating-point guard, same spirit as
    :meth:`~repro.core.analysis.ChannelBounds.meets_latency`).

    >>> spec = MonitorSpec()
    >>> spec.classify(40.0, 100.0)
    'within_bounds'
    >>> spec.classify(85.0, 100.0)
    'tight'
    >>> spec.classify(100.5, 100.0)
    'violated'
    """

    slack_fraction: float = 0.2
    eps: float = 1e-9
    top_k: int = 8

    def __post_init__(self):
        if not 0.0 <= self.slack_fraction < 1.0:
            raise ValueError(
                f"slack_fraction must be in [0, 1), got "
                f"{self.slack_fraction}")
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")

    def classify(self, observed: float, bound: float) -> str:
        """Classify one observation against its quoted bound.

        ``observed`` and ``bound`` share any unit; ``bound <= 0`` (an
        unbounded or unmeasured quote) always classifies as
        ``within_bounds``.
        """
        if bound <= 0:
            return "within_bounds"
        if observed > bound * (1 + self.eps):
            return "violated"
        if observed >= bound * (1 - self.slack_fraction):
            return "tight"
        return "within_bounds"


def _worst(*verdicts: str) -> str:
    """The most severe of several verdicts."""
    return max(verdicts, key=VERDICTS.index)


@dataclass(frozen=True)
class ChannelConformance:
    """One channel's (or session's, or run's) conformance verdict.

    ``kind`` names the artifact the verdict was folded from: ``trace``
    (measured flit latencies vs analytical bound), ``quote`` (admission
    quote vs QoS requirement) or ``run`` (a campaign record's folded
    outcome).  Unused measurements stay ``None`` and are omitted from
    the canonical record, so each kind serialises only what it measured.

    >>> c = ChannelConformance(channel="c0", kind="trace",
    ...                        verdict="within_bounds",
    ...                        latency_bound_ns=120.0,
    ...                        worst_latency_ns=48.0, n_messages=10)
    >>> c.to_record()["channel"]
    'c0'
    """

    channel: str
    kind: str
    verdict: str
    latency_bound_ns: float | None = None
    worst_latency_ns: float | None = None
    mean_latency_ns: float | None = None
    n_messages: int | None = None
    quoted_mb_s: float | None = None
    required_mb_s: float | None = None
    delivered_mb_s: float | None = None
    detail: str | None = None
    #: Owning tenant of a multi-tenant quote stream; ``None`` keeps the
    #: record byte-identical to untenanted monitoring.
    tenant: str | None = None

    def __post_init__(self):
        if self.verdict not in VERDICTS:
            raise ValueError(
                f"verdict {self.verdict!r} not one of {VERDICTS}")

    @property
    def latency_headroom(self) -> float | None:
        """Remaining latency slack as a fraction of the bound."""
        if not self.latency_bound_ns or self.worst_latency_ns is None:
            return None
        return 1.0 - self.worst_latency_ns / self.latency_bound_ns

    def to_record(self) -> dict[str, object]:
        """Canonical JSON-ready form (``None`` measurements omitted)."""
        record: dict[str, object] = {
            "channel": self.channel,
            "kind": self.kind,
            "verdict": self.verdict,
        }
        for key, value, digits in (
                ("latency_bound_ns", self.latency_bound_ns, 3),
                ("worst_latency_ns", self.worst_latency_ns, 3),
                ("mean_latency_ns", self.mean_latency_ns, 3),
                ("quoted_mb_s", self.quoted_mb_s, 3),
                ("required_mb_s", self.required_mb_s, 3),
                ("delivered_mb_s", self.delivered_mb_s, 3)):
            if value is not None:
                record[key] = round(value, digits)
        if self.n_messages is not None:
            record["n_messages"] = self.n_messages
        headroom = self.latency_headroom
        if headroom is not None:
            record["latency_headroom"] = round(headroom, 4)
        if self.detail:
            record["detail"] = self.detail
        if self.tenant:
            record["tenant"] = self.tenant
        return record


@dataclass(frozen=True)
class ConformanceReport:
    """The canonical, byte-deterministic conformance verdict set.

    ``channels`` holds one :class:`ChannelConformance` per monitored
    channel/session/run, in a deterministic order (the builders sort).
    The report serialises with sorted keys and fixed rounding, so two
    runs over the same simulated inputs produce identical bytes — the
    same contract as every other report in the repo.

    >>> report = ConformanceReport(source="doc", scenario="s", channels=(
    ...     ChannelConformance("c0", "trace", "within_bounds"),
    ...     ChannelConformance("c1", "trace", "tight")))
    >>> report.ok, report.n_violated
    (True, 0)
    >>> report.counts["tight"]
    1
    """

    source: str
    scenario: str
    channels: tuple[ChannelConformance, ...] = ()
    slack_fraction: float = MonitorSpec.slack_fraction

    @property
    def counts(self) -> dict[str, int]:
        """Verdict histogram over every monitored channel."""
        counts = {verdict: 0 for verdict in VERDICTS}
        for entry in self.channels:
            counts[entry.verdict] += 1
        return counts

    @property
    def n_violated(self) -> int:
        """Channels whose observation broke the quoted bound."""
        return self.counts["violated"]

    @property
    def ok(self) -> bool:
        """True when no channel violated its bound."""
        return self.n_violated == 0

    def worst_channels(self, k: int = MonitorSpec.top_k
                       ) -> tuple[ChannelConformance, ...]:
        """The ``k`` entries with the least latency headroom first.

        Entries without a latency measurement sort last; ties break on
        the channel name, keeping the selection deterministic.
        """
        def key(entry: ChannelConformance):
            headroom = entry.latency_headroom
            return (headroom is None, headroom, entry.channel)
        return tuple(sorted(self.channels, key=key)[:k])

    @property
    def tenant_retention(self) -> dict[str, dict[str, object]]:
        """Per-tenant guarantee retention of a tenanted quote stream.

        For each tenant that owns at least one monitored entry:
        monitored count, violations, and ``retention`` — the fraction
        of its quotes that did *not* violate their bound (the
        multi-tenant analogue of the fault tier's guarantee-retention
        figure).  Empty for untenanted reports.
        """
        folded: dict[str, dict[str, object]] = {}
        for entry in self.channels:
            if not entry.tenant:
                continue
            row = folded.setdefault(
                entry.tenant, {"n_monitored": 0, "n_violated": 0,
                               "n_tight": 0})
            row["n_monitored"] += 1
            if entry.verdict == "violated":
                row["n_violated"] += 1
            elif entry.verdict == "tight":
                row["n_tight"] += 1
        for row in folded.values():
            row["retention"] = round(
                1.0 - row["n_violated"] / row["n_monitored"], 4)
        return dict(sorted(folded.items()))

    def to_record(self) -> dict[str, object]:
        """Canonical JSON-ready form (``tenants`` only when tenanted)."""
        record: dict[str, object] = {
            "source": self.source,
            "scenario": self.scenario,
            "slack_fraction": round(self.slack_fraction, 4),
            "n_channels": len(self.channels),
            "verdicts": self.counts,
            "ok": self.ok,
            "channels": [entry.to_record() for entry in self.channels],
        }
        tenants = self.tenant_retention
        if tenants:
            record["tenants"] = tenants
        return record

    def to_json(self) -> str:
        """Canonical serialisation: sorted keys, two-space indent."""
        return json.dumps(self.to_record(), indent=2, sort_keys=True)

    def write(self, path) -> None:
        """Write :meth:`to_json` (plus a trailing newline) to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def summary(self) -> str:
        """One-line operator view of the verdict histogram."""
        counts = self.counts
        head = (f"conformance[{self.source}/{self.scenario}]: "
                f"{len(self.channels)} monitored, "
                f"{counts['within_bounds']} within bounds, "
                f"{counts['tight']} tight, "
                f"{counts['violated']} violated")
        if not self.ok:
            worst = self.worst_channels(1)
            if worst:
                head += f" (worst: {worst[0].channel})"
        return head

    def summary_rows(self, k: int = MonitorSpec.top_k
                     ) -> list[dict[str, object]]:
        """Top-K least-headroom table rows for ``format_table``."""
        rows = []
        for entry in self.worst_channels(k):
            headroom = entry.latency_headroom
            rows.append({
                "channel": entry.channel,
                "verdict": entry.verdict,
                "bound_ns": ("-" if entry.latency_bound_ns is None
                             else round(entry.latency_bound_ns, 1)),
                "worst_ns": ("-" if entry.worst_latency_ns is None
                             else round(entry.worst_latency_ns, 1)),
                "headroom": ("-" if headroom is None
                             else f"{headroom:.1%}"),
            })
        return rows

    def tenant_rows(self) -> list[dict[str, object]]:
        """Per-tenant guarantee-retention table rows for
        ``format_table`` (empty for untenanted reports)."""
        return [{
            "tenant": tenant,
            "monitored": row["n_monitored"],
            "violated": row["n_violated"],
            "tight": row["n_tight"],
            "retention": f"{row['retention']:.1%}",
        } for tenant, row in self.tenant_retention.items()]


def _trace_conformance(name: str, bounds, stats, simulated_ns: float,
                       spec: MonitorSpec, *,
                       active_fraction: float = 1.0
                       ) -> ChannelConformance:
    """Fold one channel's measured latencies against one bound quote.

    The latency metric is the *service* latency (queueing behind the
    channel's own earlier messages excluded — exactly the quantity the
    analytical bound covers, see :func:`repro.usecase.runner.
    service_latencies_ns`).  Delivered throughput is additionally
    checked against the quoted TDM capacity scaled by the channel's
    ``active_fraction`` of the simulated window: delivering *more* than
    the reserved slots allow is physically impossible on a
    contention-free TDM fabric, so an overdelivery is a monitor-level
    violation in its own right.
    """
    from repro.usecase.runner import service_latencies_ns

    latencies = service_latencies_ns(stats, name)
    channel_stats = stats.channel(name)
    delivered_mb_s = None
    verdict = "within_bounds"
    worst = mean = None
    if latencies:
        worst = max(latencies)
        mean = sum(latencies) / len(latencies)
        verdict = spec.classify(worst, bounds.latency_ns)
    if simulated_ns > 0 and active_fraction > 0:
        delivered_mb_s = (channel_stats.delivered_bytes /
                          (simulated_ns * active_fraction) * 1e9 / 1e6)
        quoted_mb_s = bounds.throughput_bytes_per_s / 1e6
        if delivered_mb_s > quoted_mb_s * (1 + 1e-6):
            verdict = _worst(verdict, "violated")
    return ChannelConformance(
        channel=name, kind="trace", verdict=verdict,
        latency_bound_ns=bounds.latency_ns,
        worst_latency_ns=worst, mean_latency_ns=mean,
        n_messages=len(latencies) if latencies else 0,
        quoted_mb_s=bounds.throughput_bytes_per_s / 1e6,
        required_mb_s=bounds.required_throughput_bytes_per_s / 1e6,
        delivered_mb_s=delivered_mb_s)


def conformance_from_result(config, result, *,
                            spec: MonitorSpec | None = None,
                            scenario: str = "usecase-gs"
                            ) -> ConformanceReport:
    """Watchdog a static guaranteed-service run against its bounds.

    ``config`` is the :class:`~repro.core.configuration.
    NocConfiguration` whose analytical bounds were quoted; ``result``
    the :class:`~repro.simulation.backend.SimResult` of simulating it.
    Every allocated channel appears in the report — silent channels
    (no traffic offered) conform trivially with ``n_messages`` 0.
    """
    spec = spec or MonitorSpec()
    bounds = config.bounds()
    entries = [
        _trace_conformance(name, bounds[name], result.stats,
                           result.simulated_ns, spec)
        for name in sorted(config.allocation.channels)]
    return ConformanceReport(source="simulation", scenario=scenario,
                             channels=tuple(entries),
                             slack_fraction=spec.slack_fraction)


def timeline_conformance(timeline, result, *,
                         n_slots: int | None = None,
                         channels=None,
                         spec: MonitorSpec | None = None,
                         scenario: str = "timeline"
                         ) -> ConformanceReport:
    """Watchdog a churn-timeline replay against per-channel bounds.

    Bounds come from each channel's recorded allocation
    (:func:`~repro.core.analysis.channel_bounds` at the timeline's
    operating point); delivered throughput is normalised by each
    channel's *active* fraction of the simulated window, folded from
    :meth:`~repro.core.timeline.ReconfigurationTimeline.
    channel_intervals`.  ``channels`` restricts the check (the dynamic
    composability flow passes the survivors — the channels whose
    guarantees are live across every epoch); the default monitors every
    timeline channel.
    """
    from repro.core.analysis import channel_bounds

    spec = spec or MonitorSpec()
    horizon = n_slots if n_slots is not None else timeline.horizon_slots
    allocations = timeline.channel_allocations()
    intervals = timeline.channel_intervals()
    monitored = (sorted(channels) if channels is not None
                 else sorted(allocations))
    slot_ns = timeline.fmt.flit_size / timeline.frequency_hz * 1e9
    entries = []
    for name in monitored:
        ca = allocations[name]
        bounds = channel_bounds(ca, timeline.table_size,
                                timeline.frequency_hz, timeline.fmt)
        active_slots = sum(
            max(0, min(end, horizon) - min(start, horizon))
            for start, end, _ in intervals.get(name, ()))
        fraction = active_slots / horizon if horizon > 0 else 0.0
        entries.append(_trace_conformance(
            name, bounds, result.stats, horizon * slot_ns, spec,
            active_fraction=fraction))
    return ConformanceReport(source="timeline", scenario=scenario,
                             channels=tuple(entries),
                             slack_fraction=spec.slack_fraction)


def quote_conformance(quotes, *, spec: MonitorSpec | None = None,
                      source: str = "service",
                      scenario: str = "quotes") -> ConformanceReport:
    """Watchdog an admission quote stream against the QoS requirements.

    ``quotes`` is an iterable of ``(session_id, qos_class,
    latency_bound_ns, required_latency_ns, quoted_bytes_per_s,
    required_bytes_per_s)`` tuples — optionally extended with a seventh
    ``tenant`` element for multi-tenant streams — as accumulated by a
    monitored :class:`~repro.service.controller.SessionService`.  A
    quote whose bound exceeds the session's requirement — or whose
    guaranteed throughput undershoots it — is an admission-control
    *violation*: the controller promised something the analysis says it
    cannot hold.  Tenanted streams additionally fold into the report's
    per-tenant guarantee-retention rows
    (:attr:`ConformanceReport.tenant_retention`).

    >>> report = quote_conformance([
    ...     ("s0", "voice", 800.0, 1000.0, 64e6, 64e6),
    ...     ("s1", "bulk", 500.0, None, 32e6, 32e6, "acme")])
    >>> report.ok, len(report.channels)
    (True, 2)
    >>> report.tenant_retention["acme"]["retention"]
    1.0
    """
    spec = spec or MonitorSpec()
    entries = []
    for quote in quotes:
        (session_id, qos_name, bound_ns, required_ns,
         quoted_bps, required_bps) = quote[:6]
        tenant = quote[6] if len(quote) > 6 else None
        if required_ns is None:
            latency_verdict = "within_bounds"
        else:
            latency_verdict = spec.classify(bound_ns, required_ns)
        throughput_verdict = "within_bounds"
        if quoted_bps < required_bps * (1 - spec.eps):
            throughput_verdict = "violated"
        entries.append(ChannelConformance(
            channel=session_id, kind="quote",
            verdict=_worst(latency_verdict, throughput_verdict),
            latency_bound_ns=bound_ns,
            worst_latency_ns=None, mean_latency_ns=None,
            quoted_mb_s=quoted_bps / 1e6,
            required_mb_s=required_bps / 1e6,
            detail=qos_name, tenant=tenant or None))
    entries.sort(key=lambda e: e.channel)
    return ConformanceReport(source=source, scenario=scenario,
                             channels=tuple(entries),
                             slack_fraction=spec.slack_fraction)


def campaign_conformance(records, *, spec: MonitorSpec | None = None,
                         scenario: str = "campaign"
                         ) -> ConformanceReport:
    """Fold campaign run records into per-run conformance verdicts.

    Accepts an iterable of campaign record dicts (or a
    :class:`~repro.campaign.runner.CampaignResult`, whose
    ``iter_records()`` is used).  A run is ``violated`` when it failed
    outright, diverged in a composability check, or broke the
    composition invariant; ``tight`` when it survived but degraded
    (guarantee retention below 1, or rerouted sessions re-admitted with
    worse bounds); ``within_bounds`` otherwise.  Records are already
    canonically ordered and wall-clock-free, so the rollup inherits the
    campaign's serial == parallel byte-determinism.
    """
    spec = spec or MonitorSpec()
    iter_records = getattr(records, "iter_records", None)
    if iter_records is not None:
        records = iter_records()
    entries = []
    for record in records:
        entries.append(_run_conformance(record))
    return ConformanceReport(source="campaign", scenario=scenario,
                             channels=tuple(entries),
                             slack_fraction=spec.slack_fraction)


#: Campaign statuses that are search verdicts, not failures (mirrors
#: ``repro.campaign.runner._NON_FAILURE_STATUSES``).
_RUN_OK_STATUSES = ("ok", "pruned", "infeasible")


def _run_conformance(record: dict) -> ChannelConformance:
    """Classify one campaign record into a run-level verdict."""
    run_id = str(record.get("run", record.get("scenario", "?")))
    status = record.get("status", "ok")
    if status not in _RUN_OK_STATUSES:
        return ChannelConformance(channel=run_id, kind="run",
                                  verdict="violated",
                                  detail=f"status={status}")
    result = record.get("result") or {}
    details = []
    verdict = "within_bounds"
    composability = result.get("composability")
    if composability is not None and not composability.get("composable",
                                                           True):
        verdict = "violated"
        details.append("composability diverged")
    invariant = result.get("invariant")
    if invariant is not None and not invariant.get("ok", True):
        verdict = "violated"
        details.append("invariant broken")
    survivability = result.get("survivability")
    if survivability is not None and verdict != "violated":
        retention = float(survivability.get("guarantee_retention", 1.0))
        if retention < 1.0:
            verdict = "tight"
            details.append(f"guarantee_retention={retention:g}")
    return ChannelConformance(
        channel=run_id, kind="run", verdict=verdict,
        detail="; ".join(details) if details else None)


# -- fabric introspection -------------------------------------------------


@dataclass(frozen=True)
class FabricRollup:
    """Per-link and per-NI slot-occupancy folded from schedules.

    ``link_slots`` maps ``"src->dst"`` to the number of reserved TDM
    slots on that link per table rotation; ``ni_slots`` maps each
    network interface to the injection slots its channels hold.
    ``utilisation`` of an entry is its slot count over ``table_size``.
    ``series`` optionally carries a ``(slot, mean_utilisation)`` time
    line (one point per reconfiguration epoch) for timeline rollups.

    >>> rollup = FabricRollup(table_size=4, n_channels=1,
    ...                       link_slots=(("a->b", 2),),
    ...                       ni_slots=(("a", 2),))
    >>> rollup.link_rows()[0]["utilisation"]
    '50.0%'
    """

    table_size: int
    n_channels: int
    link_slots: tuple[tuple[str, int], ...] = ()
    ni_slots: tuple[tuple[str, int], ...] = ()
    series: tuple[tuple[int, float], ...] = ()

    @classmethod
    def from_allocation(cls, allocation) -> "FabricRollup":
        """Fold one live :class:`~repro.core.allocation.Allocation`.

        Occupancy is derived from each channel's
        :meth:`~repro.core.allocation.ChannelAllocation.link_slots`
        union, so the rollup sees exactly what the link tables enforce.
        """
        table_size = allocation.table_size
        per_link: dict[tuple[str, str], set[int]] = {}
        per_ni: dict[str, int] = {}
        channels = allocation.channels
        for name in sorted(channels):
            ca = channels[name]
            for link, slots in ca.link_slots(table_size).items():
                per_link.setdefault(link, set()).update(slots)
            per_ni[ca.path.source] = (per_ni.get(ca.path.source, 0) +
                                      ca.n_slots)
        return cls(
            table_size=table_size,
            n_channels=len(channels),
            link_slots=tuple(sorted(
                (f"{src}->{dst}", len(slots))
                for (src, dst), slots in per_link.items())),
            ni_slots=tuple(sorted(per_ni.items())))

    @classmethod
    def from_timeline(cls, timeline, *, n_slots: int | None = None
                      ) -> "FabricRollup":
        """Fold a churn timeline into time-weighted occupancy.

        Each channel contributes its slots weighted by the fraction of
        the simulated window it was active; ``series`` samples the mean
        link utilisation of the instantaneously-active channel set at
        slot 0 and at every reconfiguration epoch boundary inside the
        window.
        """
        horizon = n_slots if n_slots is not None else \
            timeline.horizon_slots
        table_size = timeline.table_size
        intervals = timeline.channel_intervals()
        per_link: dict[tuple[str, str], float] = {}
        per_ni: dict[str, float] = {}
        for name in sorted(intervals):
            for start, end, ca in intervals[name]:
                active = max(0, min(end, horizon) - min(start, horizon))
                if not active or horizon <= 0:
                    continue
                weight = active / horizon
                for link, slots in ca.link_slots(table_size).items():
                    per_link[link] = (per_link.get(link, 0.0) +
                                      len(slots) * weight)
                per_ni[ca.path.source] = (
                    per_ni.get(ca.path.source, 0.0) +
                    ca.n_slots * weight)
        boundaries = [0] + [b for b in timeline.epoch_boundaries()
                            if 0 < b < horizon]
        series = []
        for boundary in boundaries:
            slots_live = sum(
                ca.n_slots * len(ca.path.links)
                for name, spans in intervals.items()
                for start, end, ca in spans
                if start <= boundary < end)
            n_links = max(1, len(timeline.topology.links))
            series.append((boundary, round(
                slots_live / (n_links * table_size), 6)))
        return cls(
            table_size=table_size,
            n_channels=len(intervals),
            link_slots=tuple(sorted(
                (f"{src}->{dst}", round(slots, 4))
                for (src, dst), slots in per_link.items())),
            ni_slots=tuple(sorted(
                (ni, round(slots, 4)) for ni, slots in per_ni.items())),
            series=tuple(series))

    def hotspots(self, k: int = MonitorSpec.top_k
                 ) -> tuple[tuple[str, float], ...]:
        """The ``k`` busiest links, most-occupied first (name-stable)."""
        return tuple(sorted(self.link_slots,
                            key=lambda item: (-item[1], item[0]))[:k])

    def link_rows(self, k: int = MonitorSpec.top_k
                  ) -> list[dict[str, object]]:
        """Top-K link heatmap rows for ``format_table``."""
        return [{"link": name, "slots": slots,
                 "utilisation": f"{slots / self.table_size:.1%}"}
                for name, slots in self.hotspots(k)]

    def ni_rows(self, k: int = MonitorSpec.top_k
                ) -> list[dict[str, object]]:
        """Top-K NI slot-occupancy rows for ``format_table``."""
        busiest = sorted(self.ni_slots,
                         key=lambda item: (-item[1], item[0]))[:k]
        return [{"ni": name, "slots": slots,
                 "occupancy": f"{slots / self.table_size:.1%}"}
                for name, slots in busiest]

    def to_record(self) -> dict[str, object]:
        """Canonical JSON-ready form."""
        record: dict[str, object] = {
            "table_size": self.table_size,
            "n_channels": self.n_channels,
            "links": {name: slots for name, slots in self.link_slots},
            "nis": {name: slots for name, slots in self.ni_slots},
        }
        if self.series:
            record["mean_utilisation_series"] = [
                {"slot": slot, "mean_utilisation": value}
                for slot, value in self.series]
        return record

    def to_json(self) -> str:
        """Canonical serialisation: sorted keys, two-space indent."""
        return json.dumps(self.to_record(), indent=2, sort_keys=True)

    def emit_counter_tracks(self, telemetry, *,
                            track: str = "fabric") -> None:
        """Counter tracks onto a hub's Perfetto/Chrome-trace export.

        The utilisation series becomes a ``ph: "C"`` counter track in
        :func:`repro.telemetry.export.chrome_trace`; per-link occupancy
        lands as a single-sample track per top-K hotspot so the heatmap
        is visible on the trace timeline too.
        """
        if self.series:
            telemetry.counter_track("fabric.mean_link_utilisation",
                                    self.series, track=track,
                                    unit="slot")
        for name, slots in self.hotspots():
            telemetry.counter_track(
                f"fabric.link_slots {name}", ((0, slots),),
                track=track, unit="slot")


# -- perf-regression sentinel ---------------------------------------------


@dataclass(frozen=True)
class BenchVerdict:
    """One benchmark trajectory's regression verdict.

    ``status`` is ``ok`` (current throughput within tolerance of the
    baseline), ``regressed`` (below it) or ``insufficient`` (fewer than
    two usable entries — nothing to compare against yet).
    """

    benchmark: str
    status: str
    n_entries: int
    baseline_ops_per_s: float | None = None
    current_ops_per_s: float | None = None
    ratio: float | None = None

    def to_record(self) -> dict[str, object]:
        """Canonical JSON-ready form."""
        record: dict[str, object] = {
            "benchmark": self.benchmark,
            "status": self.status,
            "n_entries": self.n_entries,
        }
        if self.baseline_ops_per_s is not None:
            record["baseline_ops_per_s"] = round(
                self.baseline_ops_per_s, 1)
        if self.current_ops_per_s is not None:
            record["current_ops_per_s"] = round(
                self.current_ops_per_s, 1)
        if self.ratio is not None:
            record["ratio"] = round(self.ratio, 4)
        return record


@dataclass(frozen=True)
class BenchCheckReport:
    """The sentinel's verdict over every recorded trajectory."""

    tolerance: float
    verdicts: tuple[BenchVerdict, ...] = ()

    @property
    def regressions(self) -> tuple[BenchVerdict, ...]:
        """The trajectories that regressed beyond the tolerance."""
        return tuple(v for v in self.verdicts if v.status == "regressed")

    @property
    def ok(self) -> bool:
        """True when nothing regressed (insufficient data passes)."""
        return not self.regressions

    def to_record(self) -> dict[str, object]:
        """Canonical JSON-ready form."""
        return {
            "tolerance": round(self.tolerance, 4),
            "ok": self.ok,
            "n_benchmarks": len(self.verdicts),
            "n_regressed": len(self.regressions),
            "verdicts": [v.to_record() for v in self.verdicts],
        }

    def to_json(self) -> str:
        """Canonical serialisation: sorted keys, two-space indent."""
        return json.dumps(self.to_record(), indent=2, sort_keys=True)

    def summary_rows(self) -> list[dict[str, object]]:
        """Per-benchmark table rows for ``format_table``."""
        return [{
            "benchmark": v.benchmark,
            "entries": v.n_entries,
            "baseline_ops_s": ("-" if v.baseline_ops_per_s is None
                               else round(v.baseline_ops_per_s, 1)),
            "current_ops_s": ("-" if v.current_ops_per_s is None
                              else round(v.current_ops_per_s, 1)),
            "ratio": "-" if v.ratio is None else round(v.ratio, 3),
            "status": v.status,
        } for v in self.verdicts]

    def summary(self) -> str:
        """One-line operator view of the sentinel outcome."""
        if self.ok:
            return (f"bench-check: {len(self.verdicts)} trajectories "
                    f"within {self.tolerance:.0%} of baseline")
        names = ", ".join(v.benchmark for v in self.regressions)
        return (f"bench-check: {len(self.regressions)} of "
                f"{len(self.verdicts)} trajectories regressed beyond "
                f"{self.tolerance:.0%}: {names}")


def _entry_rate(entry: dict) -> float | None:
    """One record entry's throughput (ops/s; fall back to 1/wall)."""
    ops = entry.get("ops_per_s")
    if ops is not None:
        return float(ops)
    wall = entry.get("wall_s")
    if wall:
        return 1.0 / float(wall)
    return None


def _median(values: list[float]) -> float:
    """Median without :mod:`statistics` (tiny lists, exact halves)."""
    data = sorted(values)
    mid = len(data) // 2
    if len(data) % 2:
        return data[mid]
    return (data[mid - 1] + data[mid]) / 2.0


def bench_check(records_dir, *, tolerance: float = 0.15
                ) -> BenchCheckReport:
    """Gate the recorded perf trajectories against robust baselines.

    Reads every ``BENCH_*.json`` under ``records_dir`` (each a
    time-ordered list of entries appended by the ``bench_record``
    fixture), takes the *newest* entry as the current measurement and
    the **median of all prior entries** as the baseline — the median is
    robust to a single outlier run poisoning the gate — and flags
    ``regressed`` when current ops/s falls more than ``tolerance``
    below baseline.  Trajectories with fewer than two usable entries
    are ``insufficient`` (reported, never failed: a fresh benchmark
    must be recordable before it can be gated).

    >>> import json, tempfile, pathlib
    >>> d = pathlib.Path(tempfile.mkdtemp())
    >>> _ = (d / "BENCH_demo.json").write_text(json.dumps(
    ...     [{"ops_per_s": 100.0}, {"ops_per_s": 104.0},
    ...      {"ops_per_s": 50.0}]))
    >>> report = bench_check(d, tolerance=0.15)
    >>> report.verdicts[0].status
    'regressed'
    >>> report.ok
    False
    """
    if not 0.0 < tolerance < 1.0:
        raise ValueError(
            f"tolerance must be in (0, 1), got {tolerance}")
    records_dir = Path(records_dir)
    verdicts = []
    for path in sorted(records_dir.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        entries = json.loads(path.read_text(encoding="utf-8"))
        rates = [rate for rate in map(_entry_rate, entries)
                 if rate is not None]
        if len(rates) < 2:
            verdicts.append(BenchVerdict(
                benchmark=name, status="insufficient",
                n_entries=len(entries),
                current_ops_per_s=rates[-1] if rates else None))
            continue
        baseline = _median(rates[:-1])
        current = rates[-1]
        ratio = current / baseline if baseline > 0 else 1.0
        status = "regressed" if ratio < (1 - tolerance) else "ok"
        verdicts.append(BenchVerdict(
            benchmark=name, status=status, n_entries=len(entries),
            baseline_ops_per_s=baseline, current_ops_per_s=current,
            ratio=ratio))
    return BenchCheckReport(tolerance=tolerance,
                            verdicts=tuple(verdicts))
