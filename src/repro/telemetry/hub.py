"""The telemetry hub: one capture's metrics, spans, and wall-clock meta.

A :class:`Telemetry` object is handed down through the layers — service,
allocator, simulator backends, campaign runner — and each layer asks it
for instruments once, then mutates them on the hot path.  The default
everywhere is the shared :data:`NULL_TELEMETRY` singleton, whose
instruments are no-ops and whose bookkeeping is skipped behind
``enabled`` checks, so uninstrumented runs pay (nearly) nothing.

Determinism contract: everything reachable from :meth:`Telemetry.to_jsonl`
except the final ``meta`` line is a pure function of the simulated event
stream.  Wall-clock readings — :meth:`phase` timers, ``wall=True``
metrics and spans — are quarantined in that ``meta`` line and in their
own Chrome-trace process, and never fold back into reports.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.telemetry import export as _export
from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricRegistry, NULL_COUNTER,
                                     NULL_GAUGE, NULL_HISTOGRAM)
from repro.telemetry.spans import CounterTrack, Span

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY", "coalesce"]


class Telemetry:
    """A live capture: metric registry + span list + wall-clock meta.

    >>> tel = Telemetry("doc")
    >>> tel.counter("hits", outcome="path").inc()
    >>> tel.span("s0", 2.0, 5.0, track="sessions", unit="ms")
    >>> tel.value("hits", outcome="path")
    1
    >>> [s.name for s in tel.spans]
    ['s0']
    """

    enabled = True

    def __init__(self, name: str = "repro"):
        self.name = name
        self.registry = MetricRegistry()
        self.spans: list[Span] = []
        self.counter_tracks: list[CounterTrack] = []
        self.meta: dict = {}
        self._wall_epoch = time.perf_counter()
        self._flush_callbacks: list = []

    # -- instruments ---------------------------------------------------

    def counter(self, name: str, *, wall: bool = False,
                **labels: str) -> Counter:
        """The counter for ``name`` + ``labels`` (shared on re-request)."""
        return self.registry.counter(name, wall=wall, **labels)

    def gauge(self, name: str, *, wall: bool = False,
              **labels: str) -> Gauge:
        """The gauge for ``name`` + ``labels`` (shared on re-request)."""
        return self.registry.gauge(name, wall=wall, **labels)

    def histogram(self, name: str, *, bounds: Iterable[float],
                  wall: bool = False, **labels: str) -> Histogram:
        """The fixed-bucket histogram for ``name`` + ``labels``."""
        return self.registry.histogram(name, bounds=bounds, wall=wall,
                                       **labels)

    # -- tracing -------------------------------------------------------

    def span(self, name: str, start: float, end: float, *,
             track: str = "main", unit: str = "ms", wall: bool = False,
             **args) -> None:
        """Record one traced interval (``end == start`` → instant)."""
        self.spans.append(Span(name, track, unit, start, end, wall,
                               args))

    def counter_track(self, name: str, points, *, track: str = "counters",
                      unit: str = "slot", wall: bool = False) -> None:
        """Record one sampled value series as a Perfetto counter track.

        ``points`` is an iterable of ``(timestamp, value)`` samples in
        the track's ``unit`` timebase (time-ordered); the Chrome-trace
        export renders them as ``ph: "C"`` counter events and the JSONL
        export as one ``counter_track`` line.

        >>> tel = Telemetry("doc")
        >>> tel.counter_track("util", [(0, 0.25), (64, 0.5)])
        >>> tel.counter_tracks[0].name
        'util'
        """
        self.counter_tracks.append(
            CounterTrack(name, track, unit, tuple(points), wall))

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a wall-clock phase; lands in ``meta`` + a wall span.

        >>> tel = Telemetry("doc")
        >>> with tel.phase("build"):
        ...     _ = sum(range(10))
        >>> tel.meta["phases"][0]["phase"]
        'build'
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            self.meta.setdefault("phases", []).append(
                {"phase": name, "wall_s": round(end - start, 6)})
            self.span(name, start - self._wall_epoch,
                      end - self._wall_epoch, track="phases", unit="s",
                      wall=True)

    # -- deferred aggregation ------------------------------------------

    def register_flush(self, callback) -> None:
        """Register a provider's deferred-aggregation hook.

        Instrumented hot paths may accumulate raw observations in plain
        Python structures (integer tallies, pending lists) instead of
        calling instruments per event; the callback folds them into the
        registry.  Every reader — :meth:`value`, :meth:`snapshot` and
        the exporters — flushes first, so consumers never see a stale
        registry while producers pay list-append prices.  Callbacks
        must be delta-based (safe to invoke repeatedly).
        """
        self._flush_callbacks.append(callback)

    def flush(self) -> None:
        """Run every registered deferred-aggregation callback."""
        for callback in self._flush_callbacks:
            callback()

    # -- reading back --------------------------------------------------

    def value(self, name: str, **labels: str):
        """Current value of a counter/gauge, or ``None`` if absent."""
        self.flush()
        items = tuple(sorted(labels.items()))
        for kind in ("counter", "gauge"):
            metric = self.registry._metrics.get((kind, name, items))
            if metric is not None:
                return metric.value
        return None

    def snapshot(self) -> list[dict]:
        """Every metric's canonical record, registry-sorted."""
        self.flush()
        return [m.to_record() for m in self.registry.metrics()]

    # -- exports -------------------------------------------------------

    def to_jsonl(self) -> str:
        """JSONL rendering (see :func:`repro.telemetry.export.to_jsonl`)."""
        self.flush()
        return _export.to_jsonl(self)

    def write_jsonl(self, path) -> None:
        """Write :meth:`to_jsonl` to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    def prometheus_text(self) -> str:
        """Prometheus text exposition of every metric."""
        self.flush()
        return _export.prometheus_text(self)

    def chrome_trace(self) -> dict:
        """Chrome trace-event JSON as a dict (Perfetto-loadable)."""
        self.flush()
        return _export.chrome_trace(self)

    def write_chrome_trace(self, path) -> None:
        """Write :meth:`chrome_trace` to ``path`` as JSON."""
        import json
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.chrome_trace(), fh, sort_keys=True)


class NullTelemetry(Telemetry):
    """The disabled hub: every instrument is a shared no-op singleton.

    Hot paths cache the instruments it returns and call them freely;
    nothing is ever recorded and no per-call allocation happens.

    >>> tel = NullTelemetry()
    >>> tel.counter("hits").inc(10**6)
    >>> tel.value("hits") is None
    True
    >>> tel.to_jsonl().count("\\n")
    2
    """

    enabled = False

    def __init__(self):
        super().__init__("null")

    def counter(self, name: str, *, wall: bool = False,
                **labels: str) -> Counter:
        """The shared no-op counter."""
        return NULL_COUNTER

    def gauge(self, name: str, *, wall: bool = False,
              **labels: str) -> Gauge:
        """The shared no-op gauge."""
        return NULL_GAUGE

    def histogram(self, name: str, *, bounds: Iterable[float],
                  wall: bool = False, **labels: str) -> Histogram:
        """The shared no-op histogram."""
        return NULL_HISTOGRAM

    def span(self, name: str, start: float, end: float, *,
             track: str = "main", unit: str = "ms", wall: bool = False,
             **args) -> None:
        """Discard the span."""

    def counter_track(self, name: str, points, *, track: str = "counters",
                      unit: str = "slot", wall: bool = False) -> None:
        """Discard the counter series."""

    def register_flush(self, callback) -> None:
        """Discard the callback (nothing will ever read this hub)."""

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Run the block untimed."""
        yield


NULL_TELEMETRY = NullTelemetry()


def coalesce(telemetry: Telemetry | None) -> Telemetry:
    """``telemetry`` if given, else the shared :data:`NULL_TELEMETRY`.

    The one-liner every instrumented constructor uses to normalise its
    optional ``telemetry=None`` argument.

    >>> coalesce(None) is NULL_TELEMETRY
    True
    """
    return telemetry if telemetry is not None else NULL_TELEMETRY
