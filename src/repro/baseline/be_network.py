"""Best-effort wormhole network: the Æthereal GS+BE comparison point.

Section VII of the paper re-runs the 200-connection use case with the
same IP mapping and the same paths, but with every connection demoted
from guaranteed service to best effort on an Æthereal-style network.
This module provides that network: input-buffered wormhole routers with

* **source routing** over exactly the paths the allocator chose,
* **round-robin arbitration** per output port among requesting inputs,
* **link-level flow control** (a flit moves only when the downstream
  input buffer has space — credits in hardware, an occupancy check in
  the model), and
* **wormhole packet locking**: once a packet's head flit wins an output,
  the output is held until the tail passes.

The simulator advances in flit cycles ("ticks" of ``flit_size`` word
cycles), the natural time unit for flit-granularity switching.  Physical
resource constraints are enforced exactly: a flit moves at most one hop
per tick, each input buffer feeds at most one output per tick, each
output forwards at most one flit per tick, and each NI injects at most
one flit per tick without interleaving packets.

What this network deliberately lacks — and what the experiment shows it
costs — is isolation: latency now depends on every other application's
traffic, so composability is lost and worst-case latency grows with
congestion even though *average* latency often beats TDM (no slot
waiting when the network is idle).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.baseline.arbitration import RoundRobinArbiter
from repro.core.configuration import NocConfiguration
from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.words import WordFormat
from repro.simulation import compiled as _compiled
from repro.simulation.monitors import (DeliveryRecord, InjectionRecord,
                                       StatsCollector, latency_digest)
from repro.simulation.traffic import MessageEvent, TrafficPattern
from repro.topology.graph import NodeKind, Topology

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.core.timeline import ReconfigurationTimeline

__all__ = ["BePacket", "BeNetworkSimulator", "BeSimResult"]


@dataclass
class BePacket:
    """One wormhole packet in flight.

    A message larger than ``max_packet_flits`` is split into several
    packets; only the final one (``is_final``) records the message's
    delivery.
    """

    channel: str
    message_id: int
    created_cycle: int
    out_ports: tuple[int, ...]
    n_flits: int
    payload_bytes: int
    is_final: bool = True
    hop: int = 0            # routing progress of the *head* flit
    flits_sent: int = 0     # injection progress at the source NI


@dataclass
class _BufferedFlit:
    packet: BePacket
    flit_index: int
    arrived_tick: int


class _InputBuffer:
    """A router input queue with link-level flow control."""

    __slots__ = ("name", "capacity", "flits")

    def __init__(self, name: str, capacity: int):
        self.name = name
        self.capacity = capacity
        self.flits: deque[_BufferedFlit] = deque()

    def has_space(self) -> bool:
        return len(self.flits) < self.capacity

    def push(self, item: _BufferedFlit) -> None:
        if not self.has_space():
            raise SimulationError(
                f"BE buffer {self.name!r} overflow: link-level flow "
                "control violated")
        self.flits.append(item)

    def head(self) -> _BufferedFlit | None:
        return self.flits[0] if self.flits else None

    def pop(self) -> _BufferedFlit:
        return self.flits.popleft()

    def __len__(self) -> int:
        return len(self.flits)


@dataclass
class _BeRouter:
    name: str
    inputs: list[_InputBuffer]
    arbiters: list[RoundRobinArbiter]
    locks: list[int | None] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.locks:
            self.locks = [None] * len(self.arbiters)


@dataclass
class _SourceQueue:
    channel: str
    packets: deque[BePacket] = field(default_factory=deque)


@dataclass
class _NiState:
    queues: list[_SourceQueue]
    arbiter: RoundRobinArbiter
    active_queue: int | None = None  # packet in progress (no interleaving)


@dataclass
class BeSimResult:
    """Measurements from a best-effort run."""

    stats: StatsCollector
    simulated_ticks: int
    frequency_hz: float
    fmt: WordFormat

    @property
    def simulated_ns(self) -> float:
        """Simulated wall-clock time."""
        return (self.simulated_ticks * self.fmt.flit_size /
                self.frequency_hz * 1e9)

    def summary(self) -> str:
        """One-line latency digest for logs and the REPL."""
        return latency_digest("be", self.stats, self.simulated_ticks,
                              "ticks", self.frequency_hz)

    def __repr__(self) -> str:
        return f"BeSimResult({self.summary()})"


class BeNetworkSimulator:
    """Flit-granularity wormhole simulator over an allocated configuration.

    Reuses the configuration's topology, mapping and *paths* but ignores
    its slot tables (that is the experiment: same routes, no TDM).
    ``frequency_hz`` may override the configuration's frequency for the
    Section VII frequency sweep — offered traffic is specified in cycles,
    so the caller rebuilds patterns per frequency from byte rates.
    """

    def __init__(self, config: NocConfiguration, *,
                 frequency_hz: float | None = None,
                 buffer_flits: int = 4,
                 max_packet_flits: int = 4):
        if buffer_flits < 1:
            raise ConfigurationError("buffer_flits must be >= 1")
        if max_packet_flits < 1:
            raise ConfigurationError("max_packet_flits must be >= 1")
        self.config = config
        self.fmt = config.fmt
        self.frequency_hz = frequency_hz or config.frequency_hz
        self.buffer_flits = buffer_flits
        self.max_packet_flits = max_packet_flits
        self._patterns: dict[str, TrafficPattern] = {}
        self._topo: Topology = config.topology
        self._router_order: list[str] = list(self._topo.routers)

    def set_traffic(self, channel: str, pattern: TrafficPattern) -> None:
        """Attach a traffic pattern to one channel."""
        if channel not in self.config.allocation.channels:
            raise ConfigurationError(
                f"channel {channel!r} is not part of the configuration")
        self._patterns[channel] = pattern

    # -- main loop --------------------------------------------------------------

    def run(self, n_ticks: int) -> BeSimResult:
        """Simulate ``n_ticks`` flit cycles."""
        if n_ticks <= 0:
            raise ConfigurationError(
                f"n_ticks must be positive, got {n_ticks}")
        sources = {name: ca.path.source for name, ca in
                   sorted(self.config.allocation.channels.items())}
        return self._run_loop(n_ticks, self._build_arrivals(n_ticks),
                              sources)

    def run_timeline(self, timeline: "ReconfigurationTimeline",
                     n_ticks: int | None = None, *,
                     traffic: dict[str, TrafficPattern] | None = None
                     ) -> BeSimResult:
        """Run a reconfiguration timeline on the best-effort network.

        Without TDM there is no schedule to recompile: a transition only
        changes *who offers traffic*.  Each channel's pattern (relative
        to its start tick) is offered during its active intervals and
        silenced outside them; packets already queued when a session
        stops drain naturally.  Because wormhole arbitration shares
        buffers and output ports globally, a survivor's timing depends
        on that churn — the divergence the dynamic composability check
        exposes, and exactly what the TDM network is engineered to
        exclude.
        """
        if timeline.topology is not self._topo:
            raise ConfigurationError(
                "timeline was recorded on a different topology object")
        if timeline.fmt != self.fmt:
            raise ConfigurationError(
                "timeline word format differs from the configuration's")
        if n_ticks is None:
            n_ticks = timeline.horizon_slots
        if not 0 < n_ticks <= timeline.horizon_slots:
            raise ConfigurationError(
                f"n_ticks must be in (0, {timeline.horizon_slots}], "
                f"got {n_ticks}")
        patterns = dict(traffic or {})
        unknown = sorted(set(patterns) - set(timeline.channel_names))
        if unknown:
            raise ConfigurationError(
                f"traffic names channels outside the timeline: {unknown}")
        fmt = self.fmt
        # With numpy present, each pattern's arrival stream is compiled
        # once at the full horizon into the shared flat representation
        # (:func:`repro.simulation.compiled.pattern_slice`) and each
        # incarnation takes a prefix slice — the same tables the flit
        # executor runs on, instead of re-expanding ``events()`` per
        # interval.
        use_tables = _compiled.numpy_available()
        table_cache: dict = {}
        full_horizon_cycles = n_ticks * fmt.flit_size
        arrivals: dict[str, deque[tuple[int, BePacket]]] = {}
        sources: dict[str, str] = {}
        for name, intervals in timeline.channel_intervals().items():
            sources[name] = intervals[0][2].path.source
            queue: deque[tuple[int, BePacket]] = deque()
            pattern = patterns.get(name)
            for start, stop, ca in intervals:
                if ca.path.source != sources[name]:
                    raise ConfigurationError(
                        f"channel {name!r} restarts from a different "
                        "source NI; the baseline keeps one queue per "
                        "channel")
                end = min(stop, n_ticks)
                span = end - start
                if pattern is None or span <= 0:
                    continue
                base_cycle = start * fmt.flit_size
                if use_tables:
                    table, count = _compiled.pattern_slice(
                        table_cache, pattern, full_horizon_cycles,
                        span * fmt.flit_size, fmt)
                    ticks = start + table.ready[:count]
                    # An arrival mid-way through the last active slot
                    # only becomes injectable at the stop boundary
                    # itself — by then the session is gone (the
                    # flit-level simulator drops the same arrival with
                    # the schedule row).
                    keep = ticks < end
                    for tick, cyc, words, mid in zip(
                            ticks[keep].tolist(),
                            table.cycles[:count][keep].tolist(),
                            table.words[:count][keep].tolist(),
                            table.mids[:count][keep].tolist()):
                        shifted = MessageEvent(base_cycle + cyc, words,
                                               mid)
                        queue.extend(
                            (tick, p) for p in self._packetise(
                                name, ca.path.out_ports, shifted))
                    continue
                for event in pattern.events(span * fmt.flit_size):
                    tick = start + -(-event.cycle // fmt.flit_size)
                    if tick >= end:
                        continue
                    shifted = MessageEvent(base_cycle + event.cycle,
                                           event.words, event.message_id)
                    queue.extend(
                        (tick, p) for p in self._packetise(
                            name, ca.path.out_ports, shifted))
            arrivals[name] = queue
        return self._run_loop(n_ticks, arrivals, sources)

    def _run_loop(self, n_ticks: int,
                  arrivals: dict[str, deque[tuple[int, BePacket]]],
                  sources: dict[str, str]) -> BeSimResult:
        """The tick loop over prebuilt arrival queues.

        ``sources`` maps each channel to its injecting NI, in the
        deterministic (name-sorted) order queues are arbitrated in.
        """
        period_ps = round(1e12 / self.frequency_hz)
        stats = StatsCollector()
        routers = self._build_routers()
        nis: dict[str, _NiState] = {}
        channel_queue: dict[str, _SourceQueue] = {}
        for name, source in sorted(sources.items()):
            state = nis.setdefault(source,
                                   _NiState([], RoundRobinArbiter(1)))
            queue = _SourceQueue(channel=name)
            state.queues.append(queue)
            channel_queue[name] = queue
        for state in nis.values():
            state.arbiter = RoundRobinArbiter(len(state.queues))

        for tick in range(n_ticks):
            for channel, events in arrivals.items():
                while events and events[0][0] <= tick:
                    channel_queue[channel].packets.append(
                        events.popleft()[1])
            for router_name in self._router_order:
                self._route_tick(routers, router_name, tick, period_ps,
                                 stats)
            for ni in sorted(nis):
                self._inject_tick(routers, ni, nis[ni], tick, period_ps,
                                  stats)
        return BeSimResult(stats=stats, simulated_ticks=n_ticks,
                           frequency_hz=self.frequency_hz, fmt=self.fmt)

    # -- construction -------------------------------------------------------------

    def _build_routers(self) -> dict[str, _BeRouter]:
        routers: dict[str, _BeRouter] = {}
        for name in self._router_order:
            graph = self._topo.graph
            n_in = graph.in_degree(name)
            n_out = graph.out_degree(name)
            routers[name] = _BeRouter(
                name=name,
                inputs=[_InputBuffer(f"{name}.in{i}", self.buffer_flits)
                        for i in range(n_in)],
                arbiters=[RoundRobinArbiter(n_in) for _ in range(n_out)])
        return routers

    def _build_arrivals(self, n_ticks: int
                        ) -> dict[str, deque[tuple[int, BePacket]]]:
        fmt = self.fmt
        horizon_cycles = n_ticks * fmt.flit_size
        arrivals: dict[str, deque[tuple[int, BePacket]]] = {}
        for name, ca in sorted(self.config.allocation.channels.items()):
            pattern = self._patterns.get(name)
            queue: deque[tuple[int, BePacket]] = deque()
            if pattern is not None:
                for event in pattern.events(horizon_cycles):
                    tick = -(-event.cycle // fmt.flit_size)
                    queue.extend(
                        (tick, p) for p in self._packetise(
                            name, ca.path.out_ports, event))
            arrivals[name] = queue
        return arrivals

    def _packetise(self, channel: str, out_ports: tuple[int, ...],
                   event) -> list[BePacket]:
        """Split one message into wormhole packets."""
        fmt = self.fmt
        total_flits = max(1, -(-event.words // fmt.payload_words_per_flit))
        message_bytes = event.words * fmt.bytes_per_word
        packets: list[BePacket] = []
        remaining = total_flits
        while remaining > 0:
            flits = min(remaining, self.max_packet_flits)
            remaining -= flits
            final = remaining == 0
            # The delivery record (written at the final packet's tail)
            # reports the whole message's payload, matching the
            # flit-level simulator's accounting.
            packets.append(BePacket(
                channel=channel, message_id=event.message_id,
                created_cycle=event.cycle, out_ports=out_ports,
                n_flits=flits,
                payload_bytes=message_bytes if final else 0,
                is_final=final))
        return packets

    # -- per-tick behaviour ----------------------------------------------------------

    def _route_tick(self, routers: dict[str, _BeRouter], router_name: str,
                    tick: int, period_ps: int,
                    stats: StatsCollector) -> None:
        router = routers[router_name]
        consumed_inputs: set[int] = set()
        for out_port in range(len(router.arbiters)):
            locked = router.locks[out_port]
            if locked is not None:
                if locked in consumed_inputs:
                    continue
                if self._try_advance(routers, router, router_name,
                                     out_port, locked, tick, period_ps,
                                     stats, expect_body=True):
                    consumed_inputs.add(locked)
                continue
            requests = []
            for index, buf in enumerate(router.inputs):
                head = buf.head()
                requests.append(
                    index not in consumed_inputs and
                    head is not None and head.flit_index == 0 and
                    head.arrived_tick < tick and
                    head.packet.out_ports[head.packet.hop] == out_port)
            winner = router.arbiters[out_port].grant(requests)
            if winner is None:
                continue
            if self._try_advance(routers, router, router_name, out_port,
                                 winner, tick, period_ps, stats,
                                 expect_body=False):
                consumed_inputs.add(winner)

    def _try_advance(self, routers, router, router_name, out_port,
                     input_index, tick, period_ps, stats, *,
                     expect_body: bool) -> bool:
        """Forward the head flit of one input through ``out_port``."""
        buf = router.inputs[input_index]
        head = buf.head()
        if head is None or head.arrived_tick >= tick:
            return False
        if expect_body and head.flit_index == 0:
            # The previous packet's tail has passed; release a stale lock.
            router.locks[out_port] = None
            return False
        neighbour = self._topo.neighbor_on_port(router_name, out_port)
        if self._topo.kind(neighbour) is NodeKind.NI:
            item = buf.pop()
            self._deliver_if_tail(item, tick, period_ps, stats)
        else:
            dst_router = routers[neighbour]
            dst_port = self._topo.link(router_name, neighbour).dst_port
            dst_buf = dst_router.inputs[dst_port]
            if not dst_buf.has_space():
                return False
            item = buf.pop()
            if item.flit_index == 0:
                # The head advances a hop: the next router consumes the
                # next entry of the source route.
                item.packet.hop += 1
            dst_buf.push(_BufferedFlit(item.packet, item.flit_index, tick))
        # Wormhole lock: hold the output until the tail passes.
        is_tail = item.flit_index == item.packet.n_flits - 1
        router.locks[out_port] = None if is_tail else input_index
        return True

    def _deliver_if_tail(self, item: _BufferedFlit, tick: int,
                         period_ps: int, stats: StatsCollector) -> None:
        packet = item.packet
        if item.flit_index != packet.n_flits - 1 or not packet.is_final:
            return
        delivered_cycle = (tick + 1) * self.fmt.flit_size
        stats.record_delivery(DeliveryRecord(
            channel=packet.channel, message_id=packet.message_id,
            created_cycle=packet.created_cycle,
            created_time_ps=packet.created_cycle * period_ps,
            delivered_cycle=delivered_cycle,
            delivered_time_ps=delivered_cycle * period_ps,
            payload_bytes=packet.payload_bytes))

    def _inject_tick(self, routers, ni: str, state: _NiState, tick: int,
                     period_ps: int, stats: StatsCollector) -> None:
        router_name = self._topo.attached_router(ni)
        dst_port = self._topo.link(ni, router_name).dst_port
        buf = routers[router_name].inputs[dst_port]
        if not buf.has_space():
            return
        if state.active_queue is None:
            requests = [bool(q.packets) for q in state.queues]
            winner = state.arbiter.grant(requests)
            if winner is None:
                return
            state.active_queue = winner
        queue = state.queues[state.active_queue]
        packet = queue.packets[0]
        buf.push(_BufferedFlit(packet, packet.flits_sent, tick))
        if packet.flits_sent == 0:
            stats.record_injection(InjectionRecord(
                channel=packet.channel, message_id=packet.message_id,
                sequence=0, slot_index=tick,
                cycle=tick * self.fmt.flit_size,
                time_ps=tick * self.fmt.flit_size * period_ps))
        packet.flits_sent += 1
        if packet.flits_sent == packet.n_flits:
            queue.packets.popleft()
            state.active_queue = None
