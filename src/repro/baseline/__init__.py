"""Best-effort Æthereal-style baseline used by the Section VII comparison."""

from repro.baseline.arbitration import (FixedPriorityArbiter,
                                        RoundRobinArbiter)
from repro.baseline.be_network import (BeNetworkSimulator, BePacket,
                                       BeSimResult)

__all__ = ["RoundRobinArbiter", "FixedPriorityArbiter",
           "BeNetworkSimulator", "BePacket", "BeSimResult"]
