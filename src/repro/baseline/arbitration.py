"""Arbiters for the best-effort baseline router.

aelite needs no arbiter at all — that is its point.  The Æthereal
combined GS+BE router the paper compares against arbitrates BE packets
per output port with round-robin among requesting inputs; this module
provides that (and a fixed-priority variant used in tests as a fairness
foil).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.exceptions import ConfigurationError

__all__ = ["RoundRobinArbiter", "FixedPriorityArbiter"]


class RoundRobinArbiter:
    """Classic rotating-priority arbiter.

    :meth:`grant` picks the first requesting index at or after the
    rotating pointer; the pointer then moves past the winner, giving
    every requester a bounded wait of one full rotation.
    """

    def __init__(self, n_requesters: int):
        if n_requesters < 1:
            raise ConfigurationError(
                f"arbiter needs >= 1 requester, got {n_requesters}")
        self.n = n_requesters
        self._pointer = 0

    def grant(self, requests: Sequence[bool]) -> int | None:
        """Return the granted index, or ``None`` when nobody requests."""
        if len(requests) != self.n:
            raise ConfigurationError(
                f"expected {self.n} request lines, got {len(requests)}")
        for offset in range(self.n):
            index = (self._pointer + offset) % self.n
            if requests[index]:
                self._pointer = (index + 1) % self.n
                return index
        return None

    def reset(self) -> None:
        """Return the pointer to its initial position."""
        self._pointer = 0


class FixedPriorityArbiter:
    """Always grants the lowest requesting index (starvation-prone)."""

    def __init__(self, n_requesters: int):
        if n_requesters < 1:
            raise ConfigurationError(
                f"arbiter needs >= 1 requester, got {n_requesters}")
        self.n = n_requesters

    def grant(self, requests: Sequence[bool]) -> int | None:
        """Return the highest-priority (lowest index) requester."""
        if len(requests) != self.n:
            raise ConfigurationError(
                f"expected {self.n} request lines, got {len(requests)}")
        for index, req in enumerate(requests):
            if req:
                return index
        return None
