"""Command-line entry point: figures, tables, campaigns, and the service.

Usage::

    python -m repro fig5          # Figure 5: area vs target frequency
    python -m repro fig6a         # Figure 6(a): area/fmax vs arity
    python -m repro fig6b         # Figure 6(b): area/fmax vs data width
    python -m repro costs         # FIFO / mesochronous / related work
    python -m repro usecase       # Section VII GS run + isolation
    python -m repro sweep         # Section VII best-effort sweep
    python -m repro ablations     # design-choice ablations
    python -m repro all           # everything above
    python -m repro campaign ...  # scenario-campaign engine (below)
    python -m repro serve ...     # online admission service (below)
    python -m repro replay ...    # dynamic composability replay (below)
    python -m repro design ...    # design-space explorer (below)
    python -m repro faults ...    # fault injection + survivability (below)
    python -m repro monitor ...   # conformance watchdog + heatmaps (below)
    python -m repro bench-check   # perf-regression sentinel (below)

Running campaigns
-----------------

The ``campaign`` subcommand drives the :mod:`repro.campaign` engine: a
declarative grid of scenarios (topology × traffic mix × backend/clocking
scheme × seed grid, including service-churn scenarios) fanned out over
worker processes, aggregated into one deterministic JSON report::

    python -m repro campaign --demo               # built-in demo grid
    python -m repro campaign --demo --workers 4   # wider pool
    python -m repro campaign --demo --output report.json
    python -m repro campaign --demo --list        # show the grid, don't run
    python -m repro campaign --preset churn_campaign   # any preset
    python -m repro campaign --preset design_campaign --workers 4
    python -m repro campaign --demo --workdir wd       # checkpointed
    python -m repro campaign --demo --resume wd        # after a kill
    python -m repro campaign --preset synthetic_campaign --workdir wd --stream

Serial and parallel executions produce byte-identical reports; ``--demo``
verifies that on every invocation by running both and comparing.
``--preset`` runs any registered preset grid (churn, replay, design,
faults, synthetic, micro, demo); a bad name lists what is available.  Use
``repro.campaign.scenario_grid`` from Python to build custom grids.
With ``--workdir`` completed runs checkpoint into per-shard journals;
``--resume`` skips them after a kill and still produces the
byte-identical report.  ``--stream`` keeps memory flat on huge grids.

Dimensioning a network
----------------------

The ``design`` subcommand runs the :mod:`repro.design` explorer: take a
workload, search topology family × extent × NIs-per-router × slot-table
size × word format × mapping, and emit the Pareto front over silicon
area, operating frequency and worst-case guarantee slack::

    python -m repro design --demo                 # Section VII demo
    python -m repro design --demo --workers 4     # wider pool
    python -m repro design --demo --output report.json

The demo dimensions the Section VII workload (demo scale) over an
18-candidate space capped at the paper's 500 MHz clock and must
rediscover the paper's hand-picked point: the minimum-area feasible
candidate is the 2x2 concentrated mesh at or below 500 MHz.  The whole
exploration runs twice and the canonical JSON reports must be
byte-identical.

Running the admission service
-----------------------------

The ``serve`` subcommand drives the :mod:`repro.service` control plane
over a seeded churn trace on the Section VII mesh::

    python -m repro serve --demo                  # 2000-event trace
    python -m repro serve --demo --events 200     # shorter trace (CI)
    python -m repro serve --demo --output report.json

The demo replays the identical trace twice and verifies the canonical
JSON reports are byte-identical; every accepted session's record carries
its analytical latency/throughput bound quote, and the composability
invariant is re-checked after every transition.

Replaying a churn timeline
--------------------------

The ``replay`` subcommand closes the control-plane → simulation loop: it
records a churn trace as a :class:`~repro.core.timeline.
ReconfigurationTimeline` and *executes* it at cycle level::

    python -m repro replay --demo                 # record, replay, verify
    python -m repro replay --demo --events 120 --slots 1200   # CI smoke
    python -m repro replay --demo --output report.json

On the flit-level TDM backend every surviving session's trace must be
bit-identical to its solo reference across all reconfiguration epochs
(the paper's composability-under-change claim, checked cycle by cycle);
on the best-effort baseline the same timeline demonstrably diverges.
The flow runs twice and the two canonical JSON reports must match byte
for byte.

Injecting faults
----------------

The ``faults`` subcommand degrades a live network and measures what
survives: a seeded fault schedule (link and router failures with
repairs) is merged into a churn trace, fault-hit sessions are
force-released and re-admitted over surviving routes, and the degraded
run is folded against the fault-free baseline of the identical churn::

    python -m repro faults --demo                 # churn + faults
    python -m repro faults --demo --events 120 --slots 1200  # CI smoke
    python -m repro faults --demo --output report.json

The survivability report carries admission retention, guarantee
retention and session survival; the churn+fault timeline replays on the
flit-level backend and every fault-survivor's trace must be
bit-identical to its solo reference.  The flow runs twice and the two
canonical JSON reports must match byte for byte.

Monitoring guarantees
---------------------

The ``monitor`` subcommand runs the :mod:`repro.telemetry.monitor`
analysis tier over the Section VII use case: every channel's observed
worst-case service latency and delivered throughput are classified
against the quoted analytical bounds (``within_bounds`` / ``tight`` /
``violated``), and the fabric's per-link / per-NI slot occupancy is
folded into hotspot heatmaps::

    python -m repro monitor --demo                # watchdog + heatmaps
    python -m repro monitor --demo --slots 1500 --top 5
    python -m repro monitor --demo --output conformance.json

On the GS backend zero channels may classify ``violated``; the
conformance report is byte-deterministic and the demo verifies that by
running the flow twice.  ``serve``, ``replay``, ``faults`` and
``campaign`` accept ``--monitor`` (and ``--monitor-output PATH``,
``--monitor-slack F``) to arm the same watchdog on their own flows; the
canonical demo reports stay byte-identical with the monitor on or off.

The ``bench-check`` subcommand is the perf-regression sentinel: it
reads the committed ``benchmarks/records/BENCH_*.json`` trajectories,
fits a robust baseline (median of prior entries) per benchmark, and
exits non-zero when the newest entry's throughput regressed more than
the tolerance::

    python -m repro bench-check                   # default 15% tolerance
    python -m repro bench-check --tolerance 0.15 --records benchmarks/records

Observability
-------------

Every demo subcommand accepts ``--telemetry PATH`` (deterministic
metric/span JSONL from :mod:`repro.telemetry`) and ``--trace PATH``
(Chrome trace-event JSON, loadable in Perfetto / ``chrome://tracing``),
and prints a wall-clock per-phase timing table; the canonical reports
stay byte-identical with and without instrumentation::

    python -m repro serve --demo --telemetry out.jsonl --trace out.trace.json
    python -m repro --profile campaign --demo    # cProfile the whole run

``--profile`` (before the subcommand) wraps the invocation in
:func:`repro.telemetry.run_profiled` and prints the cProfile hot spots
to stderr.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.report import format_table


def _demo_telemetry(name: str):
    """One real telemetry hub per CLI invocation (cold path)."""
    from repro.telemetry.hub import Telemetry
    return Telemetry(name=name)


def _finish_telemetry(tel, args: argparse.Namespace) -> None:
    """Print the phase table; write JSONL/trace files when asked to."""
    phases = tel.meta.get("phases", [])
    if phases:
        print()
        print(format_table(
            [{"phase": p["phase"], "wall_s": p["wall_s"]}
             for p in phases],
            title="phase timing [wall-clock; excluded from the "
                  "canonical report]"))
    if getattr(args, "telemetry", None):
        tel.write_jsonl(args.telemetry)
        print(f"telemetry JSONL written to {args.telemetry}")
    if getattr(args, "trace", None):
        tel.write_chrome_trace(args.trace)
        print(f"Chrome trace (load in Perfetto or chrome://tracing) "
              f"written to {args.trace}")


def _print_campaign_meta(meta: dict) -> None:
    """The runner's wall-clock execution report (never serialised)."""
    stages = meta.get("stages")
    if stages:
        print()
        print(format_table(
            [{"stage": stage, "wall_s": wall}
             for stage, wall in stages.items()],
            title="campaign stages [wall-clock; excluded from the "
                  "canonical report]"))
    workers = meta.get("worker_table") or {}
    if len(workers) > 1:
        print(format_table(
            [{"pid": pid, "runs": entry["runs"],
              "wall_s": entry["wall_s"]}
             for pid, entry in workers.items()],
            title="per-worker runs"))
    stragglers = meta.get("stragglers") or []
    if stragglers:
        worst = max(stragglers, key=lambda s: s["wall_s"])
        print(f"stragglers: {len(stragglers)} run(s) took >= 3x the "
              f"median ({meta.get('median_run_wall_s', 0.0):.3f}s); "
              f"worst: {worst['run_id']} at {worst['wall_s']:.3f}s")
    shards = meta.get("shards") or {}
    if shards:
        print(f"shards: {shards.get('completed', 0)}/"
              f"{shards.get('n_shards', 0)} completed")
    resume = meta.get("resume") or {}
    if resume.get("enabled"):
        print(f"resume: {resume.get('n_resumed', 0)} run(s) restored "
              "from the workdir journals")
    dispatch = meta.get("dispatch") or {}
    if dispatch:
        print(f"dispatch: {dispatch.get('batches', 0)} batches, "
              f"{dispatch.get('steals', 0)} steals, "
              f"{dispatch.get('duplicates', 0)} duplicate runs, "
              f"{dispatch.get('worker_deaths', 0)} worker deaths")


def _fig5() -> None:
    from repro.experiments.figures import figure5_rows
    print(format_table(figure5_rows(),
                       title="Figure 5 — area vs target frequency "
                             "(arity-5, 32-bit, 90 nm)"))


def _fig6a() -> None:
    from repro.experiments.figures import figure6a_rows
    print(format_table(figure6a_rows(),
                       title="Figure 6(a) — area & fmax vs arity"))


def _fig6b() -> None:
    from repro.experiments.figures import figure6b_rows
    print(format_table(figure6b_rows(),
                       title="Figure 6(b) — area & fmax vs data width"))


def _costs() -> None:
    from repro.experiments.area_comparison import (fifo_rows,
                                                   headline_ratio_rows,
                                                   mesochronous_rows,
                                                   related_work_rows,
                                                   throughput_rows)
    print(format_table(fifo_rows(), title="Bi-synchronous FIFO cost"))
    print()
    print(format_table(mesochronous_rows(),
                       title="Mesochronous arity-5 router"))
    print()
    print(format_table(related_work_rows(),
                       title="Related-work comparison"))
    print()
    print(format_table(headline_ratio_rows(),
                       title="aelite vs AEthereal GS+BE"))
    print()
    print(format_table(throughput_rows(),
                       title="Raw throughput per area"))


def _usecase() -> None:
    from repro.experiments.section7 import (composability_rows,
                                            section7_setup,
                                            usecase_gs_rows)
    _, config = section7_setup()
    print(format_table(usecase_gs_rows(config),
                       title="Section VII — aelite GS @ 500 MHz"))
    print()
    print(format_table(composability_rows(config),
                       title="Section VII — application isolation"))


def _sweep() -> None:
    from repro.experiments.section7 import (be_crossing_mhz, be_sweep_rows,
                                            cost_rows, section7_setup)
    _, config = section7_setup()
    rows = be_sweep_rows(config)
    print(format_table(rows, title="Section VII — best-effort sweep"))
    crossing = be_crossing_mhz(rows)
    if crossing is None:
        print("\nbest effort never met all requirements in the sweep")
    else:
        print(f"\nbest effort needs {crossing:.0f} MHz "
              "(aelite: 500 MHz)")
    print()
    print(format_table(cost_rows(config, be_required_mhz=crossing or
                                 1000.0),
                       title="Router-network silicon cost"))


def _ablations() -> None:
    from repro.experiments.ablations import (backend_rows,
                                             fifo_depth_rows,
                                             ordering_rows,
                                             pipeline_stage_rows,
                                             table_size_rows)
    print(format_table(table_size_rows(),
                       title="Ablation — slot-table size"))
    print()
    print(format_table(fifo_depth_rows(),
                       title="Ablation — link-stage FIFO depth"))
    print()
    print(format_table(ordering_rows(),
                       title="Ablation — allocation order"))
    print()
    print(format_table(pipeline_stage_rows(),
                       title="Ablation — link pipeline stages"))
    print()
    print(format_table(backend_rows(),
                       title="Ablation — simulation backend / clocking"))


def _campaign(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignRunner, demo_campaign, preset_by_name
    from repro.core.exceptions import ConfigurationError
    if args.demo and args.preset:
        print("campaign: --demo and --preset are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.demo:
        spec = demo_campaign()
    elif args.preset:
        try:
            spec = preset_by_name(args.preset)
        except ConfigurationError as exc:
            print(f"campaign: {exc}", file=sys.stderr)
            return 2
    else:
        print("campaign: pick --demo or --preset <name>; build custom "
              "grids with repro.campaign in Python", file=sys.stderr)
        return 2
    workdir = args.resume or args.workdir
    if args.stream and workdir is None:
        print("campaign: --stream needs --workdir (the shard journals "
              "are the record store the report streams from)",
              file=sys.stderr)
        return 2
    runs = spec.expand()
    if args.list:
        print(format_table(
            [{"run": r.run_id,
              "backend": (r.scenario.backend
                          if r.scenario.mode in ("simulate", "replay")
                          else r.scenario.mode),
              "mode": r.scenario.mode,
              "topology": r.scenario.topology.label,
              "traffic": (r.scenario.traffic.pattern
                          if r.scenario.mode == "simulate"
                          else (r.scenario.churn.label
                                if r.scenario.churn else "-")),
              "n_slots": r.scenario.n_slots} for r in runs],
            title=f"campaign {spec.name!r} — {len(runs)} runs"))
        return 0
    workers = max(1, args.workers)
    tel = _demo_telemetry("campaign")
    try:
        with tel.phase("campaign"):
            result = CampaignRunner(
                spec, workers=workers, telemetry=tel, workdir=workdir,
                resume=args.resume is not None,
                keep_records=not args.stream,
                shard_size=args.shard_size).run()
    except ConfigurationError as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2
    print(format_table(result.summary_rows(),
                       title=f"campaign {spec.name!r} — {result.n_runs} "
                             f"runs on {workers} workers "
                             f"({result.n_failed} failed)"))
    print("\n" + result.summary())
    agree = True
    if workers > 1 and args.demo and workdir is None:
        with tel.phase("serial-verify"):
            serial = CampaignRunner(spec, workers=1).run()
        agree = serial.to_json() == result.to_json()
        print(f"\nserial/parallel reports byte-identical: "
              f"{'yes' if agree else 'NO — DETERMINISM BUG'}")
    elif workers == 1:
        print("\nworkers=1: in-process run, serial/parallel "
              "determinism check skipped")
    _print_campaign_meta(result.meta)
    monitor = _monitor_spec(args)
    conformance_ok = True
    if monitor is not None:
        from repro.telemetry.monitor import campaign_conformance
        conformance_ok = _print_conformance(
            campaign_conformance(result, spec=monitor), args)
    if args.output:
        result.write(args.output)
        print(f"aggregated JSON report written to {args.output}")
    else:
        print("\n" + result.to_json())
    _finish_telemetry(tel, args)
    return 0 if agree and conformance_ok else 1


def _design(args: argparse.Namespace) -> int:
    from repro.design import run_design_demo
    if not args.demo:
        print("design: only the built-in --demo exploration is runnable "
              "from the CLI; build custom problems with repro.design in "
              "Python (DesignExplorer, DesignSpace, workload_from_churn)",
              file=sys.stderr)
        return 2
    workers = max(1, args.workers)
    tel = _demo_telemetry("design")
    report, identical, matches = run_design_demo(
        workers=workers, seed=args.seed,
        spare_capacity=args.spare_capacity, telemetry=tel)
    n_crashed = report.count("configuration_failed")
    title = (f"design demo — {report.n_candidates} candidates "
             f"({report.count('ok')} feasible, "
             f"{report.count('pruned')} pruned analytically, "
             f"{report.count('infeasible')} infeasible"
             + (f", {n_crashed} failed to configure" if n_crashed
                else "") + ")")
    print(format_table(report.summary_rows(), title=title))
    chosen = report.min_area_point()
    if chosen is not None:
        result = chosen["result"]
        print(f"\nchosen point: {chosen['scenario']} at "
              f"{result['operating_frequency_mhz']:.0f} MHz, "
              f"{result['area']['total_um2'] / 1e6:.3f} mm^2 "
              f"(paper hand-picks the 2x2 mesh at 500 MHz)")
    if matches is None:
        print("minimum-area point vs the paper's dimensioning: check "
              "skipped (workload provisioned with "
              f"--spare-capacity {args.spare_capacity:g})")
    else:
        print(f"minimum-area point matches the paper's dimensioning "
              f"(2x2 mesh at <= 500 MHz): "
              f"{'yes' if matches else 'NO — SEARCH REGRESSION'}")
    print(f"repeated-run reports byte-identical: "
          f"{'yes' if identical else 'NO — DETERMINISM BUG'}")
    if n_crashed:
        print(f"{n_crashed} candidate evaluation(s) crashed "
              "(configuration_failed) — see the JSON report")
    _print_campaign_meta(report.meta)
    if args.output:
        report.write(args.output)
        print(f"canonical JSON report written to {args.output}")
    _finish_telemetry(tel, args)
    return 0 if (identical and matches is not False
                 and not n_crashed) else 1


def _faults(args: argparse.Namespace) -> int:
    from repro.faults.demo import run_faults_demo
    if not args.demo:
        print("faults: only the built-in --demo flow is runnable from "
              "the CLI; drive custom schedules with repro.faults in "
              "Python (FaultSpec, FaultSchedule, "
              "Allocation.rebuild_excluding)", file=sys.stderr)
        return 2
    tel = _demo_telemetry("faults")
    monitor = _monitor_spec(args)
    record, report_json, identical = run_faults_demo(
        n_events=args.events, n_slots=args.slots,
        n_faults=args.faults, seed=args.seed, telemetry=tel,
        monitor=monitor)
    schedule = record["fault_schedule"]
    rows = [{
        "t_ms": e["t_ms"],
        "action": e["action"],
        "kind": e["kind"],
        "target": e["target"],
    } for e in schedule]
    print(format_table(
        rows, title=f"faults demo — {len(schedule)} fabric events over "
                    f"{record['n_events']} session events"))
    surv = record["survivability"]
    comp = record["composability"]
    rebuild = record["rebuild_first_failure"]
    print(f"\nadmission retention vs fault-free baseline: "
          f"{surv['admission_retention']:.1%}")
    print(f"session survival: {surv['session_survival']:.1%} "
          f"({surv['n_reallocated']} of {surv['n_evicted']} evicted "
          f"re-admitted, {surv['n_dropped']} dropped)")
    print(f"guarantee retention: {surv['guarantee_retention']:.1%} of "
          f"evicted sessions re-admitted with their original bounds")
    print(f"rebuild around first failure: "
          f"{rebuild['n_rerouted_same_bounds']} same-bounds / "
          f"{rebuild['n_rerouted_degraded']} degraded / "
          f"{rebuild['n_dropped']} dropped of {rebuild['n_affected']} "
          f"affected channels (untouched intact: "
          f"{'yes' if rebuild['untouched_intact'] else 'NO'})")
    composable = bool(comp["composable"])
    invariant_ok = bool(record["faulty"]["invariant"]["ok"])
    rebuild_ok = bool(rebuild["untouched_intact"])
    print(f"fault survivors bit-identical across "
          f"{comp['n_epochs']} epochs: "
          f"{'yes' if composable else 'NO — ISOLATION BUG'}")
    print(f"composability invariant held through all faults: "
          f"{'yes' if invariant_ok else 'NO — ISOLATION BUG'}")
    print(f"repeated-run reports byte-identical: "
          f"{'yes' if identical else 'NO — DETERMINISM BUG'}")
    conformance_ok = True
    if monitor is not None:
        conformance_ok = _print_conformance(
            record.get("_conformance"), args)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report_json)
            handle.write("\n")
        print(f"canonical JSON report written to {args.output}")
    _finish_telemetry(tel, args)
    return 0 if (identical and composable and invariant_ok
                 and rebuild_ok and conformance_ok) else 1


def _serve_fairness(args: argparse.Namespace) -> int:
    """The ``serve --policy wfq --demo`` flow: the fairness verdict."""
    from repro.service import run_fairness_demo
    tel = _demo_telemetry("fairness")
    monitor = _monitor_spec(args)
    record, report_json, identical = run_fairness_demo(
        n_events=args.events, seed=args.seed, telemetry=tel,
        monitor=monitor)
    wfq_totals = record["wfq"]["totals"]
    fcfs_totals = record["fcfs"]["totals"]
    per_tenant = record["wfq"]["fairness"]["per_tenant"]
    rows = [{
        "tenant": name,
        "weight": stats["weight"],
        "opens": stats["opens"],
        "admitted": stats["admitted"],
        "shed": stats["shed"],
        "capacity_rejects": stats["rejected_capacity"],
    } for name, stats in sorted(per_tenant.items())]
    print(format_table(
        rows,
        title=f"fairness demo — {record['n_events']} events on "
              f"{record['topology']} (wfq accept "
              f"{wfq_totals['accept_rate']:.1%}, fcfs "
              f"{fcfs_totals['accept_rate']:.1%})"))
    retention_rows = [{
        "tenant": name,
        "behaved": "yes" if row["well_behaved"] else "ABUSIVE",
        "solo": row["solo_rate"],
        "wfq": row["wfq_rate"],
        "fcfs": row["fcfs_rate"],
        "wfq_retention": row["wfq_retention"],
        "fcfs_retention": row["fcfs_retention"],
    } for name, row in sorted(record["retention"].items())]
    print()
    print(format_table(retention_rows,
                       title="admission retention vs solo baseline"))
    checks = record["checks"]
    wfq_ok = bool(checks["wfq_retention_ok"])
    fcfs_fails = bool(checks["fcfs_fails"])
    floor = checks["retention_floor"]
    print(f"\nwell-behaved tenants retain >= {floor:.0%} of their solo "
          f"admission rate under wfq: "
          f"{'yes' if wfq_ok else 'NO — FAIRNESS BUG'} "
          f"(min {checks['min_well_behaved_retention']:.1%})")
    print(f"FCFS baseline fails the same bound (the policy earns its "
          f"keep): {'yes' if fcfs_fails else 'NO — adversary too weak'}")
    print(f"repeated-run reports byte-identical: "
          f"{'yes' if identical else 'NO — DETERMINISM BUG'}")
    conformance_ok = True
    if monitor is not None:
        conformance = record.get("_conformance")
        conformance_ok = _print_conformance(conformance, args)
        if conformance is not None:
            tenant_rows = conformance.tenant_rows()
            if tenant_rows:
                print(format_table(
                    tenant_rows,
                    title="per-tenant guarantee retention"))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report_json)
            handle.write("\n")
        print(f"canonical JSON report written to {args.output}")
    _finish_telemetry(tel, args)
    return 0 if (identical and wfq_ok and fcfs_fails
                 and conformance_ok) else 1


def _serve(args: argparse.Namespace) -> int:
    from repro.service import run_demo
    if not args.demo:
        print("serve: only the built-in --demo trace is runnable from "
              "the CLI; drive custom workloads with repro.service in "
              "Python", file=sys.stderr)
        return 2
    if args.policy == "wfq":
        return _serve_fairness(args)
    tel = _demo_telemetry("serve")
    monitor = _monitor_spec(args)
    report, identical = run_demo(n_events=args.events, seed=args.seed,
                                 telemetry=tel, monitor=monitor)
    print(format_table(
        report.summary_rows(),
        title=f"serve demo — {report.totals['n_events']} events on "
              f"{report.topology} (accept rate "
              f"{report.totals['accept_rate']:.1%})"))
    invariant_ok = bool(report.invariant["ok"])
    print(f"\ncomposability invariant held across "
          f"{report.invariant['transitions_checked']} transitions: "
          f"{'yes' if invariant_ok else 'NO — ISOLATION BUG'}")
    print(f"repeated-run reports byte-identical: "
          f"{'yes' if identical else 'NO — DETERMINISM BUG'}")
    timing = report.timing
    print(f"throughput: {timing['events_per_s']:,.0f} events/s "
          f"(admission mean {timing.get('admit_mean_us', 0.0):.1f} us, "
          f"p99 {timing.get('admit_p99_us', 0.0):.1f} us) "
          "[wall-clock; excluded from the canonical report]")
    conformance_ok = True
    if monitor is not None:
        conformance_ok = _print_conformance(
            getattr(report, "conformance", None), args)
    if args.output:
        report.write(args.output)
        print(f"canonical JSON report written to {args.output}")
    _finish_telemetry(tel, args)
    return 0 if (identical and invariant_ok and conformance_ok) else 1


def _replay(args: argparse.Namespace) -> int:
    import json

    from repro.simulation.replay import run_replay_demo
    if not args.demo:
        print("replay: only the built-in --demo trace is runnable from "
              "the CLI; drive custom timelines with "
              "repro.simulation.verify_timeline in Python",
              file=sys.stderr)
        return 2
    tel = _demo_telemetry("replay")
    monitor = _monitor_spec(args)
    record, report_json, identical = run_replay_demo(
        n_events=args.events, n_slots=args.slots, seed=args.seed,
        telemetry=tel, monitor=monitor)
    verdicts = record["verdicts"]
    rows = [{
        "backend": name,
        "epochs": verdict["n_epochs"],
        "survivors": verdict["n_survivors"],
        "identical": verdict["identical"],
        "diverged": len(verdict["diverged"]),
        "composable": "yes" if verdict["composable"] else "NO",
    } for name, verdict in sorted(verdicts.items())]
    timeline = record["timeline"]
    print(format_table(
        rows,
        title=f"replay demo — {len(timeline['events'])} transitions, "
              f"{timeline['n_epochs']} epochs over "
              f"{timeline['horizon_slots']} slots"))
    flit_ok = bool(verdicts["flit"]["composable"]) and \
        verdicts["flit"]["n_survivors"] > 0
    be_diverged = bool(verdicts["be"]["diverged"])
    print(f"\nflit (TDM): survivors bit-identical across every epoch: "
          f"{'yes' if flit_ok else 'NO — ISOLATION BUG'}")
    print(f"best-effort baseline diverges under the same churn: "
          f"{'yes' if be_diverged else 'NO — expected divergence missing'}")
    print(f"repeated-run reports byte-identical: "
          f"{'yes' if identical else 'NO — DETERMINISM BUG'}")
    conformance_ok = True
    if monitor is not None:
        conformance_ok = _print_conformance(
            record.get("_conformance"), args)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report_json)
            handle.write("\n")
        print(f"canonical JSON report written to {args.output}")
    else:
        print("\n" + json.dumps(
            {"verdicts": verdicts,
             "n_transitions": len(timeline["events"])},
            indent=2, sort_keys=True))
    _finish_telemetry(tel, args)
    return 0 if (flit_ok and be_diverged and identical
                 and conformance_ok) else 1


def _monitor(args: argparse.Namespace) -> int:
    from repro.experiments.section7 import section7_setup
    from repro.telemetry.monitor import (FabricRollup, MonitorSpec,
                                         conformance_from_result)
    from repro.usecase.runner import run_gs
    if not args.demo:
        print("monitor: only the built-in --demo flow is runnable from "
              "the CLI; build custom watchdogs with "
              "repro.telemetry.monitor in Python (MonitorSpec, "
              "conformance_from_result, timeline_conformance, "
              "FabricRollup)", file=sys.stderr)
        return 2
    tel = _demo_telemetry("monitor")
    spec = MonitorSpec(slack_fraction=args.slack)
    with tel.phase("configure"):
        _, config = section7_setup()
    with tel.phase("simulate"):
        outcome = run_gs(config, n_slots=args.slots)
    with tel.phase("conformance"):
        conformance = conformance_from_result(config, outcome.result,
                                              spec=spec)
        rerun = conformance_from_result(
            config, run_gs(config, n_slots=args.slots).result, spec=spec)
        identical = conformance.to_json() == rerun.to_json()
    rollup = FabricRollup.from_allocation(config.allocation)
    rollup.emit_counter_tracks(tel)
    print(conformance.summary())
    print()
    print(format_table(conformance.summary_rows(args.top),
                       title="least-headroom channels"))
    print()
    print(format_table(rollup.link_rows(args.top),
                       title="hottest links (slot occupancy)"))
    print()
    print(format_table(rollup.ni_rows(args.top),
                       title="busiest source NIs (slot occupancy)"))
    print(f"\nzero violated channels on the GS backend: "
          f"{'yes' if conformance.n_violated == 0 else 'NO — BOUNDS BUG'}")
    print(f"repeated-run conformance byte-identical: "
          f"{'yes' if identical else 'NO — DETERMINISM BUG'}")
    if args.output:
        conformance.write(args.output)
        print(f"conformance report written to {args.output}")
    _finish_telemetry(tel, args)
    return 0 if (identical and conformance.n_violated == 0) else 1


def _bench_check(args: argparse.Namespace) -> int:
    from repro.telemetry.monitor import bench_check
    try:
        report = bench_check(args.records, tolerance=args.tolerance)
    except (OSError, ValueError) as exc:
        print(f"bench-check: {exc}", file=sys.stderr)
        return 2
    rows = report.summary_rows()
    if rows:
        print(format_table(
            rows, title=f"bench-check — {len(rows)} recorded "
                        f"trajectories in {args.records}"))
        print()
    print(report.summary())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
            handle.write("\n")
        print(f"sentinel report written to {args.output}")
    return 0 if report.ok else 1


_COMMANDS = {
    "fig5": _fig5,
    "fig6a": _fig6a,
    "fig6b": _fig6b,
    "costs": _costs,
    "usecase": _usecase,
    "sweep": _sweep,
    "ablations": _ablations,
}


def _add_observability_flags(subparser: argparse.ArgumentParser) -> None:
    """``--telemetry`` / ``--trace`` outputs, shared by every demo."""
    subparser.add_argument("--telemetry", default=None, metavar="PATH",
                           help="write the deterministic metric/span "
                                "JSONL stream here")
    subparser.add_argument("--trace", default=None, metavar="PATH",
                           help="write a Chrome trace-event JSON here "
                                "(load in Perfetto or chrome://tracing)")


def _add_monitor_flags(subparser: argparse.ArgumentParser) -> None:
    """``--monitor`` conformance watchdog flags, shared by the demos."""
    subparser.add_argument("--monitor", action="store_true",
                           help="arm the guarantee-conformance watchdog: "
                                "classify observed/quoted behaviour "
                                "against the analytical bounds "
                                "(within_bounds / tight / violated); "
                                "the canonical report stays "
                                "byte-identical")
    subparser.add_argument("--monitor-output", default=None,
                           dest="monitor_output", metavar="PATH",
                           help="write the canonical conformance report "
                                "JSON here (implies --monitor)")
    subparser.add_argument("--monitor-slack", type=float, default=0.2,
                           dest="monitor_slack", metavar="FRACTION",
                           help="headroom fraction under which a "
                                "channel classifies as 'tight' "
                                "(default 0.2)")


def _monitor_spec(args: argparse.Namespace):
    """The armed :class:`MonitorSpec`, or ``None`` when monitoring is off."""
    if not (getattr(args, "monitor", False)
            or getattr(args, "monitor_output", None)):
        return None
    from repro.telemetry.monitor import MonitorSpec
    return MonitorSpec(slack_fraction=args.monitor_slack)


def _print_conformance(conformance, args: argparse.Namespace) -> bool:
    """Print one conformance verdict; write it if asked.  True when ok."""
    if conformance is None:
        print("\nconformance: monitor armed but no report was produced")
        return False
    print("\n" + conformance.summary())
    rows = conformance.summary_rows()
    if rows:
        print(format_table(rows, title="least-headroom channels"))
    output = getattr(args, "monitor_output", None)
    if output:
        conformance.write(output)
        print(f"conformance report written to {output}")
    return conformance.ok


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the aelite paper's figures and tables, "
                    "or run scenario campaigns.")
    parser.add_argument("--profile", action="store_true",
                        help="wrap the command in cProfile and print "
                             "the hot spots to stderr (place before "
                             "the subcommand)")
    sub = parser.add_subparsers(dest="experiment", required=True,
                                metavar="command")
    for name in sorted(_COMMANDS) + ["all"]:
        sub.add_parser(name, help=f"regenerate the {name} artefact(s)"
                       if name != "all" else "everything above")
    campaign = sub.add_parser(
        "campaign", help="run a scenario campaign over worker processes")
    campaign.add_argument("--demo", action="store_true",
                          help="run the built-in demo grid "
                               "(2 topologies x 2 traffic mixes x 2 "
                               "backends x 2 seeds)")
    campaign.add_argument("--preset", default=None, metavar="NAME",
                          help="run a registered preset grid "
                               "(demo_campaign, micro_campaign, "
                               "churn_campaign, replay_campaign, "
                               "design_campaign, fault_campaign, "
                               "synthetic_campaign; short names work "
                               "too)")
    campaign.add_argument("--workers", type=int, default=2,
                          help="worker processes (default 2; 1 runs "
                               "in-process for profiling/debugging)")
    campaign.add_argument("--workdir", default=None, metavar="DIR",
                          help="checkpoint directory: completed runs "
                               "journal into per-shard JSONL files so a "
                               "killed campaign can --resume")
    campaign.add_argument("--resume", default=None, metavar="DIR",
                          help="resume a killed campaign from its "
                               "workdir DIR, skipping journaled runs; "
                               "the final report stays byte-identical "
                               "to an uninterrupted run (still needs "
                               "--demo/--preset to rebuild the spec)")
    campaign.add_argument("--stream", action="store_true",
                          help="streaming aggregation: never hold the "
                               "full record list in memory (requires "
                               "--workdir; the report streams from the "
                               "shard journals)")
    campaign.add_argument("--shard-size", type=int, default=None,
                          metavar="N",
                          help="runs per checkpoint shard (default: "
                               "derived from grid size, independent of "
                               "worker count)")
    campaign.add_argument("--output", default=None,
                          help="write the aggregated JSON report here "
                               "instead of stdout")
    campaign.add_argument("--list", action="store_true",
                          help="print the expanded run grid and exit")
    _add_observability_flags(campaign)
    _add_monitor_flags(campaign)
    serve = sub.add_parser(
        "serve", help="run the online admission service over a churn "
                      "trace")
    serve.add_argument("--demo", action="store_true",
                       help="run the built-in seeded churn trace on the "
                            "Section VII mesh (twice; verifies the "
                            "reports are byte-identical)")
    serve.add_argument("--events", type=int, default=2000,
                       help="number of session events to process "
                            "(default 2000)")
    serve.add_argument("--seed", type=int, default=2009,
                       help="workload seed (default 2009)")
    serve.add_argument("--policy", choices=("fcfs", "wfq"),
                       default="fcfs",
                       help="admission policy: fcfs (default, the "
                            "legacy single-tenant demo) or wfq (the "
                            "multi-tenant weighted-fair demo: abusive "
                            "tenant vs FCFS vs per-tenant solo "
                            "baselines)")
    serve.add_argument("--output", default=None,
                       help="write the canonical JSON report here")
    _add_observability_flags(serve)
    _add_monitor_flags(serve)
    replay = sub.add_parser(
        "replay", help="record a churn trace and replay it as a "
                       "reconfiguration timeline at cycle level")
    replay.add_argument("--demo", action="store_true",
                        help="run the built-in seeded churn trace, "
                             "replay it on the flit-level and "
                             "best-effort backends, and verify dynamic "
                             "composability (twice; reports must be "
                             "byte-identical)")
    replay.add_argument("--events", type=int, default=240,
                        help="number of session events to record "
                             "(default 240)")
    replay.add_argument("--slots", type=int, default=3000,
                        help="simulation horizon in TDM slots the "
                             "timeline is fitted into (default 3000)")
    replay.add_argument("--seed", type=int, default=2009,
                        help="workload seed (default 2009)")
    replay.add_argument("--output", default=None,
                        help="write the canonical JSON report here")
    _add_observability_flags(replay)
    _add_monitor_flags(replay)
    design = sub.add_parser(
        "design", help="dimension a network from a workload: explore "
                       "the design space and emit the Pareto front")
    design.add_argument("--demo", action="store_true",
                        help="dimension the demo-scale Section VII "
                             "workload over the built-in 18-candidate "
                             "space (twice; reports must be "
                             "byte-identical and the minimum-area point "
                             "must be the paper's 2x2 mesh at <= 500 "
                             "MHz)")
    design.add_argument("--workers", type=int, default=2,
                        help="worker processes for candidate "
                             "evaluation (default 2)")
    design.add_argument("--seed", type=int, default=2009,
                        help="workload seed (default 2009)")
    design.add_argument("--spare-capacity", type=float, default=0.0,
                        dest="spare_capacity", metavar="FRACTION",
                        help="fault-tolerance headroom: inflate every "
                             "channel requirement by this fraction so "
                             "the dimensioned network keeps slack for "
                             "degraded-mode re-allocation (default 0)")
    design.add_argument("--output", default=None,
                        help="write the canonical JSON report here")
    _add_observability_flags(design)
    faults = sub.add_parser(
        "faults", help="inject link/router failures into a churn trace "
                       "and measure what survives")
    faults.add_argument("--demo", action="store_true",
                        help="run the built-in churn+faults flow on a "
                             "3x3 mesh against its fault-free baseline "
                             "(twice; reports must be byte-identical "
                             "and fault survivors bit-identical)")
    faults.add_argument("--events", type=int, default=240,
                        help="number of session events (default 240)")
    faults.add_argument("--slots", type=int, default=3000,
                        help="simulation horizon in TDM slots for the "
                             "timeline replay (default 3000)")
    faults.add_argument("--faults", type=int, default=6,
                        help="number of fabric failures to inject "
                             "(default 6)")
    faults.add_argument("--seed", type=int, default=2009,
                        help="workload/schedule seed (default 2009)")
    faults.add_argument("--output", default=None,
                        help="write the canonical JSON report here")
    _add_observability_flags(faults)
    _add_monitor_flags(faults)
    monitor = sub.add_parser(
        "monitor", help="guarantee-conformance watchdog + fabric "
                        "introspection over the Section VII use case")
    monitor.add_argument("--demo", action="store_true",
                         help="run the Section VII GS use case, classify "
                              "every channel's observed worst-case "
                              "latency and delivered throughput against "
                              "its analytical bounds (twice; the "
                              "conformance reports must be "
                              "byte-identical and zero channels "
                              "violated), and print the fabric "
                              "utilisation heatmaps")
    monitor.add_argument("--slots", type=int, default=3000,
                         help="simulation horizon in TDM slots "
                              "(default 3000)")
    monitor.add_argument("--slack", type=float, default=0.2,
                         metavar="FRACTION",
                         help="headroom fraction under which a channel "
                              "classifies as 'tight' (default 0.2)")
    monitor.add_argument("--top", type=int, default=8,
                         help="rows per heatmap/headroom table "
                              "(default 8)")
    monitor.add_argument("--output", default=None,
                         help="write the canonical conformance report "
                              "JSON here")
    _add_observability_flags(monitor)
    bench = sub.add_parser(
        "bench-check", help="perf-regression sentinel over the recorded "
                            "benchmark trajectories")
    bench.add_argument("--records", default="benchmarks/records",
                       metavar="DIR",
                       help="directory holding BENCH_*.json trajectory "
                            "records (default benchmarks/records)")
    bench.add_argument("--tolerance", type=float, default=0.15,
                       metavar="FRACTION",
                       help="fail when current throughput drops more "
                            "than this fraction below the median of "
                            "prior entries (default 0.15)")
    bench.add_argument("--output", default=None,
                       help="write the sentinel verdict JSON here")
    args = parser.parse_args(argv)
    if args.profile:
        from repro.telemetry.profiling import run_profiled
        return run_profiled(lambda: _dispatch(args))
    return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    """Route a parsed invocation to its handler."""
    if args.experiment == "campaign":
        return _campaign(args)
    if args.experiment == "serve":
        return _serve(args)
    if args.experiment == "replay":
        return _replay(args)
    if args.experiment == "design":
        return _design(args)
    if args.experiment == "faults":
        return _faults(args)
    if args.experiment == "monitor":
        return _monitor(args)
    if args.experiment == "bench-check":
        return _bench_check(args)
    if args.experiment == "all":
        for name in ("fig5", "fig6a", "fig6b", "costs", "usecase",
                     "sweep", "ablations"):
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            _COMMANDS[name]()
    else:
        _COMMANDS[args.experiment]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
