"""The mesochronous link pipeline stage (Section V of the paper).

The stage consists of a 4-word bi-synchronous FIFO and an FSM in the
reading clock domain.  The writing clock is sourced along with the data
(source-synchronous), so the writer side simply pushes every valid word it
samples.  The reader-side FSM tracks the position within the current flit
cycle (states 0, 1, 2 for a 3-word flit):

* in state 0 (a flit-cycle boundary of the *reading* clock) it checks
  whether the FIFO holds at least one word;
* if so, it keeps ``valid``/``accept`` high for the whole following flit
  cycle, popping one word per cycle and presenting it to the downstream
  router — re-aligning the flit to the reading clock's slot grid.

The stage therefore always takes exactly one TDM slot (three reading-clock
cycles), absorbing both the FIFO's forwarding delay and up to half a cycle
of skew; this is what makes the network *flit-synchronous* without global
cycle-level synchronicity.  The slot allocator accounts for the stage via
``Link.pipeline_stages``.

Model structure: two ``Clocked`` components sharing one FIFO —
:class:`MesoWriter` on the upstream clock, :class:`MesoReader` on the
downstream clock.  :func:`make_stage` builds and registers the pair.
"""

from __future__ import annotations

from repro.clocking.clock import ClockDomain
from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.words import WordFormat
from repro.link.bisync_fifo import BisyncFifo
from repro.simulation.engine import Engine
from repro.simulation.signals import IDLE, Phit, WordWire

__all__ = ["MesoWriter", "MesoReader", "MesochronousLinkStage", "make_stage"]

#: FIFO depth of the paper's link stage ("the FIFO is chosen with
#: sufficient storage capacity to never be full (4 words)").
DEFAULT_FIFO_WORDS = 4

#: Forwarding delay of the bi-synchronous FIFO in writer cycles.  The
#: paper assumes a total forwarding delay "less than the number of words
#: in a flit (1-2 cycles)"; in this model the writer-side sampling
#: register contributes one of those cycles, so the FIFO itself adds one
#: more.  With the total at two cycles and skew bounded by half a cycle,
#: a flit written in slot ``s`` is always — and only — readable at the
#: reader's slot boundary ``s + 1``, making the stage's one-slot latency
#: exact and phase-independent.
DEFAULT_FORWARD_DELAY_CYCLES = 1


class MesoWriter:
    """Writer half: samples the upstream wire, pushes valid words."""

    def __init__(self, name: str, fifo: BisyncFifo):
        self.name = name
        self.fifo = fifo
        self.inputs = [WordWire(f"{name}.in")]
        self._pending: Phit = IDLE

    def compute(self, cycle: int, time_ps: int) -> None:
        """Sample the source-synchronous data."""
        self._pending = self.inputs[0].sample()

    def commit(self, cycle: int, time_ps: int) -> None:
        """Push the sampled word at this writer edge."""
        if self._pending.valid:
            self.fifo.write(self._pending, time_ps)
        self._pending = IDLE


class MesoReader:
    """Reader half: the flit re-alignment FSM of Section V."""

    def __init__(self, name: str, fifo: BisyncFifo, fmt: WordFormat):
        self.name = name
        self.fifo = fifo
        self.fmt = fmt
        self.outputs = [WordWire(f"{name}.out")]
        self._forwarding = False
        self._start_next = False
        self.flits_forwarded = 0

    def compute(self, cycle: int, time_ps: int) -> None:
        """At a flit-cycle boundary, decide whether to forward a flit."""
        if cycle % self.fmt.flit_size == 0:
            self._start_next = self.fifo.readable(time_ps) >= 1

    def commit(self, cycle: int, time_ps: int) -> None:
        """Pop and present one word per cycle while forwarding."""
        pos = cycle % self.fmt.flit_size
        if pos == 0:
            self._forwarding = self._start_next
            if self._forwarding:
                self.flits_forwarded += 1
        if self._forwarding:
            phit = self.fifo.pop(time_ps)
            if phit.word_index != pos:
                raise SimulationError(
                    f"{self.name}: flit word {phit.word_index} arrived in "
                    f"flit-cycle position {pos}; the stage lost flit "
                    "alignment")
            self.outputs[0].drive(phit)
        # When not forwarding the wire latches to idle by itself.


class MesochronousLinkStage:
    """The assembled stage: writer + FIFO + reader."""

    def __init__(self, name: str, writer_clock: ClockDomain,
                 reader_clock: ClockDomain, fmt: WordFormat, *,
                 fifo_words: int = DEFAULT_FIFO_WORDS,
                 forward_delay_cycles: int = DEFAULT_FORWARD_DELAY_CYCLES):
        if not writer_clock.is_mesochronous_with(reader_clock):
            raise ConfigurationError(
                f"link stage {name!r}: mesochronous stages need equal "
                f"periods ({writer_clock.period_ps} != "
                f"{reader_clock.period_ps} ps); use the asynchronous "
                "wrapper for plesiochronous clocks")
        if fifo_words < fmt.flit_size + 1:
            raise ConfigurationError(
                f"link stage {name!r}: FIFO of {fifo_words} words cannot "
                f"hold a {fmt.flit_size}-word flit plus slack")
        self.name = name
        self.writer_clock = writer_clock
        self.reader_clock = reader_clock
        self.fifo = BisyncFifo(
            f"{name}.fifo", fifo_words,
            forward_delay_cycles * writer_clock.period_ps)
        self.writer = MesoWriter(f"{name}.wr", self.fifo)
        self.reader = MesoReader(f"{name}.rd", self.fifo, fmt)

    @property
    def inputs(self) -> list[WordWire]:
        """Upstream-facing wire (writer side)."""
        return self.writer.inputs

    @inputs.setter
    def inputs(self, wires: list[WordWire]) -> None:
        self.writer.inputs = wires

    @property
    def outputs(self) -> list[WordWire]:
        """Downstream-facing wire (reader side)."""
        return self.reader.outputs

    def skew_ps(self) -> int:
        """Writer-to-reader skew, bounded by half a period per Section V."""
        return self.writer_clock.skew_to(self.reader_clock)


def make_stage(engine: Engine, name: str, writer_clock: ClockDomain,
               reader_clock: ClockDomain, fmt: WordFormat, *,
               fifo_words: int = DEFAULT_FIFO_WORDS,
               forward_delay_cycles: int = DEFAULT_FORWARD_DELAY_CYCLES
               ) -> MesochronousLinkStage:
    """Build a stage and register both halves with the engine."""
    stage = MesochronousLinkStage(
        name, writer_clock, reader_clock, fmt, fifo_words=fifo_words,
        forward_delay_cycles=forward_delay_cycles)
    engine.add_component(writer_clock, stage.writer)
    engine.add_component(reader_clock, stage.reader)
    engine.add_wire(reader_clock, stage.reader.outputs[0])
    return stage
