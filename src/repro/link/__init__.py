"""Links: plain wires, bi-synchronous FIFOs, mesochronous pipeline stages."""

from repro.link.bisync_fifo import BisyncFifo
from repro.link.mesochronous import (MesochronousLinkStage, MesoReader,
                                     MesoWriter, make_stage)
from repro.link.wire import join

__all__ = ["BisyncFifo", "MesochronousLinkStage", "MesoReader",
           "MesoWriter", "make_stage", "join"]
