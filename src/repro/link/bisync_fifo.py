"""Bi-synchronous FIFO model ([14], [18] in the paper).

The physical FIFO decouples a writer clock from a reader clock using Gray
pointers and brute-force synchronisers; the architectural contract the
paper relies on (Section V) is:

* a nominal rate of one word per cycle on both sides;
* a *forwarding delay* — the time between a write and the earliest read of
  that word — of one to two cycles;
* a fixed capacity (four words in aelite's link stage), chosen so the
  FIFO can never fill, which removes the full/accept handshake entirely.

The model captures exactly that contract on the picosecond timeline: a
word written at time ``t`` becomes readable at ``t + forward_delay_ps``;
writing into a full FIFO is a hard error (in aelite it would mean the
sizing argument of Section V is wrong, so the model treats it as an
invariant violation, not backpressure).
"""

from __future__ import annotations

from collections import deque

from repro.core.exceptions import ConfigurationError, SimulationError
from repro.simulation.signals import Phit

__all__ = ["BisyncFifo"]


class BisyncFifo:
    """Clock-domain-crossing word FIFO with forwarding delay."""

    __slots__ = ("name", "capacity", "forward_delay_ps", "_entries",
                 "max_occupancy", "total_writes")

    def __init__(self, name: str, capacity: int, forward_delay_ps: int):
        if capacity < 1:
            raise ConfigurationError(
                f"FIFO {name!r} capacity must be >= 1, got {capacity}")
        if forward_delay_ps < 0:
            raise ConfigurationError(
                f"FIFO {name!r} forwarding delay must be >= 0")
        self.name = name
        self.capacity = capacity
        self.forward_delay_ps = forward_delay_ps
        self._entries: deque[tuple[int, Phit]] = deque()
        self.max_occupancy = 0
        self.total_writes = 0

    # -- writer side ---------------------------------------------------------

    def write(self, phit: Phit, time_ps: int) -> None:
        """Push one word at writer time ``time_ps``.

        Raises :class:`SimulationError` on overflow: the aelite link stage
        sizes the FIFO so this can never happen, so an overflow here means
        a timing assumption (skew bound, rate) was violated.
        """
        if len(self._entries) >= self.capacity:
            raise SimulationError(
                f"bi-synchronous FIFO {self.name!r} overflow: capacity "
                f"{self.capacity} exceeded at t={time_ps} ps (skew or rate "
                "assumption violated)")
        self._entries.append((time_ps, phit))
        self.total_writes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._entries))

    # -- reader side ---------------------------------------------------------

    def readable(self, time_ps: int) -> int:
        """Words visible to the reader at ``time_ps``."""
        return sum(1 for wt, _ in self._entries
                   if wt + self.forward_delay_ps <= time_ps)

    def peek(self, time_ps: int) -> Phit | None:
        """Oldest readable word, without removing it."""
        if not self._entries:
            return None
        write_time, phit = self._entries[0]
        if write_time + self.forward_delay_ps <= time_ps:
            return phit
        return None

    def pop(self, time_ps: int) -> Phit:
        """Remove and return the oldest readable word.

        Raises :class:`SimulationError` when nothing is readable — the
        mesochronous FSM only pops after committing to a full flit, so an
        empty pop means flit words did not arrive back-to-back.
        """
        phit = self.peek(time_ps)
        if phit is None:
            raise SimulationError(
                f"bi-synchronous FIFO {self.name!r} underflow at "
                f"t={time_ps} ps: reader committed to a flit whose words "
                "are not available (flit words must arrive in consecutive "
                "cycles)")
        self._entries.popleft()
        return phit

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"BisyncFifo({self.name!r}, {len(self._entries)}/"
                f"{self.capacity} words)")
