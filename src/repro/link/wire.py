"""Plain synchronous links.

In basic aelite (Section IV) neighbouring elements are cycle-level
synchronous and the link delay must be at most one cycle: a registered
output drives a wire segment that the next element's input register samples
on the following edge.  In the model this is simply *wire sharing*: the
producing element's output :class:`~repro.simulation.signals.WordWire`
object is handed to the consuming element as its input wire.

:func:`join` performs that sharing and returns the shared wire so network
builders can attach monitors to it.  The paper's alternative of moving the
input register onto the link does not change cycle counts (the register
moves, it is not added), so it needs no separate model; links that add a
whole TDM slot are the mesochronous pipeline stages in
:mod:`repro.link.mesochronous`.
"""

from __future__ import annotations

from typing import Protocol

from repro.simulation.signals import WordWire

__all__ = ["join"]


class _HasPorts(Protocol):  # pragma: no cover - typing helper
    inputs: list[WordWire]
    outputs: list[WordWire]


def join(producer: _HasPorts, out_port: int, consumer: _HasPorts,
         in_port: int) -> WordWire:
    """Share one wire: ``producer.outputs[out_port]`` becomes
    ``consumer.inputs[in_port]``.

    Returns the shared wire.  The wire remains registered on the
    *producer's* clock domain (its value changes at producer commits),
    which models a link delay within one cycle as the paper requires for
    non-pipelined links.
    """
    wire = producer.outputs[out_port]
    consumer.inputs[in_port] = wire
    return wire
