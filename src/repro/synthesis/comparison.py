"""Cost comparisons against Æthereal and related NoCs (Section VII).

Gathers the paper's comparison points into one queryable table:

* the aelite GS-only router (our structural model);
* the complete mesochronous aelite router (router + link stages);
* the Æthereal combined GS+BE router — structural model calibrated to
  the published 0.13 mm^2 / 500 MHz at 130 nm, scaled to 90 nm;
* literature reference points: the mesochronous GS router of
  Miro Panades et al. [4] (0.082 mm^2) and the asynchronous router of
  Beigne et al. [7] (0.12 mm^2 scaled from 130 nm).

The headline ratios the paper reports — roughly five times smaller and
1.5 times faster than the GS+BE Æthereal router — fall out of
:func:`aelite_vs_aethereal`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.words import WordFormat
from repro.synthesis.area_model import (RouterAreaModel,
                                        aethereal_gsbe_router_area_um2,
                                        mesochronous_router_area_um2)
from repro.synthesis.technology import (TECH_90LP, TECH_130, Technology,
                                        scale_area_um2,
                                        scale_frequency_hz)
from repro.synthesis.timing_model import (max_frequency_hz,
                                          router_area_at_frequency_um2)

__all__ = ["ComparisonRow", "related_work_table", "aelite_vs_aethereal",
           "throughput_per_area"]

#: Published cell areas of the related designs the paper cites, in mm^2
#: at 90 nm equivalents (the [7] figure is scaled from 130 nm in the
#: paper itself).
PANADES_MESOCHRONOUS_MM2 = 0.082
BEIGNE_ASYNC_MM2 = 0.12

#: Published Æthereal combined GS+BE numbers ([8]): 130 nm CMOS.
AETHEREAL_GSBE_MM2_130 = 0.13
AETHEREAL_GSBE_MHZ_130 = 500.0


@dataclass(frozen=True)
class ComparisonRow:
    """One design point in the cost-comparison table."""

    design: str
    area_mm2: float
    frequency_mhz: float | None
    service_levels: str
    composable: bool
    source: str


def related_work_table(fmt: WordFormat = WordFormat(), *,
                       tech: Technology = TECH_90LP) -> list[ComparisonRow]:
    """The Section VII comparison table (arity-5 routers at 90 nm)."""
    aelite_fmax = max_frequency_hz(5, fmt, tech=tech)
    aelite_area = router_area_at_frequency_um2(5, aelite_fmax, fmt,
                                               tech=tech)
    meso_area = mesochronous_router_area_um2(5, 5, fmt, tech=tech)
    gsbe_area_130 = aethereal_gsbe_router_area_um2(5, fmt, tech=TECH_130)
    gsbe_area_90 = scale_area_um2(gsbe_area_130, TECH_130, tech)
    gsbe_mhz_90 = scale_frequency_hz(AETHEREAL_GSBE_MHZ_130 * 1e6,
                                     TECH_130, tech) / 1e6
    return [
        ComparisonRow("aelite GS-only router", aelite_area / 1e6,
                      aelite_fmax / 1e6, "unlimited (TDM)", True,
                      "this model"),
        ComparisonRow("aelite router + mesochronous links",
                      meso_area / 1e6, aelite_fmax / 1e6,
                      "unlimited (TDM)", True, "this model"),
        ComparisonRow("AEthereal GS+BE router (90 nm scaled)",
                      gsbe_area_90 / 1e6, gsbe_mhz_90, "GS + BE", False,
                      "model calibrated to [8]"),
        ComparisonRow("Miro Panades et al. [4] mesochronous",
                      PANADES_MESOCHRONOUS_MM2, None, "2 (GS priority)",
                      False, "published figure"),
        ComparisonRow("Beigne et al. [7] asynchronous",
                      BEIGNE_ASYNC_MM2, None, "2", False,
                      "published figure (scaled from 130 nm)"),
    ]


@dataclass(frozen=True)
class AeliteVsAethereal:
    """The paper's headline cost ratios."""

    aelite_area_mm2: float
    aethereal_area_mm2: float
    aelite_frequency_mhz: float
    aethereal_frequency_mhz: float

    @property
    def area_ratio(self) -> float:
        """How many times smaller the aelite router is."""
        return self.aethereal_area_mm2 / self.aelite_area_mm2

    @property
    def frequency_ratio(self) -> float:
        """How many times faster the aelite router is."""
        return self.aelite_frequency_mhz / self.aethereal_frequency_mhz


def aelite_vs_aethereal(fmt: WordFormat = WordFormat(), *,
                        tech: Technology = TECH_90LP) -> AeliteVsAethereal:
    """Compute the "roughly 5x smaller, 1.5x faster" comparison."""
    gsbe_130 = aethereal_gsbe_router_area_um2(5, fmt, tech=TECH_130)
    gsbe_90 = scale_area_um2(gsbe_130, TECH_130, tech)
    gsbe_mhz = scale_frequency_hz(AETHEREAL_GSBE_MHZ_130 * 1e6,
                                  TECH_130, tech) / 1e6
    aelite_fmax = max_frequency_hz(5, fmt, tech=tech) / 1e6
    # Compare like for like: both at the Æthereal operating frequency.
    aelite_area = router_area_at_frequency_um2(
        5, gsbe_mhz * 1e6, fmt, tech=tech)
    return AeliteVsAethereal(
        aelite_area_mm2=aelite_area / 1e6,
        aethereal_area_mm2=gsbe_90 / 1e6,
        aelite_frequency_mhz=aelite_fmax,
        aethereal_frequency_mhz=gsbe_mhz)


def throughput_per_area(arity: int, fmt: WordFormat, *,
                        tech: Technology = TECH_90LP,
                        frequency_hz: float | None = None
                        ) -> tuple[float, float]:
    """Aggregate raw throughput (GB/s, both directions) and area (mm^2).

    Reproduces the "arity-6 aelite router offers 64 GB/s at 0.03 mm^2
    for a 64-bit data width" observation: all input plus all output
    ports moving one word per cycle.
    """
    f = frequency_hz or max_frequency_hz(arity, fmt, tech=tech)
    bytes_per_s = 2 * arity * fmt.bytes_per_word * f
    area = RouterAreaModel(arity, arity, fmt).base_area_um2(tech)
    return bytes_per_s / 1e9, area / 1e6
