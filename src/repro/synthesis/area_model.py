"""Structural area models of the aelite router, links, NI and baseline.

Every model walks the actual micro-architecture (Sections IV and V of the
paper) and counts registers and gates:

* **aelite router** — three pipeline registers banks (data + valid + EoP
  sideband), an HPU per input (path shifter + port register), a one-hot
  encoded switch (mux tree per output), and a small amount of control.
  No routing tables, no arbiter, no flow control: that absence is exactly
  why the area lands a factor ~5 below the GS+BE baseline.
* **mesochronous link stage** — a 4-word bi-synchronous FIFO plus the
  re-alignment FSM.
* **NI** (not separately evaluated in the paper; provided for roll-ups)
  — per-channel queues, slot table, packetiser and credit counters.
* **Æthereal GS+BE router** — the comparison point: adds per-input BE
  queues, BE routing state, round-robin arbiters per output, link-level
  flow-control counters and a second VC's worth of output muxing.

A single netlist-overhead factor per model (clock tree, DFT, synthesis
slack) is calibrated against the paper's anchors; all scaling behaviour
(linear in arity, linear in width) is structural.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.core.words import WordFormat
from repro.synthesis.gates import (GateCounts, clog2, comparator_gates,
                                   counter_gates, fifo_area_um2,
                                   mux_tree_gates, one_hot_encoder_gates)
from repro.synthesis.technology import TECH_90LP, TECH_130, Technology

__all__ = ["RouterAreaModel", "link_stage_area_um2", "ni_area_um2",
           "aethereal_gsbe_router_area_um2", "mesochronous_router_area_um2"]

#: Sideband bits accompanying every data word (valid + end-of-packet).
SIDEBAND_BITS = 2

#: Netlist overhead of the aelite router model (calibrated once against
#: the 14,000 um^2 anchor for arity-5 / 32-bit).
ROUTER_OVERHEAD = 1.05

#: Netlist overhead of the GS+BE baseline model (calibrated once against
#: the 0.13 mm^2 @ 130 nm anchor from [8]).
GSBE_OVERHEAD = 1.43

#: Area of the link-stage FSM (position counter, valid/accept logic),
#: NAND2 equivalents.
LINK_FSM_GATES = 260
LINK_FSM_REGISTERS = 6


@dataclass(frozen=True)
class RouterAreaModel:
    """Structural model of one aelite router instance."""

    n_inputs: int
    n_outputs: int
    fmt: WordFormat = WordFormat()

    def __post_init__(self) -> None:
        if self.n_inputs < 1 or self.n_outputs < 1:
            raise ConfigurationError(
                "router needs at least one input and one output")

    @property
    def arity(self) -> int:
        """Port count in the paper's sense."""
        return max(self.n_inputs, self.n_outputs)

    def gate_counts(self) -> GateCounts:
        """Walk the micro-architecture and count registers and gates."""
        width = self.fmt.data_width + SIDEBAND_BITS
        counts = GateCounts()
        # Stage 1: one word register per input.
        counts.add_registers(self.n_inputs * width)
        # Stage 2: HPU output register (word + one-hot port select).
        counts.add_registers(self.n_inputs * (width + self.n_outputs))
        # Stage 3: registered outputs.
        counts.add_registers(self.n_outputs * width)
        # HPU logic per input: shift mux over the path field, port hold
        # register logic, EoP tracking.
        hpu_gates = self.fmt.path_bits * 2.0 + 40.0
        counts.add_logic(self.n_inputs * hpu_gates)
        counts.add_logic(self.n_inputs *
                         one_hot_encoder_gates(self.n_outputs))
        # Switch: an n_inputs-wide mux tree per output.
        counts.add_logic(self.n_outputs *
                         mux_tree_gates(self.n_inputs, width))
        # Valid/EoP distribution and miscellaneous control.
        counts.add_logic(100.0 + 30.0 * (self.n_inputs + self.n_outputs))
        return counts

    def base_area_um2(self, tech: Technology = TECH_90LP) -> float:
        """Cell area at nominal synthesis effort."""
        return self.gate_counts().area_um2(tech) * ROUTER_OVERHEAD


def link_stage_area_um2(fmt: WordFormat = WordFormat(), *,
                        tech: Technology = TECH_90LP,
                        custom_fifo: bool = True,
                        fifo_words: int = 4) -> float:
    """Area of one mesochronous link pipeline stage (FIFO + FSM)."""
    width = fmt.data_width + SIDEBAND_BITS
    fifo = fifo_area_um2(fifo_words, width, tech, custom=custom_fifo)
    fsm = GateCounts()
    fsm.add_registers(LINK_FSM_REGISTERS)
    fsm.add_logic(LINK_FSM_GATES)
    return fifo + fsm.area_um2(tech)


def mesochronous_router_area_um2(n_inputs: int, n_outputs: int,
                                 fmt: WordFormat = WordFormat(), *,
                                 tech: Technology = TECH_90LP,
                                 custom_fifo: bool = True,
                                 effort_factor: float = 1.3) -> float:
    """A router plus one link pipeline stage per input.

    This reproduces the paper's "complete arity-5 router with
    mesochronous links ... in the order of 0.032 mm^2": the router at
    high synthesis effort plus ``n_inputs`` link stages.
    """
    router = RouterAreaModel(n_inputs, n_outputs, fmt)
    stages = n_inputs * link_stage_area_um2(
        fmt, tech=tech, custom_fifo=custom_fifo)
    return router.base_area_um2(tech) * effort_factor + stages


def ni_area_um2(n_tx_channels: int, n_rx_channels: int, table_size: int,
                fmt: WordFormat = WordFormat(), *,
                tech: Technology = TECH_90LP,
                queue_words: int = 8) -> float:
    """Structural estimate of a network interface (for network roll-ups).

    The paper does not report NI synthesis; this model exists so that
    system-level cost sweeps can include NIs consistently.  Components:
    per-channel TX/RX queues, the slot table, the packetiser datapath and
    per-channel credit counters.
    """
    if n_tx_channels < 0 or n_rx_channels < 0 or table_size < 1:
        raise ConfigurationError("invalid NI geometry")
    width = fmt.data_width + SIDEBAND_BITS
    counts = GateCounts()
    queues = (n_tx_channels + n_rx_channels) * fifo_area_um2(
        queue_words, width, tech, custom=True)
    # Slot table: one channel id per slot.
    id_bits = clog2(max(n_tx_channels, 2))
    counts.add_registers(table_size * id_bits)
    counts.add_logic(comparator_gates(id_bits) * table_size / 4)
    # Packetiser: header composition register + shift/merge logic.
    counts.add_registers(2 * width)
    counts.add_logic(fmt.data_width * 3.0 + 120.0)
    # Credit counters: one per TX channel.
    counts.add_registers(n_tx_channels * 8)
    counts.add_logic(n_tx_channels * counter_gates(8))
    return queues + counts.area_um2(tech)


def aethereal_gsbe_router_area_um2(arity: int = 5,
                                   fmt: WordFormat = WordFormat(), *,
                                   tech: Technology = TECH_130,
                                   be_queue_words: int = 8) -> float:
    """Structural model of the combined GS+BE Æthereal router ([8]).

    Everything the GS-only aelite router sheds is priced here: per-input
    best-effort queues, a second virtual channel through the switch,
    per-output round-robin arbiters, BE header parsing with in-band
    decoding, and link-level flow-control counters.  Calibrated to the
    published 0.13 mm^2 at 500 MHz in 130 nm.
    """
    if arity < 1:
        raise ConfigurationError("arity must be >= 1")
    width = fmt.data_width + SIDEBAND_BITS
    counts = RouterAreaModel(arity, arity, fmt).gate_counts()
    # BE input queues (flip-flop based; these dominate).
    counts.add_registers(arity * be_queue_words * width)
    counts.add_logic(arity * (counter_gates(clog2(be_queue_words)) + 40))
    # Second VC through the switch: the output mux doubles.
    counts.add_logic(arity * mux_tree_gates(2, width))
    counts.add_logic(arity * mux_tree_gates(arity, width))
    # Per-output round-robin arbiters over `arity` requesters.
    counts.add_logic(arity * (arity * 12.0 + 30.0))
    counts.add_registers(arity * clog2(arity))
    # BE routing: in-band header decode and per-input packet state.
    counts.add_logic(arity * (fmt.data_width * 1.5 + 80.0))
    counts.add_registers(arity * 12)
    # Link-level flow control: credit counters both directions.
    counts.add_registers(2 * arity * 6)
    counts.add_logic(2 * arity * counter_gates(6))
    return counts.area_um2(tech) * GSBE_OVERHEAD
