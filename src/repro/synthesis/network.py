"""Whole-network silicon roll-ups for design-space exploration.

The per-component models (:mod:`repro.synthesis.area_model`,
:mod:`repro.synthesis.timing_model`) price one router, one link stage or
one NI; dimensioning a network needs the *sum* over an actual topology:
every router synthesised towards the operating frequency at its own
arity, every mesochronous pipeline stage on every link, and every NI
with its slot table and the channel queues the allocation actually
programs into it.

:func:`network_fmax_hz` is the complementary timing roll-up: the
highest frequency the slowest (highest-arity) router of the topology can
reach, i.e. the hard ceiling of any feasibility search over that
topology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.words import WordFormat
from repro.synthesis.area_model import link_stage_area_um2, ni_area_um2
from repro.synthesis.technology import TECH_90LP, Technology
from repro.synthesis.timing_model import (max_frequency_hz,
                                          router_area_at_frequency_um2)
from repro.topology.graph import Topology

__all__ = ["NetworkArea", "network_area", "network_area_um2",
           "network_fmax_hz"]


@dataclass(frozen=True)
class NetworkArea:
    """Component-wise cell-area breakdown of one dimensioned network."""

    routers_um2: float
    link_stages_um2: float
    nis_um2: float

    @property
    def total_um2(self) -> float:
        """Whole-network cell area."""
        return self.routers_um2 + self.link_stages_um2 + self.nis_um2

    @property
    def total_mm2(self) -> float:
        """Whole-network cell area in mm^2."""
        return self.total_um2 / 1e6

    def to_record(self) -> dict[str, float]:
        """JSON-ready breakdown (rounded to whole um^2 for stability)."""
        return {
            "routers_um2": round(self.routers_um2, 1),
            "link_stages_um2": round(self.link_stages_um2, 1),
            "nis_um2": round(self.nis_um2, 1),
            "total_um2": round(self.total_um2, 1),
        }


def network_fmax_hz(topology: Topology, fmt: WordFormat | None = None, *,
                    tech: Technology = TECH_90LP) -> float:
    """Achievable frequency ceiling: the slowest router sets the clock."""
    fmt = fmt or WordFormat()
    return min(max_frequency_hz(topology.arity(router), fmt, tech=tech)
               for router in topology.routers)


def network_area(topology: Topology, *, table_size: int,
                 frequency_hz: float, fmt: WordFormat | None = None,
                 tech: Technology = TECH_90LP,
                 channels_per_ni: dict[str, tuple[int, int]] | None = None,
                 queue_words: int = 8) -> NetworkArea:
    """Cell area of a whole network at one operating point.

    Parameters
    ----------
    channels_per_ni:
        Optional ``{ni: (n_tx, n_rx)}`` from an allocation; NIs absent
        from the map (or all NIs, when ``None``) are priced with one TX
        and one RX channel — the minimum useful NI — so unloaded
        candidates still carry their structural cost.
    """
    fmt = fmt or WordFormat()
    routers = sum(
        router_area_at_frequency_um2(topology.arity(router), frequency_hz,
                                     fmt, tech=tech)
        for router in topology.routers)
    stage = link_stage_area_um2(fmt, tech=tech)
    stages = sum(link.pipeline_stages for link in topology.links) * stage
    nis = 0.0
    for ni in topology.nis:
        n_tx, n_rx = (channels_per_ni or {}).get(ni, (1, 1))
        nis += ni_area_um2(max(n_tx, 1), max(n_rx, 1), table_size, fmt,
                           tech=tech, queue_words=queue_words)
    return NetworkArea(routers_um2=routers, link_stages_um2=stages,
                       nis_um2=nis)


def network_area_um2(topology: Topology, *, table_size: int,
                     frequency_hz: float, fmt: WordFormat | None = None,
                     tech: Technology = TECH_90LP,
                     channels_per_ni: dict[str, tuple[int, int]] | None
                     = None) -> float:
    """Total cell area of :func:`network_area` (convenience)."""
    return network_area(topology, table_size=table_size,
                        frequency_hz=frequency_hz, fmt=fmt, tech=tech,
                        channels_per_ni=channels_per_ni).total_um2
