"""Process-technology parameters and scaling rules.

The paper reports pre-layout cell area from a commercial 90 nm low-power
flow and compares against numbers published for 130 nm designs.  We have
no commercial library, so this module defines a small parameter set —
NAND2-equivalent gate area, flip-flop area, characteristic delays — whose
values are **calibrated once** against the paper's anchor points (see
DESIGN.md section 6):

* arity-5, 32-bit aelite router ≈ 14,000 µm² at moderate target frequency;
* its maximum synthesisable frequency ≈ 875 MHz;
* a custom 4-word bi-synchronous FIFO ≈ 1,500 µm² (non-custom ≈ 3,300);
* the Æthereal GS+BE router ≈ 0.13 mm² at 500 MHz in 130 nm.

Everything downstream (figures 5, 6a, 6b, the cost comparisons) is
*derived* from structural gate counts using these constants; the curve
shapes are consequences of the structure, not of per-figure fitting.

Scaling between nodes follows the classic rules the paper itself uses:
area scales with the square of the feature-size ratio; delay scales
sub-linearly (wires do not shrink as well as gates), captured by
``delay_scaling_exponent``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError

__all__ = ["Technology", "TECH_90LP", "TECH_130", "TECH_65",
           "scale_area_um2", "scale_frequency_hz"]


@dataclass(frozen=True)
class Technology:
    """Cell-library abstraction for one process node.

    Attributes
    ----------
    name:
        Human-readable node name.
    node_nm:
        Feature size in nanometres.
    nand2_area_um2:
        Area of a NAND2-equivalent gate (the unit of random logic).
    flipflop_area_um2:
        Area of a scan flip-flop.
    custom_fifo_bit_area_um2 / custom_fifo_overhead_um2:
        Per-bit area and fixed control overhead of the custom embedded
        FIFO of [18] (Wielage et al.).
    fifo_sync_overhead_um2:
        Fixed overhead (gray pointers, synchronisers, comparators) of a
        standard-cell bi-synchronous FIFO ([14]).
    t_flipflop_ps / t_mux2_ps / t_port_load_ps / t_bit_load_ps:
        Timing primitives of the router's critical path: register
        clk-to-q plus setup; one 2:1 mux stage; per-port fan-out/wiring
        penalty; per-data-bit loading penalty.
    """

    name: str
    node_nm: float
    nand2_area_um2: float
    flipflop_area_um2: float
    custom_fifo_bit_area_um2: float
    custom_fifo_overhead_um2: float
    fifo_sync_overhead_um2: float
    t_flipflop_ps: float
    t_mux2_ps: float
    t_port_load_ps: float
    t_bit_load_ps: float

    def __post_init__(self) -> None:
        if self.node_nm <= 0:
            raise ConfigurationError("node_nm must be positive")


#: 90 nm low power — the paper's synthesis target.  Calibrated: see
#: module docstring and DESIGN.md section 6.
TECH_90LP = Technology(
    name="90nm LP",
    node_nm=90,
    nand2_area_um2=3.1,
    flipflop_area_um2=14.0,
    custom_fifo_bit_area_um2=8.2,
    custom_fifo_overhead_um2=450.0,
    fifo_sync_overhead_um2=1508.0,
    t_flipflop_ps=559.0,
    t_mux2_ps=110.0,
    t_port_load_ps=45.0,
    t_bit_load_ps=0.9,
)


def _scaled(base: Technology, name: str, node_nm: float) -> Technology:
    """Derive a node by classical area/delay scaling from ``base``."""
    area = (node_nm / base.node_nm) ** 2
    delay = (node_nm / base.node_nm) ** DELAY_SCALING_EXPONENT
    return Technology(
        name=name, node_nm=node_nm,
        nand2_area_um2=base.nand2_area_um2 * area,
        flipflop_area_um2=base.flipflop_area_um2 * area,
        custom_fifo_bit_area_um2=base.custom_fifo_bit_area_um2 * area,
        custom_fifo_overhead_um2=base.custom_fifo_overhead_um2 * area,
        fifo_sync_overhead_um2=base.fifo_sync_overhead_um2 * area,
        t_flipflop_ps=base.t_flipflop_ps * delay,
        t_mux2_ps=base.t_mux2_ps * delay,
        t_port_load_ps=base.t_port_load_ps * delay,
        t_bit_load_ps=base.t_bit_load_ps * delay,
    )


#: Delay improves slower than the linear node ratio (wire-dominated
#: paths scale roughly with the square root of the feature-size ratio);
#: 0.5 reproduces the paper's "1.5x the frequency" comparison between
#: the 90 nm aelite and the 130 nm Æthereal numbers.
DELAY_SCALING_EXPONENT = 0.5

TECH_130 = _scaled(TECH_90LP, "130nm", 130)
TECH_65 = _scaled(TECH_90LP, "65nm", 65)


def scale_area_um2(area_um2: float, from_tech: Technology,
                   to_tech: Technology) -> float:
    """Scale a published cell area between nodes (quadratic rule)."""
    if area_um2 < 0:
        raise ConfigurationError("area must be >= 0")
    return area_um2 * (to_tech.node_nm / from_tech.node_nm) ** 2


def scale_frequency_hz(frequency_hz: float, from_tech: Technology,
                       to_tech: Technology) -> float:
    """Scale a published frequency between nodes (sub-linear rule)."""
    if frequency_hz <= 0:
        raise ConfigurationError("frequency must be positive")
    ratio = (from_tech.node_nm / to_tech.node_nm) ** DELAY_SCALING_EXPONENT
    return frequency_hz * ratio
