"""Timing and the area-versus-target-frequency trade-off (Figure 5).

**Critical path.**  The aelite router's path runs from a pipeline
register through the HPU's shift mux and the switch's mux tree to the
next register, loaded by the port fan-out and the data-bus width:

``T = t_ff + t_mux2 * ceil(log2(arity)) + t_port_load * arity
   + t_bit_load * data_width``

with technology constants from :mod:`repro.synthesis.technology`.  The
maximum frequency is ``1 / T``.

**Effort curve.**  Synthesis trades area for speed: near the library's
limit the tool upsizes drivers and duplicates logic.  The canonical
shape — flat, then a knee, then saturation at the achievable maximum —
is modelled as

``area(f) = base_area * (1 + k * (f / f_max) ** p)``  for f <= f_max,

clamped at ``f_max`` beyond (requesting more than the maximum returns
the maximum-effort netlist, which is why Figure 5 saturates around
875 MHz).  ``k = 0.30`` and ``p = 8`` reproduce the paper's anchors:
less than +7 % up to 650 MHz, a visible knee after 750 MHz, and +30 %
at saturation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.core.words import WordFormat
from repro.synthesis.area_model import RouterAreaModel
from repro.synthesis.gates import clog2
from repro.synthesis.technology import TECH_90LP, Technology

__all__ = ["critical_path_ps", "max_frequency_hz", "effort_factor",
           "router_area_at_frequency_um2", "SynthesisPoint",
           "frequency_sweep", "MAX_EFFORT_FACTOR"]

#: Effort-curve constants (see module docstring).
EFFORT_K = 0.30
EFFORT_P = 8.0

#: Area multiplier of a maximum-frequency netlist.
MAX_EFFORT_FACTOR = 1.0 + EFFORT_K


def critical_path_ps(arity: int, fmt: WordFormat = WordFormat(), *,
                     tech: Technology = TECH_90LP) -> float:
    """Critical-path delay of an aelite router instance."""
    if arity < 1:
        raise ConfigurationError("arity must be >= 1")
    return (tech.t_flipflop_ps +
            tech.t_mux2_ps * clog2(arity) +
            tech.t_port_load_ps * arity +
            tech.t_bit_load_ps * fmt.data_width)


def max_frequency_hz(arity: int, fmt: WordFormat = WordFormat(), *,
                     tech: Technology = TECH_90LP) -> float:
    """Maximum synthesisable frequency of a router instance."""
    return 1e12 / critical_path_ps(arity, fmt, tech=tech)


def effort_factor(target_hz: float, fmax_hz: float) -> float:
    """Area multiplier of synthesis at a target frequency.

    Clamped at the maximum-effort factor for targets at or beyond the
    achievable maximum.
    """
    if target_hz <= 0 or fmax_hz <= 0:
        raise ConfigurationError("frequencies must be positive")
    utilisation = min(target_hz / fmax_hz, 1.0)
    return 1.0 + EFFORT_K * utilisation ** EFFORT_P


@dataclass(frozen=True)
class SynthesisPoint:
    """One synthesis run's outcome."""

    target_mhz: float
    achieved_mhz: float
    area_um2: float

    @property
    def area_mm2(self) -> float:
        """Cell area in mm^2."""
        return self.area_um2 / 1e6


def router_area_at_frequency_um2(arity: int, target_hz: float,
                                 fmt: WordFormat = WordFormat(), *,
                                 tech: Technology = TECH_90LP) -> float:
    """Cell area of a router synthesised towards ``target_hz``."""
    model = RouterAreaModel(arity, arity, fmt)
    fmax = max_frequency_hz(arity, fmt, tech=tech)
    return model.base_area_um2(tech) * effort_factor(target_hz, fmax)


def frequency_sweep(arity: int, targets_hz: list[float],
                    fmt: WordFormat = WordFormat(), *,
                    tech: Technology = TECH_90LP) -> list[SynthesisPoint]:
    """Synthesise a router across target frequencies (Figure 5's sweep)."""
    fmax = max_frequency_hz(arity, fmt, tech=tech)
    points = []
    for target in targets_hz:
        area = router_area_at_frequency_um2(arity, target, fmt, tech=tech)
        points.append(SynthesisPoint(
            target_mhz=target / 1e6,
            achieved_mhz=min(target, fmax) / 1e6,
            area_um2=area))
    return points
