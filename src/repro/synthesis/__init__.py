"""Calibrated synthesis models: area, timing, and cost comparisons."""

from repro.synthesis.area_model import (RouterAreaModel,
                                        aethereal_gsbe_router_area_um2,
                                        link_stage_area_um2,
                                        mesochronous_router_area_um2,
                                        ni_area_um2)
from repro.synthesis.comparison import (AeliteVsAethereal, ComparisonRow,
                                        aelite_vs_aethereal,
                                        related_work_table,
                                        throughput_per_area)
from repro.synthesis.gates import GateCounts, fifo_area_um2
from repro.synthesis.network import (NetworkArea, network_area,
                                     network_area_um2, network_fmax_hz)
from repro.synthesis.technology import (TECH_65, TECH_90LP, TECH_130,
                                        Technology, scale_area_um2,
                                        scale_frequency_hz)
from repro.synthesis.timing_model import (MAX_EFFORT_FACTOR, SynthesisPoint,
                                          critical_path_ps, effort_factor,
                                          frequency_sweep,
                                          max_frequency_hz,
                                          router_area_at_frequency_um2)

__all__ = [
    "Technology", "TECH_90LP", "TECH_130", "TECH_65",
    "scale_area_um2", "scale_frequency_hz",
    "GateCounts", "fifo_area_um2",
    "RouterAreaModel", "link_stage_area_um2", "ni_area_um2",
    "mesochronous_router_area_um2", "aethereal_gsbe_router_area_um2",
    "critical_path_ps", "max_frequency_hz", "effort_factor",
    "router_area_at_frequency_um2", "SynthesisPoint", "frequency_sweep",
    "MAX_EFFORT_FACTOR",
    "NetworkArea", "network_area", "network_area_um2", "network_fmax_hz",
    "ComparisonRow", "related_work_table", "AeliteVsAethereal",
    "aelite_vs_aethereal", "throughput_per_area",
]
