"""Structural gate counting: the primitives of the area model.

Area estimates are composed from two primitives — flip-flops and
NAND2-equivalent gates of random logic — plus the FIFO macros.  The
:class:`GateCounts` accumulator keeps the two populations separate so the
same structural description prices out on any
:class:`~repro.synthesis.technology.Technology`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.synthesis.technology import Technology

__all__ = ["GateCounts", "mux_tree_gates", "one_hot_encoder_gates",
           "counter_gates", "comparator_gates", "fifo_area_um2"]

#: NAND2 equivalents of one 2:1 mux bit.
MUX2_NAND_EQUIV = 1.75


@dataclass
class GateCounts:
    """An accumulating structural bill of materials."""

    flipflops: float = 0.0
    nand2: float = 0.0

    def add_registers(self, bits: float) -> "GateCounts":
        """Add a register bank of ``bits`` flip-flops."""
        if bits < 0:
            raise ConfigurationError("register bits must be >= 0")
        self.flipflops += bits
        return self

    def add_logic(self, nand2_equiv: float) -> "GateCounts":
        """Add random logic measured in NAND2 equivalents."""
        if nand2_equiv < 0:
            raise ConfigurationError("gate count must be >= 0")
        self.nand2 += nand2_equiv
        return self

    def merge(self, other: "GateCounts") -> "GateCounts":
        """Accumulate another bill of materials into this one."""
        self.flipflops += other.flipflops
        self.nand2 += other.nand2
        return self

    def area_um2(self, tech: Technology) -> float:
        """Price the bill on a technology."""
        return (self.flipflops * tech.flipflop_area_um2 +
                self.nand2 * tech.nand2_area_um2)


def mux_tree_gates(n_inputs: int, width_bits: int) -> float:
    """NAND2 equivalents of an ``n``-input mux of ``width_bits`` bits.

    A tree of ``n - 1`` two-input muxes per bit.
    """
    if n_inputs < 1 or width_bits < 0:
        raise ConfigurationError("mux needs >= 1 input and width >= 0")
    return (n_inputs - 1) * width_bits * MUX2_NAND_EQUIV


def one_hot_encoder_gates(n_outputs: int) -> float:
    """NAND2 equivalents of a binary-to-one-hot port encoder."""
    if n_outputs < 1:
        raise ConfigurationError("encoder needs >= 1 output")
    return n_outputs * 2.0


def counter_gates(bits: int) -> float:
    """NAND2 equivalents of an up/down counter's increment logic.

    The counter's state bits are registers and must be added separately.
    """
    if bits < 0:
        raise ConfigurationError("counter bits must be >= 0")
    return bits * 6.0


def comparator_gates(bits: int) -> float:
    """NAND2 equivalents of an equality comparator."""
    if bits < 0:
        raise ConfigurationError("comparator bits must be >= 0")
    return bits * 3.0


def fifo_area_um2(words: int, width_bits: int, tech: Technology, *,
                  custom: bool = True) -> float:
    """Area of a bi-synchronous FIFO macro.

    ``custom=True`` prices the embedded FIFO of [18] (the paper quotes
    ~1,500 µm² for 4x32); ``custom=False`` prices a standard-cell
    flip-flop FIFO with gray-pointer synchronisers ([14]; ~3,300 µm²).
    """
    if words < 1 or width_bits < 1:
        raise ConfigurationError("FIFO needs >= 1 word and >= 1 bit")
    bits = words * width_bits
    if custom:
        return (bits * tech.custom_fifo_bit_area_um2 +
                tech.custom_fifo_overhead_um2)
    return (bits * tech.flipflop_area_um2 + tech.fifo_sync_overhead_um2)


def clog2(n: int) -> int:
    """Ceiling log2 for port/counter sizing (min 1)."""
    if n < 1:
        raise ConfigurationError("clog2 needs n >= 1")
    return max(1, math.ceil(math.log2(n)))
