"""repro — a from-scratch reproduction of the aelite network on chip.

aelite (Hansson, Subburaman, Goossens — DATE 2009) is a guaranteed-
services-only NoC built on flit-synchronous time-division multiplexing:
contention-free routing via slot tables, a three-stage arbiterless router,
mesochronous link pipeline stages, and asynchronous wrappers that make the
whole network logically synchronous at flit granularity without global
clock distribution.

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — slot tables, allocation, analytical bounds;
* :mod:`repro.topology` — structure, builders, mapping, routing;
* :mod:`repro.router` / :mod:`repro.link` / :mod:`repro.ni` /
  :mod:`repro.wrapper` — cycle-accurate hardware models;
* :mod:`repro.clocking` — synchronous/mesochronous/plesiochronous clocks;
* :mod:`repro.simulation` — event kernel, both GS simulators, and the
  unified :class:`~repro.simulation.backend.SimulationBackend` protocol
  (``SimRequest``/``SimResult``) every simulator is driven through;
* :mod:`repro.baseline` — the Æthereal GS+BE comparison network (also a
  backend);
* :mod:`repro.synthesis` — calibrated area/frequency models;
* :mod:`repro.usecase` — the Section VII 200-connection use case;
* :mod:`repro.experiments` — one module per paper figure/table;
* :mod:`repro.campaign` — declarative scenario campaigns (topology ×
  traffic × backend/clocking × seed grids, plus ``mode="serve"`` churn
  scenarios) executed over a multiprocessing pool with deterministic,
  byte-stable JSON reports (``python -m repro campaign --demo``);
* :mod:`repro.service` — the online NoC control plane: admission-
  controlled session churn over a live allocation, with per-accept
  analytical bound quotes and the composability invariant re-checked
  on every transition (``python -m repro serve --demo``);
* :mod:`repro.design` — the design-space explorer: dimension a network
  from a workload via analytical lower-bound pruning, annealed mapping
  optimisation, probe-cached feasibility bisection and synthesis cost
  models, fanned out over the campaign pool into a byte-deterministic
  Pareto front (``python -m repro design --demo``), with a
  ``spare_capacity`` knob that provisions headroom for failure
  tolerance;
* :mod:`repro.faults` — fault injection and degraded-mode guarantees:
  seeded link/router failure schedules, guarantee-preserving
  re-allocation over surviving routes
  (:meth:`~repro.core.allocation.Allocation.rebuild_excluding`),
  fault events in the control plane, and byte-deterministic
  survivability reports (``python -m repro faults --demo``).
"""

from __future__ import annotations

import importlib

__version__ = "0.1.0"

_EXPORTS: dict[str, str] = {
    # The most common entry points, re-exported for convenience.
    "WordFormat": "repro.core.words",
    "ChannelSpec": "repro.core.connection",
    "ConnectionSpec": "repro.core.connection",
    "Application": "repro.core.application",
    "UseCase": "repro.core.application",
    "SlotTable": "repro.core.slot_table",
    "SlotAllocator": "repro.core.allocation",
    "Allocation": "repro.core.allocation",
    "NocConfiguration": "repro.core.configuration",
    "configure": "repro.core.configuration",
    "analyse": "repro.core.analysis",
    "Topology": "repro.topology.graph",
    "mesh": "repro.topology.builders",
    "concentrated_mesh": "repro.topology.builders",
    "FlitLevelSimulator": "repro.simulation.flitsim",
    "DetailedNetwork": "repro.simulation.cyclesim",
    "SimRequest": "repro.simulation.backend",
    "SimResult": "repro.simulation.backend",
    "SimulationBackend": "repro.simulation.backend",
    "create_backend": "repro.simulation.backend",
    "CampaignSpec": "repro.campaign.spec",
    "CampaignRunner": "repro.campaign.runner",
    "DesignExplorer": "repro.design.explorer",
    "DesignSpace": "repro.design.space",
    "DesignSpec": "repro.design.space",
    "FaultSpec": "repro.faults.model",
    "FaultEvent": "repro.faults.model",
    "FaultSchedule": "repro.faults.model",
    "SessionService": "repro.service.controller",
    "ChurnSpec": "repro.service.churn",
    "Telemetry": "repro.telemetry.hub",
    "NullTelemetry": "repro.telemetry.hub",
    "run_profiled": "repro.telemetry.profiling",
    "MB": "repro.core.connection",
    "GB": "repro.core.connection",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    """Resolve top-level exports lazily."""
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
