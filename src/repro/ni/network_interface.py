"""Cycle-accurate network-interface model.

The NI is where aelite's guaranteed services are enforced (Section III):

* **TX side** — one queue per outgoing channel, drained only in the
  channel's TDM slots.  At the first cycle of each owned slot the NI takes
  one flit from the packetiser and drives its words in the slot's
  ``flit_size`` cycles.  Unowned or data-less slots leave the link idle:
  unused resources stay idle rather than being redistributed, which is
  precisely what makes the services composable.
* **end-to-end flow control** — a credit counter per TX channel,
  initialised to the remote queue's buffer capacity, decremented per
  payload word sent and replenished by credits piggybacked on headers of
  the paired reverse channel.  When credits run out the channel stalls
  (back-pressure): an oversubscribing application slows *itself* down,
  never its neighbours.
* **RX side** — reassembles packets per destination queue, delivers
  payload to the (modelled) IP sink, and accumulates consumption credits
  for piggybacking.

The IP-facing side abstracts the paper's bi-synchronous clock-domain
crossing: messages appear in TX queues via :meth:`enqueue_message` (called
by traffic generators) with the GALS decoupling folded into the message's
``created_cycle``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exceptions import (ConfigurationError, FlowControlError,
                                   SimulationError)
from repro.core.flits import Flit
from repro.core.slot_table import SlotTable
from repro.core.words import (WordFormat, header_credits, header_queue)
from repro.ni.packetizer import Packetizer, TxMessage
from repro.simulation.monitors import (DeliveryRecord, InjectionRecord,
                                       StatsCollector)
from repro.simulation.signals import IDLE, Phit, WordWire

__all__ = ["TxChannelConfig", "RxQueueConfig", "NetworkInterface"]


@dataclass(frozen=True)
class TxChannelConfig:
    """Static configuration of one outgoing channel at an NI.

    Attributes
    ----------
    name:
        Channel name (matches the allocation).
    path_field:
        Pre-encoded source route to the destination NI.
    queue_id:
        Destination queue id at the remote NI.
    initial_credits:
        Remote buffer capacity in words, or ``None`` to disable end-to-end
        flow control for this channel.
    credit_source_queue:
        Local RX queue whose consumption credits ride on this channel's
        headers (the reverse channel of a connection), or ``None``.
    max_packet_flits:
        Packet-length limit for the packetiser.
    """

    name: str
    path_field: int
    queue_id: int
    initial_credits: int | None = None
    credit_source_queue: int | None = None
    max_packet_flits: int = 4


@dataclass(frozen=True)
class RxQueueConfig:
    """Static configuration of one incoming queue at an NI.

    Attributes
    ----------
    queue_id:
        Local queue index (as encoded in arriving headers).
    channel:
        Name of the channel that feeds this queue.
    capacity_words:
        Buffer capacity (only enforced when flow control is on).
    credit_target_tx:
        Local TX channel whose credit counter is replenished by credits
        arriving in this queue's headers, or ``None``.
    sink_words_per_cycle:
        IP consumption rate; ``None`` models an always-ready sink.
    """

    queue_id: int
    channel: str
    capacity_words: int = 64
    credit_target_tx: str | None = None
    sink_words_per_cycle: float | None = None


@dataclass
class _TxState:
    config: TxChannelConfig
    packetizer: Packetizer
    credits: int | None


@dataclass
class _RxState:
    config: RxQueueConfig
    buffered_words: int = 0
    pending_credits: int = 0
    sink_progress: float = 0.0
    received_words: int = 0


class NetworkInterface:
    """TDM-scheduled NI (implements ``Clocked``)."""

    def __init__(self, name: str, table: SlotTable, fmt: WordFormat, *,
                 tx_channels: list[TxChannelConfig] | None = None,
                 rx_queues: list[RxQueueConfig] | None = None,
                 stats: StatsCollector | None = None):
        self.name = name
        self.table = table
        self.fmt = fmt
        self.stats = stats
        self.inputs = [WordWire(f"{name}.in")]
        self.outputs = [WordWire(f"{name}.out")]
        self._tx: dict[str, _TxState] = {}
        self._rx: dict[int, _RxState] = {}
        for cfg in tx_channels or []:
            self.add_tx_channel(cfg)
        for cfg in rx_queues or []:
            self.add_rx_queue(cfg)
        # TX emission state.
        self._emitting: Flit | None = None
        self._emit_pos = 0
        self._emit_channel: str | None = None
        # RX reassembly state.
        self._rx_expect_header = True
        self._rx_queue_current: int | None = None
        self._pending_input: Phit = IDLE
        # Counters.
        self.slots_seen = 0
        self.flits_injected = 0
        self.flits_received = 0
        self.stalled_slots = 0

    # -- construction -------------------------------------------------------

    def add_tx_channel(self, cfg: TxChannelConfig) -> None:
        """Register an outgoing channel."""
        if cfg.name in self._tx:
            raise ConfigurationError(
                f"NI {self.name!r}: duplicate TX channel {cfg.name!r}")
        packetizer = Packetizer(cfg.name, cfg.path_field, cfg.queue_id,
                                self.fmt,
                                max_packet_flits=cfg.max_packet_flits)
        self._tx[cfg.name] = _TxState(cfg, packetizer, cfg.initial_credits)

    def add_rx_queue(self, cfg: RxQueueConfig) -> None:
        """Register an incoming queue."""
        if cfg.queue_id in self._rx:
            raise ConfigurationError(
                f"NI {self.name!r}: duplicate RX queue {cfg.queue_id}")
        if cfg.queue_id > self.fmt.max_queue:
            raise ConfigurationError(
                f"NI {self.name!r}: queue id {cfg.queue_id} exceeds header "
                f"field ({self.fmt.queue_bits} bits)")
        self._rx[cfg.queue_id] = _RxState(cfg)

    # -- IP-facing API ---------------------------------------------------------

    def enqueue_message(self, channel: str, message: TxMessage) -> None:
        """Queue a message for transmission (called by traffic generators)."""
        self._tx_state(channel).packetizer.enqueue(message)

    def pending_words(self, channel: str) -> int:
        """Words waiting in a channel's TX queue."""
        return self._tx_state(channel).packetizer.pending_words

    def credits_of(self, channel: str) -> int | None:
        """Current credit counter of a TX channel."""
        return self._tx_state(channel).credits

    def _tx_state(self, channel: str) -> _TxState:
        try:
            return self._tx[channel]
        except KeyError:
            raise ConfigurationError(
                f"NI {self.name!r} has no TX channel {channel!r}")

    # -- Clocked protocol ----------------------------------------------------------

    def compute(self, cycle: int, time_ps: int) -> None:
        """Sample the input wire; pick the flit at slot boundaries."""
        self._pending_input = self.inputs[0].sample()
        if cycle % self.fmt.flit_size == 0:
            self._begin_slot(cycle, time_ps)

    def commit(self, cycle: int, time_ps: int) -> None:
        """Drive the current emission word; absorb the sampled input."""
        self._drive_tx(cycle, time_ps)
        self._absorb_rx(cycle, time_ps)

    # -- TX path ---------------------------------------------------------------

    def _begin_slot(self, cycle: int, time_ps: int) -> None:
        slot_index = cycle // self.fmt.flit_size
        row = self.table.owner_row()
        slot = slot_index % self.table.size
        self.slots_seen += 1
        owner = row[slot]
        self._emitting = None
        self._emit_pos = 0
        self._emit_channel = None
        if owner is None or owner not in self._tx:
            return
        tx = self._tx[owner]
        if tx.packetizer.has_data:
            # Credits ride only on headers, so continuation flits collect
            # none (they would be lost otherwise).
            starting_packet = not tx.packetizer.continuing
            credits_to_carry = self._collect_credits(tx) if \
                starting_packet else 0
            needed = tx.packetizer.words_for_next_flit()
            if tx.credits is not None and tx.credits < needed:
                # Data is credit-stalled; the slot is not wasted if there
                # are consumption credits to return — a header-only packet
                # costs no end-to-end credits (as in Æthereal).
                self.stalled_slots += 1
                if credits_to_carry:
                    self._emitting = tx.packetizer.credit_only_flit(
                        credits_to_carry)
                    self._emit_channel = owner
                    self.flits_injected += 1
                return
            next_slot = (slot + 1) % self.table.size
            flit = tx.packetizer.next_flit(
                credits=credits_to_carry,
                next_slot_is_ours=row[next_slot] == owner)
            if tx.credits is not None:
                tx.credits -= flit.meta.payload_bytes // \
                    self.fmt.bytes_per_word
            self._emitting = flit
            self._emit_channel = owner
            self.flits_injected += 1
            if self.stats is not None:
                self.stats.record_injection(InjectionRecord(
                    channel=owner, message_id=flit.meta.message_id,
                    sequence=flit.meta.sequence, slot_index=slot_index,
                    cycle=cycle, time_ps=time_ps))
        else:
            credits_to_carry = self._collect_credits(tx)
            if not credits_to_carry:
                return
            # Nothing to send but credits to return: header-only packet.
            self._emitting = tx.packetizer.credit_only_flit(credits_to_carry)
            self._emit_channel = owner
            self.flits_injected += 1

    def _collect_credits(self, tx: _TxState) -> int:
        if tx.config.credit_source_queue is None:
            return 0
        rx = self._rx.get(tx.config.credit_source_queue)
        if rx is None:
            return 0
        take = min(rx.pending_credits, self.fmt.max_credits)
        rx.pending_credits -= take
        return take

    def _drive_tx(self, cycle: int, time_ps: int) -> None:
        if self._emitting is None:
            return
        flit = self._emitting
        pos = self._emit_pos
        last = pos == self.fmt.flit_size - 1
        self.outputs[0].drive(Phit(
            word=flit.words[pos], valid=True,
            eop=flit.eop and last, flit=flit, word_index=pos))
        if last:
            self._emitting = None
            self._emit_pos = 0
        else:
            self._emit_pos += 1

    # -- RX path ------------------------------------------------------------------

    def _absorb_rx(self, cycle: int, time_ps: int) -> None:
        self._drain_sinks()
        phit = self._pending_input
        self._pending_input = IDLE
        if not phit.valid:
            return
        if self._rx_expect_header:
            queue_id = header_queue(phit.word, self.fmt)
            credits = header_credits(phit.word, self.fmt)
            rx = self._rx.get(queue_id)
            if rx is None:
                raise SimulationError(
                    f"NI {self.name!r}: packet for unknown queue {queue_id}")
            self._rx_queue_current = queue_id
            self._rx_expect_header = False
            if credits and rx.config.credit_target_tx is not None:
                target = self._tx_state(rx.config.credit_target_tx)
                if target.credits is not None:
                    target.credits += credits
        else:
            if self._rx_queue_current is None:
                raise SimulationError(
                    f"NI {self.name!r}: payload word outside any packet")
            rx = self._rx[self._rx_queue_current]
            rx.buffered_words += 1
            rx.received_words += 1
            if rx.config.sink_words_per_cycle is None:
                # Always-ready sink: consumed immediately, credit granted.
                rx.buffered_words = 0
                rx.pending_credits += 1
            elif rx.buffered_words > rx.config.capacity_words:
                raise FlowControlError(
                    f"NI {self.name!r}: queue {rx.config.queue_id} "
                    f"overflowed {rx.config.capacity_words} words — "
                    "end-to-end flow control failed")
        # End-of-flit bookkeeping: the last word of each flit closes the
        # word group; EoP additionally closes the packet.
        if phit.word_index == self.fmt.flit_size - 1:
            self.flits_received += 1
            meta = phit.flit.meta if phit.flit is not None else None
            if meta is not None and meta.message_last and \
                    meta.message_id >= 0:
                self._record_delivery(meta, cycle, time_ps)
        if phit.eop:
            self._rx_expect_header = True
            self._rx_queue_current = None

    def _drain_sinks(self) -> None:
        for rx in self._rx.values():
            rate = rx.config.sink_words_per_cycle
            if rate is None or rx.buffered_words == 0:
                continue
            rx.sink_progress += rate
            consume = min(rx.buffered_words, int(rx.sink_progress))
            if consume > 0:
                rx.sink_progress -= consume
                rx.buffered_words -= consume
                rx.pending_credits += consume

    def _record_delivery(self, meta, cycle: int, time_ps: int) -> None:
        if self.stats is None:
            return
        self.stats.record_delivery(DeliveryRecord(
            channel=meta.channel, message_id=meta.message_id,
            created_cycle=meta.created_cycle,
            created_time_ps=meta.created_time_ps,
            delivered_cycle=cycle, delivered_time_ps=time_ps,
            payload_bytes=meta.message_bytes))

    def __repr__(self) -> str:
        return (f"NetworkInterface({self.name!r}, {len(self._tx)} tx, "
                f"{len(self._rx)} rx)")
