"""Packet assembly: turning queued messages into flit word streams.

The TX side of a network interface holds a queue of messages per channel.
At every TDM slot owned by the channel, the packetiser produces one flit:

* the **first flit of a packet** carries the header word (source route,
  destination queue id, piggybacked credits) plus ``flit_size - 1``
  payload words;
* **continuation flits** — emitted when the *next* slot also belongs to
  the same channel and the packet has not reached ``max_packet_flits`` —
  carry a full ``flit_size`` payload words, amortising the header exactly
  as Æthereal packets spanning consecutive slots do;
* the explicit end-of-packet marker is set on the last flit of the packet.

Flits never mix payload from two messages; this keeps per-message latency
accounting exact and is (slightly) conservative for throughput, matching
the allocator's header-per-flit worst-case accounting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.exceptions import ConfigurationError
from repro.core.flits import Flit, FlitMeta
from repro.core.words import WordFormat, encode_header

__all__ = ["TxMessage", "Packetizer"]


@dataclass
class TxMessage:
    """A message waiting in a channel's TX queue.

    ``words`` are the payload words still to be sent; ``created_cycle`` is
    when the producing IP made the message available (latency measurement
    starts there).
    """

    message_id: int
    words: deque[int]
    created_cycle: int
    created_time_ps: int = -1
    total_words: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.words:
            raise ConfigurationError(
                f"message {self.message_id} has no payload words")
        if self.total_words == 0:
            self.total_words = len(self.words)


class Packetizer:
    """Per-channel TX flit builder.

    Parameters
    ----------
    channel:
        Channel name (stamped into flit metadata).
    path_field:
        Pre-encoded source-route field for this channel's path.
    queue_id:
        Destination queue id at the receiving NI.
    fmt:
        Word/flit geometry.
    max_packet_flits:
        Longest packet in flits; 1 disables continuation flits.
    """

    def __init__(self, channel: str, path_field: int, queue_id: int,
                 fmt: WordFormat, *, max_packet_flits: int = 4):
        if max_packet_flits < 1:
            raise ConfigurationError("max_packet_flits must be >= 1")
        self.channel = channel
        self.path_field = path_field
        self.queue_id = queue_id
        self.fmt = fmt
        self.max_packet_flits = max_packet_flits
        self._messages: deque[TxMessage] = deque()
        self._packet_flits_open = 0  # flits already sent in the open packet
        self._sequence = 0
        self.queued_words = 0

    # -- queue management ------------------------------------------------------

    def enqueue(self, message: TxMessage) -> None:
        """Add a message to the back of the TX queue."""
        self._messages.append(message)
        self.queued_words += len(message.words)

    @property
    def pending_words(self) -> int:
        """Payload words waiting to be sent."""
        return self.queued_words

    @property
    def has_data(self) -> bool:
        """True when at least one message is queued."""
        return bool(self._messages)

    @property
    def continuing(self) -> bool:
        """True when the next flit continues an open packet (no header)."""
        return self._packet_flits_open > 0

    def words_for_next_flit(self) -> int:
        """Payload words the next flit would carry (for credit checks)."""
        if not self._messages:
            return 0
        head = self._messages[0]
        capacity = (self.fmt.flit_size if self._packet_flits_open
                    else self.fmt.payload_words_per_flit)
        return min(capacity, len(head.words))

    # -- flit production ---------------------------------------------------------

    def next_flit(self, *, credits: int, next_slot_is_ours: bool) -> Flit:
        """Build the flit for the current slot.

        ``credits`` is the piggyback value for the header (0 on
        continuation flits); ``next_slot_is_ours`` enables keeping the
        packet open into the next slot.  Raises when no data is queued —
        callers must check :attr:`has_data` first.
        """
        if not self._messages:
            raise ConfigurationError(
                f"channel {self.channel!r}: next_flit() without queued data")
        head = self._messages[0]
        continuation = self._packet_flits_open > 0
        if continuation:
            payload_capacity = self.fmt.flit_size
            words: list[int] = []
        else:
            payload_capacity = self.fmt.payload_words_per_flit
            words = [encode_header([], self.queue_id, credits, self.fmt) |
                     self.path_field]
        take = min(payload_capacity, len(head.words))
        payload = [head.words.popleft() for _ in range(take)]
        words.extend(payload)
        self.queued_words -= take

        message_done = not head.words
        if message_done:
            self._messages.popleft()

        flits_after = self._packet_flits_open + 1
        more_data = bool(self._messages) or not message_done
        keep_open = (next_slot_is_ours and more_data and
                     flits_after < self.max_packet_flits and
                     not message_done)
        # A packet never spans two messages: message end forces EoP so the
        # next message starts with a fresh header (and fresh credits).
        eop = not keep_open
        self._packet_flits_open = 0 if eop else flits_after

        meta = FlitMeta(channel=self.channel, sequence=self._sequence,
                        payload_bytes=take * self.fmt.bytes_per_word,
                        created_cycle=head.created_cycle,
                        created_time_ps=head.created_time_ps,
                        message_id=head.message_id,
                        message_last=message_done,
                        message_bytes=(head.total_words *
                                       self.fmt.bytes_per_word))
        self._sequence += 1
        return Flit.data(words, self.fmt, eop=eop,
                         has_header=not continuation, meta=meta)

    def credit_only_flit(self, credits: int) -> Flit:
        """A header-only packet used purely to return credits."""
        words = [encode_header([], self.queue_id, credits, self.fmt) |
                 self.path_field]
        meta = FlitMeta(channel=self.channel, sequence=self._sequence,
                        payload_bytes=0, created_cycle=-1)
        self._sequence += 1
        self._packet_flits_open = 0
        return Flit.data(words, self.fmt, eop=True, has_header=True,
                         meta=meta)
