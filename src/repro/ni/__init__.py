"""Network interfaces: TDM injection, packetisation, end-to-end credits."""

from repro.ni.network_interface import (NetworkInterface, RxQueueConfig,
                                        TxChannelConfig)
from repro.ni.packetizer import Packetizer, TxMessage

__all__ = ["NetworkInterface", "TxChannelConfig", "RxQueueConfig",
           "Packetizer", "TxMessage"]
