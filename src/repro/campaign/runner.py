"""Sharded, checkpointed, work-stealing campaign execution.

:class:`CampaignRunner` expands a :class:`~repro.campaign.spec.
CampaignSpec` into its run grid, partitions it into deterministic
shards (:mod:`repro.campaign.fabric`) and executes every run — in
process, or fanned out over worker processes that pull adaptive
batches from a shared dispatch loop.  Completed runs stream into an
incremental aggregate (and, when a workdir is given, into per-shard
JSONL journals), so huge campaigns neither hold all results in memory
nor lose progress to a kill.

Determinism is the contract: every run derives all of its randomness
from :func:`~repro.campaign.spec.derive_seed` over the run id, each
worker rebuilds its configuration from the spec alone, and the
canonical report orders records by run id.  Serial, parallel and
killed-then-resumed executions of the same spec therefore produce
*byte-identical* reports, which is what lets campaign trajectories be
diffed across commits.

Dispatch design, for the curious:

* the parent owns one duplex pipe per worker — a worker killed
  mid-message corrupts only its own channel, which the parent treats
  as a death and re-queues the worker's incomplete runs;
* batches are sized adaptively (``pending / (workers * 4)``, capped)
  so dispatch overhead amortises early and the tail self-shrinks;
* when the queue drains, idle workers *steal* the uncompleted tail of
  the slowest outstanding batch (first finished copy wins — runs are
  deterministic, so duplicates are byte-identical);
* workers intern the scenario library once at spawn; batches carry
  only ``(run_id, scenario_name, seed)`` triples, never re-pickled
  scenario objects.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Iterator

from repro.campaign.fabric import (CampaignWorkdir, Shard,
                                   default_shard_size, iter_report_chunks,
                                   shard_campaign)
from repro.campaign.spec import (CampaignSpec, RunSpec, SyntheticSpec,
                                 derive_seed)
from repro.core.configuration import configure
from repro.core.exceptions import (AllocationError, ConfigurationError,
                                   TopologyError)
from repro.simulation.backend import SimRequest, create_backend
from repro.telemetry.hub import coalesce

__all__ = ["CampaignRunner", "CampaignResult", "execute_run"]

#: A run is flagged a straggler when it took at least this many times
#: the campaign's median per-run wall time (and a non-trivial absolute
#: amount); stragglers also gate the dispatcher's steal decisions.
_STRAGGLER_RATIO = 3.0
_STRAGGLER_FLOOR_S = 0.05

#: Upper bound on adaptive batch size; small enough that a stolen tail
#: is never catastrophic, large enough to amortise dispatch overhead.
_MAX_BATCH = 128

#: Batches kept in flight per worker so pipes never go idle between
#: dispatches.
_PIPELINE_DEPTH = 2

#: Slowest runs retained for the straggler report (memory cap on
#: million-run campaigns; median comes from the full wall list).
_TOP_WALLS = 128


def execute_run(run: RunSpec) -> dict[str, object]:
    """Execute one run and return its JSON-ready record.

    Top-level (picklable) so a worker process can execute it.  The whole
    design flow happens inside: build topology, generate the seeded
    workload, allocate, attach traffic, simulate through the backend
    protocol — or, for ``mode="serve"`` scenarios, run the online
    control plane over a seeded churn stream.  An infeasible allocation
    is a *result* (status ``allocation_failed``), not a crash —
    campaigns sweep into infeasible corners on purpose.
    """
    scenario = run.scenario
    if scenario.mode == "serve":
        return _execute_serve_run(run)
    if scenario.mode == "replay":
        return _execute_replay_run(run)
    if scenario.mode == "faults":
        return _execute_faults_run(run)
    if scenario.mode == "fairness":
        return _execute_fairness_run(run)
    if scenario.mode == "synthetic":
        return _execute_synthetic_run(run)
    if scenario.mode == "design":
        from repro.design.explorer import execute_design_run
        return execute_design_run(run)
    record: dict[str, object] = {
        "run_id": run.run_id,
        "scenario": scenario.name,
        "seed": run.seed,
        "backend": scenario.backend,
        "clocking": scenario.clocking,
        "topology": scenario.topology.label,
        "traffic": scenario.traffic.pattern,
        "n_slots": scenario.n_slots,
    }
    try:
        topology = scenario.topology.build()
        use_case, mapping = scenario.workload.build(
            topology, derive_seed(run.run_seed, "workload", run.seed))
        config = configure(
            topology, use_case, table_size=scenario.table_size,
            frequency_hz=scenario.frequency_mhz * 1e6, mapping=mapping,
            require_met=False)
        options: dict[str, object] = {}
        if scenario.backend == "cycle":
            options["clocking"] = scenario.clocking
        backend = create_backend(scenario.backend, config, **options)
        traffic = scenario.traffic.build(
            config, derive_seed(run.run_seed, "traffic", run.seed))
        result = backend.run(SimRequest(
            n_slots=scenario.n_slots, traffic=traffic,
            seed=run.run_seed % (2 ** 31)))
    except AllocationError as exc:
        record["status"] = "allocation_failed"
        record["error"] = str(exc)
        return record
    except ConfigurationError as exc:
        record["status"] = "configuration_failed"
        record["error"] = str(exc)
        return record
    record["status"] = "ok"
    record["result"] = result.to_record()
    return record


def _safe_execute_run(run: RunSpec) -> dict[str, object]:
    """:func:`execute_run` that degrades a crash into a failed envelope.

    A run that raises an *unexpected* exception inside a worker must
    not poison its batch or the pool: the exception becomes a record
    with ``status="crashed"``, the error text and a digest of the
    traceback (stable across serial and parallel execution — the stack
    below this frame is identical either way), and the campaign's
    remaining runs proceed untouched.  Expected domain failures
    (``allocation_failed`` etc.) are classified inside
    :func:`execute_run` as before.
    """
    try:
        return execute_run(run)
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:  # noqa: BLE001 — the envelope IS the handler
        digest = hashlib.sha256(
            traceback.format_exc().encode()).hexdigest()[:16]
        return {
            "run_id": run.run_id,
            "scenario": run.scenario.name,
            "seed": run.seed,
            "mode": run.scenario.mode,
            "topology": run.scenario.topology.label,
            "status": "crashed",
            "error": f"{type(exc).__name__}: {exc}",
            "traceback_digest": digest,
        }


def _timed_execute_run(run: RunSpec) -> dict[str, object]:
    """:func:`_safe_execute_run` wrapped with worker wall time and pid.

    The envelope feeds the runner's heartbeat/straggler accounting and
    is stripped before journaling and aggregation, so records stay
    byte-identical to unwrapped execution.
    """
    start = time.perf_counter()
    record = _safe_execute_run(run)
    return {"record": record,
            "wall_s": time.perf_counter() - start,
            "pid": os.getpid()}


def _execute_synthetic_run(run: RunSpec) -> dict[str, object]:
    """Execute one ``mode="synthetic"`` run: a seeded hash chain.

    Deterministic, allocation-free and microseconds-cheap — the run
    body for fabric-scale grids.  Seeds listed in the spec's
    ``fail_seeds`` raise, exercising the crashed-envelope path through
    real worker processes.
    """
    scenario = run.scenario
    spec = scenario.synthetic or SyntheticSpec()
    if run.seed in spec.fail_seeds:
        raise RuntimeError(
            f"synthetic failure injected for seed {run.seed}")
    digest = run.run_seed
    for _ in range(spec.work):
        digest = int.from_bytes(
            hashlib.sha256(digest.to_bytes(8, "big")).digest()[:8],
            "big") >> 1
    return {
        "run_id": run.run_id,
        "scenario": scenario.name,
        "seed": run.seed,
        "mode": "synthetic",
        "topology": scenario.topology.label,
        "work": spec.work,
        "status": "ok",
        "result": {"digest": digest},
    }


def _execute_serve_run(run: RunSpec) -> dict[str, object]:
    """Execute one ``mode="serve"`` run: churn over the control plane."""
    from repro.service.churn import ChurnSpec, ChurnWorkload
    from repro.service.controller import SessionService

    scenario = run.scenario
    churn = scenario.churn or ChurnSpec()
    record: dict[str, object] = {
        "run_id": run.run_id,
        "scenario": scenario.name,
        "seed": run.seed,
        "mode": "serve",
        "topology": scenario.topology.label,
        "churn": churn.label,
        "table_size": scenario.table_size,
    }
    if scenario.policy != "fcfs":
        record["policy"] = scenario.policy
    try:
        topology = scenario.topology.build()
        workload = ChurnWorkload(
            churn, topology, derive_seed(run.run_seed, "churn", run.seed))
        service = SessionService(
            topology, table_size=scenario.table_size,
            frequency_hz=scenario.frequency_mhz * 1e6,
            name=scenario.name, seed=run.seed, record_events=False,
            policy=scenario.policy,
            tenants=churn.tenants if scenario.policy == "wfq" else ())
        report = service.run(workload.events())
    except (AllocationError, ConfigurationError) as exc:
        record["status"] = "configuration_failed"
        record["error"] = str(exc)
        return record
    record["status"] = "ok"
    record["result"] = report.to_record()
    return record


def _execute_fairness_run(run: RunSpec) -> dict[str, object]:
    """Execute one ``mode="fairness"`` run: wfq vs FCFS vs solo.

    The identical tenant-tagged churn stream runs under the
    weighted-fair policy, under the FCFS baseline, and once per tenant
    in isolation; the record carries both contended reports plus the
    per-tenant retention table and verdict flags (see
    :func:`~repro.service.fairness_demo.fairness_comparison`).
    """
    from repro.service.churn import ChurnWorkload
    from repro.service.fairness_demo import (demo_fairness_spec,
                                             fairness_churn_spec,
                                             fairness_comparison)

    scenario = run.scenario
    churn = scenario.churn or fairness_churn_spec(1000)
    record: dict[str, object] = {
        "run_id": run.run_id,
        "scenario": scenario.name,
        "seed": run.seed,
        "mode": "fairness",
        "policy": "wfq",
        "topology": scenario.topology.label,
        "churn": churn.label,
        "table_size": scenario.table_size,
    }
    try:
        topology = scenario.topology.build()
        workload = ChurnWorkload(
            churn, topology, derive_seed(run.run_seed, "churn", run.seed))
        events = workload.events(limit=3 * churn.n_sessions // 2)
        comparison = fairness_comparison(
            topology, events, churn.tenants,
            table_size=scenario.table_size,
            frequency_hz=scenario.frequency_mhz * 1e6,
            fairness=demo_fairness_spec(), name=scenario.name,
            seed=run.seed)
    except (AllocationError, ConfigurationError) as exc:
        record["status"] = "configuration_failed"
        record["error"] = str(exc)
        return record
    record["status"] = "ok"
    record["result"] = {k: v for k, v in comparison.items()
                        if not k.startswith("_")}
    return record


def _execute_replay_run(run: RunSpec) -> dict[str, object]:
    """Execute one ``mode="replay"`` run: record churn, replay, verify.

    The event stream is truncated at three quarters of its length so
    sessions whose close falls in the dropped tail are still open at
    the cut — those become the replay's survivors.
    """
    from repro.service.churn import ChurnSpec, ChurnWorkload
    from repro.service.controller import SessionService
    from repro.simulation.composability import (replay_traffic,
                                                verify_timeline)

    scenario = run.scenario
    churn = scenario.churn or ChurnSpec()
    record: dict[str, object] = {
        "run_id": run.run_id,
        "scenario": scenario.name,
        "seed": run.seed,
        "mode": "replay",
        "backend": scenario.backend,
        "topology": scenario.topology.label,
        "churn": churn.label,
        "n_slots": scenario.n_slots,
        "table_size": scenario.table_size,
    }
    try:
        topology = scenario.topology.build()
        workload = ChurnWorkload(
            churn, topology, derive_seed(run.run_seed, "churn", run.seed))
        events = workload.events(limit=3 * churn.n_sessions // 2)
        service = SessionService(
            topology, table_size=scenario.table_size,
            frequency_hz=scenario.frequency_mhz * 1e6,
            name=scenario.name, seed=run.seed, record_events=False,
            record_timeline=True)
        service.run(events)
        timeline = service.timeline(horizon_slots=scenario.n_slots)
        report = verify_timeline(
            timeline, replay_traffic(timeline),
            backend_factory=lambda config: create_backend(
                scenario.backend, config),
            scenario=scenario.name)
    except (AllocationError, ConfigurationError) as exc:
        record["status"] = "configuration_failed"
        record["error"] = str(exc)
        return record
    record["status"] = "ok"
    result = report.to_record()
    result["n_channels"] = len(timeline.channel_names)
    record["result"] = result
    return record


def _execute_faults_run(run: RunSpec) -> dict[str, object]:
    """Execute one ``mode="faults"`` run: churn + faults vs baseline.

    The identical churn stream runs twice — once healthy, once merged
    with the seeded fault schedule — and the churn+fault timeline is
    replayed on the scenario backend so the record carries both the
    survivability fold and the fault-survivor composability verdict.
    """
    from repro.faults.demo import run_churn_with_faults, survivability_record
    from repro.faults.model import FaultSchedule, FaultSpec
    from repro.service.churn import ChurnSpec, ChurnWorkload

    scenario = run.scenario
    churn = scenario.churn or ChurnSpec()
    fault_spec = scenario.faults or FaultSpec()
    record: dict[str, object] = {
        "run_id": run.run_id,
        "scenario": scenario.name,
        "seed": run.seed,
        "mode": "faults",
        "backend": scenario.backend,
        "topology": scenario.topology.label,
        "churn": churn.label,
        "faults": fault_spec.label,
        "n_slots": scenario.n_slots,
        "table_size": scenario.table_size,
    }
    try:
        topology = scenario.topology.build()
        workload = ChurnWorkload(
            churn, topology, derive_seed(run.run_seed, "churn", run.seed))
        events = workload.events(limit=3 * churn.n_sessions // 2)
        schedule = FaultSchedule(
            fault_spec, topology,
            derive_seed(run.run_seed, "faults", run.seed))
        outcome = run_churn_with_faults(
            topology, events, schedule,
            table_size=scenario.table_size,
            frequency_hz=scenario.frequency_mhz * 1e6,
            horizon_slots=scenario.n_slots, name=scenario.name,
            seed=run.seed,
            backend_factory=lambda config: create_backend(
                scenario.backend, config),
            scenario=scenario.name)
    except (AllocationError, ConfigurationError) as exc:
        record["status"] = "configuration_failed"
        record["error"] = str(exc)
        return record
    record["status"] = "ok"
    record["result"] = {
        "survivability": survivability_record(
            outcome.baseline.totals, outcome.faulty.totals,
            outcome.faulty.faults),
        "faults": outcome.faulty.faults,
        "totals": outcome.faulty.totals,
        "invariant": outcome.faulty.invariant,
        "composability": outcome.verdict.to_record(),
        "n_channels": len(outcome.timeline.channel_names),
    }
    return record


def _summary_row(record: dict[str, object]) -> dict[str, object]:
    """One per-run table row for :func:`~repro.experiments.report.
    format_table`; shared by streaming and keep-records aggregation."""
    row: dict[str, object] = {
        "run": record["run_id"],
        "backend": record.get("backend", record.get("mode", "serve")),
        "topology": record.get("topology", "-"),
        "traffic": record.get("traffic", record.get("churn", "-")),
        "status": record["status"],
    }
    result = record.get("result")
    if isinstance(result, dict):
        if "survivability" in result:  # faults-mode record
            surv = result["survivability"]
            row["traffic"] = record.get("faults", "-")
            row["messages"] = result["totals"]["n_events"]
            row["survival"] = surv["session_survival"]
            row["retention"] = surv["guarantee_retention"]
            row["status"] = (
                f"{record['status']}/"
                f"{'composable' if result['composability']['composable'] else 'diverged'}")
        elif "area" in result:  # design-mode record
            row["messages"] = result["n_channels"]
            row["area_mm2"] = round(
                result["area"]["total_um2"] / 1e6, 4)
            row["mhz"] = result["operating_frequency_mhz"]
        elif "retention" in result and "checks" in result:
            # fairness-mode record
            checks = result["checks"]
            row["messages"] = result["wfq"]["totals"]["n_events"]
            row["retention"] = checks["min_well_behaved_retention"]
            row["status"] = (
                f"{record['status']}/"
                f"{'fair' if checks['wfq_retention_ok'] else 'unfair'}")
        elif "totals" in result:  # serve-mode record
            totals = result["totals"]
            row["messages"] = totals["n_events"]
            row["accept"] = totals["accept_rate"]
        elif "composable" in result:  # replay-mode record
            row["messages"] = result["n_channels"]
            row["status"] = (
                f"{record['status']}/"
                f"{'composable' if result['composable'] else 'diverged'}")
        elif "digest" in result:  # synthetic-mode record
            row["digest"] = result["digest"] % 10 ** 6
        else:
            row["messages"] = result["messages_delivered"]
            latency = result.get("latency_ns")
            if latency:
                row["p50_ns"] = latency["p50"]
                row["p99_ns"] = latency["p99"]
                row["max_ns"] = latency["max"]
    return row


#: Statuses that are search verdicts, not failures.
_NON_FAILURE_STATUSES = ("ok", "pruned", "infeasible")


@dataclass
class CampaignResult:
    """The aggregated outcome of one campaign execution.

    In the default keep-records mode ``records`` holds every run's
    record, exactly as before.  Under streaming aggregation
    (``CampaignRunner(..., keep_records=False)``) ``records`` stays
    empty and the canonical report streams from the workdir's shard
    journals instead — same bytes, O(shard) memory.

    ``meta`` carries the execution's wall-clock observability — the
    per-stage timing table, per-worker run counts, completion
    heartbeats, shard progress, steal/death counts and straggler flags
    — and is deliberately **excluded** from :meth:`to_json`, so the
    determinism contract (serial == parallel == resumed, run-to-run
    byte-identity) is untouched by how long anything took.
    """

    campaign: str
    base_seed: int
    records: list[dict[str, object]] = field(default_factory=list)
    meta: dict[str, object] = field(default_factory=dict)
    status_counts: dict[str, int] | None = None
    workdir: str | None = None
    shards: tuple[Shard, ...] = ()

    @property
    def n_runs(self) -> int:
        """Total runs executed (journal-backed when streaming)."""
        if self.records or self.status_counts is None:
            return len(self.records)
        return sum(self.status_counts.values())

    @property
    def n_failed(self) -> int:
        """Runs that ended in a failure.

        Design-mode screening verdicts (``pruned`` / ``infeasible``)
        are *results* of a search, not failures — a dimensioning sweep
        that rejects most of its grid worked exactly as designed.
        Identical in streaming and keep-records modes: both fold the
        same status counters from the same envelopes.
        """
        if self.status_counts is not None:
            return sum(count for status, count in
                       self.status_counts.items()
                       if status not in _NON_FAILURE_STATUSES)
        return sum(1 for r in self.records
                   if r["status"] not in _NON_FAILURE_STATUSES)

    def iter_records(self) -> Iterator[dict[str, object]]:
        """Records in canonical (run-id-sorted) order.

        Keep-records mode iterates the in-memory list; streaming mode
        replays the shard journals, one shard in memory at a time.
        """
        if self.records or self.workdir is None:
            yield from self.records
            return
        yield from CampaignWorkdir(self.workdir).iter_records(self.shards)

    def report_chunks(self) -> Iterator[str]:
        """The canonical JSON report as a stream of text chunks."""
        return iter_report_chunks(self.campaign, self.base_seed,
                                  self.n_runs, self.n_failed,
                                  self.iter_records())

    def to_json(self, *, indent: int = 2) -> str:
        """Canonical JSON report: sorted keys, ordered records.

        Byte-identical across serial, parallel and killed-then-resumed
        executions of the same spec — record contents carry no
        wall-clock or process state.  (``indent`` other than 2 falls
        back to a non-streaming dump; the canonical form is 2.)
        """
        if indent != 2:
            return json.dumps(
                {"campaign": self.campaign, "base_seed": self.base_seed,
                 "n_runs": self.n_runs, "n_failed": self.n_failed,
                 "records": list(self.iter_records())},
                indent=indent, sort_keys=True)
        return "".join(self.report_chunks())

    def digest(self) -> str:
        """SHA-256 of the canonical report, computed streamingly."""
        h = hashlib.sha256()
        for chunk in self.report_chunks():
            h.update(chunk.encode())
        return h.hexdigest()

    def write(self, path: str) -> None:
        """Stream the canonical JSON report to a file.

        Never materialises the full report string, so writing a
        100k-run report costs one record of memory.
        """
        with open(path, "w", encoding="utf-8") as handle:
            for chunk in self.report_chunks():
                handle.write(chunk)
            handle.write("\n")

    def summary_rows(self) -> list[dict[str, object]]:
        """Per-run table rows for :func:`~repro.experiments.report.
        format_table`."""
        return [_summary_row(record) for record in self.iter_records()]

    def summary(self, *, top_k: int = 3) -> str:
        """One-line digest: totals, per-status counts, stragglers.

        Unlike :meth:`to_json` this is allowed to read ``meta`` — it is
        an operator's glance, not a canonical artifact.  Crash and
        timeout statuses appear by name (``crashed=2``), and the
        ``top_k`` slowest flagged stragglers ride along with their
        wall-to-median ratio.
        """
        if self.status_counts is not None:
            counts = dict(self.status_counts)
        else:
            counts = {}
            for record in self.records:
                status = str(record["status"])
                counts[status] = counts.get(status, 0) + 1
        line = (f"campaign[{self.campaign}]: {self.n_runs} runs, "
                f"{self.n_failed} failed")
        if counts:
            status_part = ", ".join(
                f"{status}={counts[status]}" for status in sorted(counts))
            line += f" ({status_part})"
        stragglers = list(self.meta.get("stragglers") or ())
        if stragglers:
            stragglers.sort(
                key=lambda s: (-float(s.get("wall_s", 0.0)),
                               str(s.get("run_id", ""))))
            parts = []
            for straggler in stragglers[:top_k]:
                wall = float(straggler.get("wall_s", 0.0))
                median = float(straggler.get("median_s", 0.0))
                ratio = wall / median if median > 0 else float("inf")
                parts.append(f"{straggler.get('run_id')} "
                             f"{wall:.2f}s ({ratio:.1f}x median)")
            line += "; stragglers: " + ", ".join(parts)
        return line


class _Aggregate:
    """Streaming fold of completed-run envelopes.

    Owns everything the runner accumulates per envelope: the optional
    record list, status counters, journal appends, heartbeat and
    telemetry emission, per-worker/straggler wall accounting and
    per-shard progress.  Memory is O(shards + workers + heartbeats) —
    plus the record list only in keep-records mode.
    """

    def __init__(self, *, n_runs: int, keep_records: bool,
                 workdir: CampaignWorkdir | None,
                 shards: tuple[Shard, ...], telemetry, t0: float):
        self.n_runs = n_runs
        self.keep = keep_records
        self.workdir = workdir
        self.records: list[dict[str, object]] = []
        self.status_counts: dict[str, int] = {}
        self.telemetry = telemetry
        self.t0 = t0
        self.done = 0
        self.n_resumed = 0
        self.heartbeats: list[dict[str, object]] = []
        self._stride = max(1, n_runs // 100)
        self._queue_gauge = telemetry.gauge("campaign.queue_depth",
                                            wall=True)
        self._queue_gauge.set(n_runs)
        # wall accounting: full wall list for the median, bounded heap
        # of the slowest runs for the straggler report
        self.walls: list[float] = []
        self._top: list[tuple[float, str, int]] = []
        self.worker_table: dict[int, dict[str, float]] = {}
        # shard progress: run_id -> shard index, plus per-shard state
        self._shard_of = {run_id: shard.index for shard in shards
                          for run_id in shard.run_ids}
        self._shards = shards
        self._shard_done = [0] * len(shards)
        self._shard_t: list[list[float | None]] = [
            [None, None] for _ in shards]
        self.peak_resident_records = 0

    def add(self, envelope: dict[str, object], *,
            resumed: bool = False) -> None:
        """Fold one completed envelope into every accumulator."""
        record = envelope["record"]
        run_id = str(record["run_id"])
        if self.keep:
            self.records.append(record)
        else:
            self.peak_resident_records = max(self.peak_resident_records, 1)
        if self.workdir is not None and not resumed:
            shard_index = self._shard_of[run_id]
            self.workdir.append(self._shards[shard_index].shard_id,
                                record)
        status = str(record["status"])
        self.status_counts[status] = \
            self.status_counts.get(status, 0) + 1
        self.done += 1
        self._queue_gauge.set(self.n_runs - self.done)
        t_s = time.perf_counter() - self.t0
        if resumed:
            self.n_resumed += 1
        else:
            pid = int(envelope.get("pid", 0))
            wall = float(envelope.get("wall_s", 0.0))
            self.walls.append(wall)
            entry = self.worker_table.setdefault(
                pid, {"runs": 0, "wall_s": 0.0})
            entry["runs"] += 1
            entry["wall_s"] += wall
            heapq.heappush(self._top, (wall, run_id, pid))
            if len(self._top) > _TOP_WALLS:
                heapq.heappop(self._top)
            if (self.done % self._stride == 0
                    or self.done == self.n_runs):
                self.heartbeats.append({
                    "done": self.done, "total": self.n_runs,
                    "t_s": round(t_s, 6), "run_id": run_id, "pid": pid})
            if self.telemetry.enabled:
                end_ms = t_s * 1e3
                self.telemetry.span(run_id, end_ms - wall * 1e3, end_ms,
                                    track=f"worker {pid}", unit="ms",
                                    wall=True, status=status)
        self._fold_shard(run_id, t_s)

    def _fold_shard(self, run_id: str, t_s: float) -> None:
        """Advance (and possibly close out) the run's shard."""
        index = self._shard_of.get(run_id)
        if index is None:
            return
        times = self._shard_t[index]
        if times[0] is None:
            times[0] = t_s
        times[1] = t_s
        self._shard_done[index] += 1
        if (self._shard_done[index] == self._shards[index].n_runs
                and self.telemetry.enabled):
            self.telemetry.span(
                self._shards[index].shard_id, times[0] * 1e3,
                times[1] * 1e3, track="shards", unit="ms", wall=True,
                runs=self._shards[index].n_runs)
            self.telemetry.counter("campaign.shards",
                                   status="completed", wall=True).inc()

    def median_wall_s(self) -> float:
        """Median executed-run wall time (resumed runs excluded)."""
        if not self.walls:
            return 0.0
        return sorted(self.walls)[len(self.walls) // 2]

    def stragglers(self) -> list[dict[str, object]]:
        """Runs at >= 3x the median wall (slowest ``_TOP_WALLS`` only)."""
        median = self.median_wall_s()
        threshold = max(_STRAGGLER_RATIO * median, _STRAGGLER_FLOOR_S)
        flagged = [{"run_id": run_id, "wall_s": round(wall, 6),
                    "median_s": round(median, 6), "pid": pid}
                   for wall, run_id, pid in self._top
                   if wall >= threshold]
        flagged.sort(key=lambda s: s["run_id"])
        return flagged

    def shard_meta(self) -> dict[str, object]:
        """Per-shard progress summary for ``CampaignResult.meta``."""
        meta: dict[str, object] = {
            "n_shards": len(self._shards),
            "completed": sum(
                1 for index, shard in enumerate(self._shards)
                if self._shard_done[index] == shard.n_runs),
        }
        if len(self._shards) <= 256:
            meta["table"] = [
                {"id": shard.shard_id, "runs": shard.n_runs,
                 "done": self._shard_done[index]}
                for index, shard in enumerate(self._shards)]
        return meta


class _WorkerHandle:
    """Parent-side state of one worker process."""

    def __init__(self, proc: multiprocessing.Process, conn):
        self.proc = proc
        self.conn = conn
        self.outstanding: dict[int, dict[str, float]] = {}
        self.dead = False

    @property
    def n_outstanding(self) -> int:
        """Dispatched-but-unfinished runs currently owned."""
        return sum(len(batch) for batch in self.outstanding.values())


#: Completed envelopes a worker accumulates before flushing one result
#: message to the parent — the return-path analogue of batched
#: dispatch.  Small enough that heartbeats and checkpoint journals lag
#: the work by at most this many microsecond-scale runs; large enough
#: that a 10k-run grid costs hundreds of IPC messages, not tens of
#: thousands.
_RESULT_FLUSH = 32


def _worker_main(conn, scenarios, base_seed: int) -> None:
    """Worker loop: pull batches, push batched result envelopes.

    ``scenarios`` — the shared immutable scenario library — arrives
    once at spawn (inherited by fork, pickled once under spawn), so a
    batch item is just ``(run_id, scenario_name, seed)`` and the
    per-run pickling cost of shipping whole ``RunSpec`` s is gone.
    Results flow back in chunks of at most ``_RESULT_FLUSH`` runs, so
    neither direction pays one pipe round-trip per microsecond-scale
    run.
    """
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message[0] == "stop":
                return
            _, batch_id, items = message
            results: list[tuple[str, dict[str, object]]] = []
            for run_id, scenario_name, seed in items:
                run = RunSpec(run_id=run_id,
                              scenario=scenarios[scenario_name],
                              seed=seed, base_seed=base_seed)
                results.append((run_id, _timed_execute_run(run)))
                if len(results) >= _RESULT_FLUSH:
                    try:
                        conn.send(("runs", batch_id, results))
                    except (BrokenPipeError, OSError):
                        return
                    results = []
            try:
                if results:
                    conn.send(("runs", batch_id, results))
                conn.send(("batch_done", batch_id))
            except (BrokenPipeError, OSError):
                return
    finally:
        try:
            conn.close()
        except OSError:
            pass


class CampaignRunner:
    """Fan a campaign's run grid out over worker processes.

    ``workers=1`` executes in-process (handy under profilers and in
    tests); ``workers>1`` spawns a worker pool fed by a work-stealing
    dispatch loop.  All paths — serial, parallel, killed-then-resumed —
    produce byte-identical canonical reports; scheduling only changes
    wall-clock time.

    Parameters beyond the original ``spec``/``workers``/``telemetry``:

    * ``workdir`` — checkpoint directory; completed runs journal into
      per-shard JSONL files and an atomic manifest pins the grid.
    * ``resume`` — continue a killed campaign from ``workdir``: journaled
      runs are folded back into the aggregate and skipped.
    * ``keep_records`` — ``False`` enables streaming aggregation: the
      result holds no record list and the canonical report streams from
      the journals (requires a ``workdir``).
    * ``shard_size`` — runs per shard; defaults to a pure function of
      the grid size so shard ids never depend on worker count.
    """

    def __init__(self, spec: CampaignSpec, *, workers: int = 1,
                 telemetry=None, workdir: str | os.PathLike | None = None,
                 resume: bool = False, keep_records: bool = True,
                 shard_size: int | None = None,
                 max_batch: int = _MAX_BATCH):
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}")
        if max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {max_batch}")
        if not keep_records and workdir is None:
            raise ConfigurationError(
                "streaming aggregation (keep_records=False) needs a "
                "workdir: the shard journals are the record store the "
                "canonical report streams from")
        if resume and workdir is None:
            raise ConfigurationError("resume needs a workdir")
        self.spec = spec
        self.workers = workers
        self.telemetry = coalesce(telemetry)
        self.workdir = None if workdir is None else os.fspath(workdir)
        self.resume = resume
        self.keep_records = keep_records
        self.shard_size = shard_size
        self.max_batch = max_batch
        self._live_pids: list[int] = []

    def worker_pids(self) -> list[int]:
        """Pids of currently live worker processes (observability and
        fault-injection tests; empty when running in-process)."""
        return list(self._live_pids)

    # -- execution -----------------------------------------------------

    def run(self, *, resume: bool | None = None) -> CampaignResult:
        """Execute every (remaining) run and aggregate the record set.

        ``resume`` overrides the constructor flag.  Alongside the
        deterministic records the result's ``meta`` section reports how
        the execution went: per-stage wall timings, completion
        heartbeats (at most ~100, strided), a per-worker run/wall
        table, shard progress, steal/death/duplicate counts and
        straggler flags.  None of it enters
        :meth:`CampaignResult.to_json`.
        """
        resume = self.resume if resume is None else resume
        if resume and self.workdir is None:
            raise ConfigurationError("resume needs a workdir")
        tel = self.telemetry
        t0 = time.perf_counter()
        runs = sorted(self.spec.expand(), key=lambda r: r.run_id)
        by_id = {run.run_id: run for run in runs}

        workdir: CampaignWorkdir | None = None
        if self.workdir is not None:
            workdir = CampaignWorkdir(self.workdir)
        shard_size = self.shard_size or default_shard_size(len(runs))
        if workdir is not None and resume and workdir.has_manifest():
            shard_size = workdir.resume(self.spec)
        shards = shard_campaign(self.spec, shard_size=shard_size)
        if workdir is not None and not (resume and
                                        workdir.has_manifest()):
            workdir.initialise(self.spec, shards, shard_size)
        expand_s = time.perf_counter() - t0

        aggregate = _Aggregate(n_runs=len(runs),
                               keep_records=self.keep_records,
                               workdir=workdir, shards=shards,
                               telemetry=tel, t0=t0)
        completed: set[str] = set()
        resume_start = time.perf_counter()
        if workdir is not None and resume:
            for shard in shards:
                journaled = workdir.load_shard(shard)
                for run_id in sorted(journaled):
                    aggregate.add({"record": journaled[run_id]},
                                  resumed=True)
                    completed.add(run_id)
        resume_s = time.perf_counter() - resume_start

        pending = [run for run in runs if run.run_id not in completed]
        execute_start = time.perf_counter()
        dispatch_meta: dict[str, object] = {}
        workers = min(self.workers, max(1, len(pending)))
        if pending:
            if workers > 1:
                dispatch_meta = self._run_parallel(
                    pending, workers, aggregate, completed)
            else:
                for run_spec in pending:
                    aggregate.add(_timed_execute_run(run_spec))
                    completed.add(run_spec.run_id)
        execute_s = time.perf_counter() - execute_start

        aggregate_start = time.perf_counter()
        records = aggregate.records
        records.sort(key=lambda r: r["run_id"])
        # Status counters are folded in sorted-status order, so the
        # telemetry stream stays byte-identical however the runs were
        # scheduled (or resumed).
        for status in sorted(aggregate.status_counts):
            tel.counter("campaign.runs", status=status).inc(
                aggregate.status_counts[status])
        if workdir is not None:
            workdir.close()

        meta: dict[str, object] = {
            "workers": workers,
            "worker_table": {
                str(pid): {"runs": int(entry["runs"]),
                           "wall_s": round(entry["wall_s"], 6)}
                for pid, entry in sorted(
                    aggregate.worker_table.items())},
            "median_run_wall_s": round(aggregate.median_wall_s(), 6),
            "stragglers": aggregate.stragglers(),
            "shards": aggregate.shard_meta(),
            "resume": {"enabled": bool(resume),
                       "n_resumed": aggregate.n_resumed},
            "dispatch": dispatch_meta,
            "heartbeats": aggregate.heartbeats,
        }
        if not self.keep_records:
            meta["aggregate"] = {
                "streaming": True,
                "peak_resident_records":
                    aggregate.peak_resident_records}
        meta["stages"] = {
            "expand_s": round(expand_s, 6),
            "resume_s": round(resume_s, 6),
            "execute_s": round(execute_s, 6),
            "aggregate_s": round(
                time.perf_counter() - aggregate_start, 6),
            "total_s": round(time.perf_counter() - t0, 6)}
        return CampaignResult(campaign=self.spec.name,
                              base_seed=self.spec.base_seed,
                              records=records, meta=meta,
                              status_counts=dict(aggregate.status_counts),
                              workdir=self.workdir, shards=shards)

    # -- parallel dispatch ---------------------------------------------

    def _run_parallel(self, pending: list[RunSpec], workers: int,
                      aggregate: _Aggregate, completed: set[str]
                      ) -> dict[str, object]:
        """The work-stealing dispatch loop.

        The parent owns scheduling: it feeds adaptively-sized batches
        through per-worker pipes, re-queues the work of dead workers,
        lets idle workers steal the uncompleted tail of the slowest
        outstanding batch, and — if every worker dies — finishes the
        remainder in-process, so a campaign always completes.
        """
        scenarios = {s.name: s for s in self.spec.scenarios}
        base_seed = self.spec.base_seed
        queue: list[tuple[str, str, int]] = [
            (run.run_id, run.scenario.name, run.seed) for run in pending]
        queue.reverse()  # pop() from the end == sorted dispatch order
        # Cheap run-id lookups for re-queue and steal dispatch.
        scenario_of = {run.run_id: run.scenario.name for run in pending}
        seed_of = {run.run_id: run.seed for run in pending}
        handles: list[_WorkerHandle] = []
        for _ in range(workers):
            parent_conn, child_conn = multiprocessing.Pipe()
            proc = multiprocessing.Process(
                target=_worker_main,
                args=(child_conn, scenarios, base_seed), daemon=True)
            proc.start()
            child_conn.close()
            handles.append(_WorkerHandle(proc, parent_conn))
        self._live_pids = [h.proc.pid for h in handles
                           if h.proc.pid is not None]

        next_batch_id = 0
        dispatched_extra: set[str] = set()  # runs already stolen once
        n_steals = n_duplicates = n_deaths = 0
        target = len(pending) + len(completed)

        def batch_size() -> int:
            live = max(1, sum(1 for h in handles if not h.dead))
            return max(1, min(self.max_batch,
                              len(queue) // (live * 4) or 1))

        def send_batch(handle: _WorkerHandle,
                       items: list[tuple[str, str, int]]) -> bool:
            nonlocal next_batch_id
            batch_id = next_batch_id
            next_batch_id += 1
            try:
                handle.conn.send(("batch", batch_id, items))
            except (BrokenPipeError, OSError):
                reap(handle)
                return False
            handle.outstanding[batch_id] = {
                item[0]: 0.0 for item in items}
            return True

        def reap(handle: _WorkerHandle) -> None:
            """Mark a worker dead and re-queue its unfinished runs."""
            nonlocal n_deaths
            if handle.dead:
                return
            handle.dead = True
            n_deaths += 1
            try:
                handle.conn.close()
            except OSError:
                pass
            for batch in handle.outstanding.values():
                for run_id in batch:
                    if run_id not in completed:
                        queue.append((run_id, scenario_of[run_id],
                                      seed_of[run_id]))
            handle.outstanding.clear()
            self._live_pids = [h.proc.pid for h in handles
                               if not h.dead and h.proc.pid is not None]

        def fill() -> None:
            for handle in handles:
                if handle.dead:
                    continue
                while (queue and
                       len(handle.outstanding) < _PIPELINE_DEPTH):
                    size = batch_size()
                    items = [queue.pop() for _ in range(
                        min(size, len(queue)))]
                    if not send_batch(handle, items):
                        queue.extend(reversed(items))
                        break

        def steal() -> None:
            """Give an idle worker the tail of the largest batch."""
            nonlocal n_steals
            idle = [h for h in handles
                    if not h.dead and not h.outstanding]
            if not idle or queue:
                return
            victim_runs: list[str] = []
            for handle in handles:
                if handle.dead:
                    continue
                for batch in handle.outstanding.values():
                    remaining = [run_id for run_id in batch
                                 if run_id not in completed
                                 and run_id not in dispatched_extra]
                    if len(remaining) > len(victim_runs):
                        victim_runs = remaining
            if len(victim_runs) < 2:
                return
            tail = victim_runs[len(victim_runs) // 2:]
            thief = idle[0]
            items = [(run_id, scenario_of[run_id], seed_of[run_id])
                     for run_id in tail]
            if send_batch(thief, items):
                dispatched_extra.update(tail)
                n_steals += 1

        def drain(handle: _WorkerHandle) -> None:
            nonlocal n_duplicates
            while True:
                try:
                    if not handle.conn.poll():
                        return
                    message = handle.conn.recv()
                except (EOFError, OSError):
                    reap(handle)
                    return
                if message[0] == "runs":
                    _, batch_id, results = message
                    batch = handle.outstanding.get(batch_id)
                    for run_id, envelope in results:
                        if batch is not None:
                            batch.pop(run_id, None)
                        if run_id in completed:
                            n_duplicates += 1
                        else:
                            completed.add(run_id)
                            aggregate.add(envelope)
                elif message[0] == "batch_done":
                    handle.outstanding.pop(message[1], None)

        try:
            fill()
            while len(completed) < target:
                live = [h for h in handles if not h.dead]
                if not live:
                    # Every worker died: finish in-process so the
                    # campaign still completes (and journals).
                    leftovers = sorted({run_id for run_id, _, _ in queue}
                                       - completed)
                    for run_id in leftovers:
                        run = RunSpec(
                            run_id=run_id,
                            scenario=scenarios[scenario_of[run_id]],
                            seed=seed_of[run_id],
                            base_seed=base_seed)
                        aggregate.add(_timed_execute_run(run))
                        completed.add(run_id)
                    break
                ready = multiprocessing.connection.wait(
                    [h.conn for h in live], timeout=0.05)
                for handle in live:
                    if handle.conn in ready:
                        drain(handle)
                for handle in handles:
                    if (not handle.dead
                            and not handle.proc.is_alive()):
                        drain(handle)   # flush anything buffered
                        reap(handle)
                fill()
                steal()
        finally:
            for handle in handles:
                if not handle.dead:
                    try:
                        handle.conn.send(("stop",))
                    except (BrokenPipeError, OSError):
                        pass
            for handle in handles:
                handle.proc.join(timeout=5.0)
                if handle.proc.is_alive():
                    handle.proc.terminate()
                    handle.proc.join(timeout=5.0)
                try:
                    handle.conn.close()
                except OSError:
                    pass
            self._live_pids = []
        return {"steals": n_steals, "duplicates": n_duplicates,
                "worker_deaths": n_deaths,
                "batches": next_batch_id}
