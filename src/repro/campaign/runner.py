"""Parallel campaign execution over the unified backend protocol.

:class:`CampaignRunner` expands a :class:`~repro.campaign.spec.
CampaignSpec` into its run grid and executes every run — serially or
fanned out across a :mod:`multiprocessing` pool — producing one
aggregated, JSON-serialisable record set.

Determinism is the contract: every run derives all of its randomness
from :func:`~repro.campaign.spec.derive_seed` over the run id, each
worker rebuilds its configuration from the spec alone, and records are
ordered by run id before aggregation.  Serial and parallel executions of
the same spec therefore produce *byte-identical* reports, which is what
lets campaign trajectories be diffed across commits.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field

from repro.campaign.spec import CampaignSpec, RunSpec, derive_seed
from repro.core.configuration import configure
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.simulation.backend import SimRequest, create_backend
from repro.telemetry.hub import coalesce

__all__ = ["CampaignRunner", "CampaignResult", "execute_run"]

#: A run is flagged a straggler when it took at least this many times
#: the campaign's median per-run wall time (and a non-trivial absolute
#: amount), the signal the ROADMAP's resumable campaign fabric needs
#: for re-dispatch decisions.
_STRAGGLER_RATIO = 3.0
_STRAGGLER_FLOOR_S = 0.05


def execute_run(run: RunSpec) -> dict[str, object]:
    """Execute one run and return its JSON-ready record.

    Top-level (picklable) so a worker process can execute it.  The whole
    design flow happens inside: build topology, generate the seeded
    workload, allocate, attach traffic, simulate through the backend
    protocol — or, for ``mode="serve"`` scenarios, run the online
    control plane over a seeded churn stream.  An infeasible allocation
    is a *result* (status ``allocation_failed``), not a crash —
    campaigns sweep into infeasible corners on purpose.
    """
    scenario = run.scenario
    if scenario.mode == "serve":
        return _execute_serve_run(run)
    if scenario.mode == "replay":
        return _execute_replay_run(run)
    if scenario.mode == "faults":
        return _execute_faults_run(run)
    if scenario.mode == "design":
        from repro.design.explorer import execute_design_run
        return execute_design_run(run)
    record: dict[str, object] = {
        "run_id": run.run_id,
        "scenario": scenario.name,
        "seed": run.seed,
        "backend": scenario.backend,
        "clocking": scenario.clocking,
        "topology": scenario.topology.label,
        "traffic": scenario.traffic.pattern,
        "n_slots": scenario.n_slots,
    }
    try:
        topology = scenario.topology.build()
        use_case, mapping = scenario.workload.build(
            topology, derive_seed(run.run_seed, "workload", run.seed))
        config = configure(
            topology, use_case, table_size=scenario.table_size,
            frequency_hz=scenario.frequency_mhz * 1e6, mapping=mapping,
            require_met=False)
        options: dict[str, object] = {}
        if scenario.backend == "cycle":
            options["clocking"] = scenario.clocking
        backend = create_backend(scenario.backend, config, **options)
        traffic = scenario.traffic.build(
            config, derive_seed(run.run_seed, "traffic", run.seed))
        result = backend.run(SimRequest(
            n_slots=scenario.n_slots, traffic=traffic,
            seed=run.run_seed % (2 ** 31)))
    except AllocationError as exc:
        record["status"] = "allocation_failed"
        record["error"] = str(exc)
        return record
    except ConfigurationError as exc:
        record["status"] = "configuration_failed"
        record["error"] = str(exc)
        return record
    record["status"] = "ok"
    record["result"] = result.to_record()
    return record


def _timed_execute_run(run: RunSpec) -> dict[str, object]:
    """:func:`execute_run` wrapped with worker wall time and pid.

    Top-level (picklable) like :func:`execute_run`; the envelope feeds
    the runner's heartbeat/straggler accounting and is stripped before
    aggregation, so records stay byte-identical to unwrapped execution.
    """
    start = time.perf_counter()
    record = execute_run(run)
    return {"record": record,
            "wall_s": time.perf_counter() - start,
            "pid": os.getpid()}


def _execute_serve_run(run: RunSpec) -> dict[str, object]:
    """Execute one ``mode="serve"`` run: churn over the control plane."""
    from repro.service.churn import ChurnSpec, ChurnWorkload
    from repro.service.controller import SessionService

    scenario = run.scenario
    churn = scenario.churn or ChurnSpec()
    record: dict[str, object] = {
        "run_id": run.run_id,
        "scenario": scenario.name,
        "seed": run.seed,
        "mode": "serve",
        "topology": scenario.topology.label,
        "churn": churn.label,
        "table_size": scenario.table_size,
    }
    try:
        topology = scenario.topology.build()
        workload = ChurnWorkload(
            churn, topology, derive_seed(run.run_seed, "churn", run.seed))
        service = SessionService(
            topology, table_size=scenario.table_size,
            frequency_hz=scenario.frequency_mhz * 1e6,
            name=scenario.name, seed=run.seed, record_events=False)
        report = service.run(workload.events())
    except (AllocationError, ConfigurationError) as exc:
        record["status"] = "configuration_failed"
        record["error"] = str(exc)
        return record
    record["status"] = "ok"
    record["result"] = report.to_record()
    return record


def _execute_replay_run(run: RunSpec) -> dict[str, object]:
    """Execute one ``mode="replay"`` run: record churn, replay, verify.

    The event stream is truncated at three quarters of its length so
    sessions whose close falls in the dropped tail are still open at
    the cut — those become the replay's survivors.
    """
    from repro.service.churn import ChurnSpec, ChurnWorkload
    from repro.service.controller import SessionService
    from repro.simulation.composability import (replay_traffic,
                                                verify_timeline)

    scenario = run.scenario
    churn = scenario.churn or ChurnSpec()
    record: dict[str, object] = {
        "run_id": run.run_id,
        "scenario": scenario.name,
        "seed": run.seed,
        "mode": "replay",
        "backend": scenario.backend,
        "topology": scenario.topology.label,
        "churn": churn.label,
        "n_slots": scenario.n_slots,
        "table_size": scenario.table_size,
    }
    try:
        topology = scenario.topology.build()
        workload = ChurnWorkload(
            churn, topology, derive_seed(run.run_seed, "churn", run.seed))
        events = workload.events(limit=3 * churn.n_sessions // 2)
        service = SessionService(
            topology, table_size=scenario.table_size,
            frequency_hz=scenario.frequency_mhz * 1e6,
            name=scenario.name, seed=run.seed, record_events=False,
            record_timeline=True)
        service.run(events)
        timeline = service.timeline(horizon_slots=scenario.n_slots)
        report = verify_timeline(
            timeline, replay_traffic(timeline),
            backend_factory=lambda config: create_backend(
                scenario.backend, config),
            scenario=scenario.name)
    except (AllocationError, ConfigurationError) as exc:
        record["status"] = "configuration_failed"
        record["error"] = str(exc)
        return record
    record["status"] = "ok"
    result = report.to_record()
    result["n_channels"] = len(timeline.channel_names)
    record["result"] = result
    return record


def _execute_faults_run(run: RunSpec) -> dict[str, object]:
    """Execute one ``mode="faults"`` run: churn + faults vs baseline.

    The identical churn stream runs twice — once healthy, once merged
    with the seeded fault schedule — and the churn+fault timeline is
    replayed on the scenario backend so the record carries both the
    survivability fold and the fault-survivor composability verdict.
    """
    from repro.faults.demo import run_churn_with_faults, survivability_record
    from repro.faults.model import FaultSchedule, FaultSpec
    from repro.service.churn import ChurnSpec, ChurnWorkload

    scenario = run.scenario
    churn = scenario.churn or ChurnSpec()
    fault_spec = scenario.faults or FaultSpec()
    record: dict[str, object] = {
        "run_id": run.run_id,
        "scenario": scenario.name,
        "seed": run.seed,
        "mode": "faults",
        "backend": scenario.backend,
        "topology": scenario.topology.label,
        "churn": churn.label,
        "faults": fault_spec.label,
        "n_slots": scenario.n_slots,
        "table_size": scenario.table_size,
    }
    try:
        topology = scenario.topology.build()
        workload = ChurnWorkload(
            churn, topology, derive_seed(run.run_seed, "churn", run.seed))
        events = workload.events(limit=3 * churn.n_sessions // 2)
        schedule = FaultSchedule(
            fault_spec, topology,
            derive_seed(run.run_seed, "faults", run.seed))
        outcome = run_churn_with_faults(
            topology, events, schedule,
            table_size=scenario.table_size,
            frequency_hz=scenario.frequency_mhz * 1e6,
            horizon_slots=scenario.n_slots, name=scenario.name,
            seed=run.seed,
            backend_factory=lambda config: create_backend(
                scenario.backend, config),
            scenario=scenario.name)
    except (AllocationError, ConfigurationError) as exc:
        record["status"] = "configuration_failed"
        record["error"] = str(exc)
        return record
    record["status"] = "ok"
    record["result"] = {
        "survivability": survivability_record(
            outcome.baseline.totals, outcome.faulty.totals,
            outcome.faulty.faults),
        "faults": outcome.faulty.faults,
        "totals": outcome.faulty.totals,
        "invariant": outcome.faulty.invariant,
        "composability": outcome.verdict.to_record(),
        "n_channels": len(outcome.timeline.channel_names),
    }
    return record


@dataclass
class CampaignResult:
    """The aggregated outcome of one campaign execution.

    ``meta`` carries the execution's wall-clock observability — the
    per-stage timing table, per-worker run counts, completion
    heartbeats and straggler flags — and is deliberately **excluded**
    from :meth:`to_json`, so the determinism contract (serial ==
    parallel, run-to-run byte-identity) is untouched by how long
    anything took.
    """

    campaign: str
    base_seed: int
    records: list[dict[str, object]] = field(default_factory=list)
    meta: dict[str, object] = field(default_factory=dict)

    @property
    def n_runs(self) -> int:
        """Total runs executed."""
        return len(self.records)

    @property
    def n_failed(self) -> int:
        """Runs that ended in a failure.

        Design-mode screening verdicts (``pruned`` / ``infeasible``)
        are *results* of a search, not failures — a dimensioning sweep
        that rejects most of its grid worked exactly as designed.
        """
        return sum(1 for r in self.records
                   if r["status"] not in ("ok", "pruned", "infeasible"))

    def to_json(self, *, indent: int = 2) -> str:
        """Canonical JSON report: sorted keys, ordered records.

        Byte-identical across serial and parallel executions of the same
        spec — record contents carry no wall-clock or process state.
        """
        return json.dumps(
            {"campaign": self.campaign, "base_seed": self.base_seed,
             "n_runs": self.n_runs, "n_failed": self.n_failed,
             "records": self.records},
            indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        """Write the canonical JSON report to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def summary_rows(self) -> list[dict[str, object]]:
        """Per-run table rows for :func:`~repro.experiments.report.
        format_table`."""
        rows = []
        for record in self.records:
            row: dict[str, object] = {
                "run": record["run_id"],
                "backend": record.get("backend",
                                      record.get("mode", "serve")),
                "topology": record["topology"],
                "traffic": record.get("traffic", record.get("churn", "-")),
                "status": record["status"],
            }
            result = record.get("result")
            if isinstance(result, dict):
                if "survivability" in result:  # faults-mode record
                    surv = result["survivability"]
                    row["traffic"] = record.get("faults", "-")
                    row["messages"] = result["totals"]["n_events"]
                    row["survival"] = surv["session_survival"]
                    row["retention"] = surv["guarantee_retention"]
                    row["status"] = (
                        f"{record['status']}/"
                        f"{'composable' if result['composability']['composable'] else 'diverged'}")
                elif "area" in result:  # design-mode record
                    row["messages"] = result["n_channels"]
                    row["area_mm2"] = round(
                        result["area"]["total_um2"] / 1e6, 4)
                    row["mhz"] = result["operating_frequency_mhz"]
                elif "totals" in result:  # serve-mode record
                    totals = result["totals"]
                    row["messages"] = totals["n_events"]
                    row["accept"] = totals["accept_rate"]
                elif "composable" in result:  # replay-mode record
                    row["messages"] = result["n_channels"]
                    row["status"] = (
                        f"{record['status']}/"
                        f"{'composable' if result['composable'] else 'diverged'}")
                else:
                    row["messages"] = result["messages_delivered"]
                    latency = result.get("latency_ns")
                    if latency:
                        row["p50_ns"] = latency["p50"]
                        row["p99_ns"] = latency["p99"]
                        row["max_ns"] = latency["max"]
            rows.append(row)
        return rows


class CampaignRunner:
    """Fan a campaign's run grid out over worker processes.

    ``workers=1`` executes in-process (handy under profilers and in
    tests); ``workers>1`` uses a :mod:`multiprocessing` pool with one
    task per run.  Both paths produce identical results — the pool only
    changes wall-clock time.
    """

    def __init__(self, spec: CampaignSpec, *, workers: int = 1,
                 telemetry=None):
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}")
        self.spec = spec
        self.workers = workers
        self.telemetry = coalesce(telemetry)

    def run(self) -> CampaignResult:
        """Execute every run and aggregate the ordered record set.

        Alongside the deterministic records the result's ``meta``
        section reports how the execution went: per-stage wall timings,
        completion heartbeats (at most ~100, strided), a per-worker
        run/wall table and straggler flags.  None of it enters
        :meth:`CampaignResult.to_json`.
        """
        tel = self.telemetry
        t0 = time.perf_counter()
        runs = self.spec.expand()
        expand_s = time.perf_counter() - t0

        workers = min(self.workers, len(runs))
        n_runs = len(runs)
        stride = max(1, n_runs // 100)
        queue_gauge = tel.gauge("campaign.queue_depth", wall=True)
        queue_gauge.set(n_runs)
        heartbeats: list[dict[str, object]] = []
        envelopes: list[dict[str, object]] = []

        def collect(envelope: dict[str, object]) -> None:
            envelope["t_s"] = time.perf_counter() - t0
            envelopes.append(envelope)
            done = len(envelopes)
            queue_gauge.set(n_runs - done)
            if done % stride == 0 or done == n_runs:
                heartbeats.append({
                    "done": done, "total": n_runs,
                    "t_s": round(envelope["t_s"], 6),
                    "run_id": envelope["record"]["run_id"],
                    "pid": envelope["pid"]})

        execute_start = time.perf_counter()
        if workers > 1:
            with multiprocessing.Pool(processes=workers) as pool:
                for envelope in pool.imap_unordered(
                        _timed_execute_run, runs, chunksize=1):
                    collect(envelope)
        else:
            for run_spec in runs:
                collect(_timed_execute_run(run_spec))
        execute_s = time.perf_counter() - execute_start

        aggregate_start = time.perf_counter()
        records = [env["record"] for env in envelopes]
        meta = self._build_meta(envelopes, workers)
        records.sort(key=lambda r: r["run_id"])
        # Status counters are fed from the *sorted* records, so the
        # telemetry stream stays byte-identical across serial/parallel.
        status_counts: dict[str, int] = {}
        for record in records:
            status = str(record["status"])
            status_counts[status] = status_counts.get(status, 0) + 1
        for status in sorted(status_counts):
            tel.counter("campaign.runs",
                        status=status).inc(status_counts[status])
        meta["stages"] = {
            "expand_s": round(expand_s, 6),
            "execute_s": round(execute_s, 6),
            "aggregate_s": round(time.perf_counter() - aggregate_start, 6),
            "total_s": round(time.perf_counter() - t0, 6)}
        meta["heartbeats"] = heartbeats
        return CampaignResult(campaign=self.spec.name,
                              base_seed=self.spec.base_seed,
                              records=records, meta=meta)

    def _build_meta(self, envelopes: list[dict[str, object]],
                    workers: int) -> dict[str, object]:
        """Per-worker table, straggler flags and wall spans."""
        tel = self.telemetry
        worker_table: dict[int, dict[str, object]] = {}
        walls = sorted(env["wall_s"] for env in envelopes)
        median = walls[len(walls) // 2] if walls else 0.0
        threshold = max(_STRAGGLER_RATIO * median, _STRAGGLER_FLOOR_S)
        stragglers = []
        for env in envelopes:
            pid = env["pid"]
            entry = worker_table.setdefault(
                pid, {"runs": 0, "wall_s": 0.0})
            entry["runs"] += 1
            entry["wall_s"] += env["wall_s"]
            if env["wall_s"] >= threshold:
                stragglers.append({
                    "run_id": env["record"]["run_id"],
                    "wall_s": round(env["wall_s"], 6),
                    "median_s": round(median, 6), "pid": pid})
            if tel.enabled:
                end_ms = env["t_s"] * 1e3
                tel.span(str(env["record"]["run_id"]),
                         end_ms - env["wall_s"] * 1e3, end_ms,
                         track=f"worker {pid}", unit="ms", wall=True,
                         status=str(env["record"]["status"]))
        stragglers.sort(key=lambda s: s["run_id"])
        return {
            "workers": workers,
            "worker_table": {
                str(pid): {"runs": entry["runs"],
                           "wall_s": round(entry["wall_s"], 6)}
                for pid, entry in sorted(worker_table.items())},
            "median_run_wall_s": round(median, 6),
            "stragglers": stragglers}
