"""Ready-made campaign specs: the CLI demo and the CI smoke check.

These are ordinary :class:`~repro.campaign.spec.CampaignSpec` values —
nothing here is privileged.  They double as worked examples of
:func:`~repro.campaign.spec.scenario_grid`.
"""

from __future__ import annotations

from typing import Callable

from repro.campaign.spec import (CampaignSpec, ScenarioSpec, SyntheticSpec,
                                 TopologySpec, TrafficSpec, WorkloadSpec,
                                 scenario_grid)
from repro.faults.model import FaultSpec
from repro.service.churn import ChurnSpec
from repro.service.qos import QosClass

__all__ = ["demo_campaign", "micro_campaign", "churn_campaign",
           "replay_campaign", "design_campaign", "fault_campaign",
           "fairness_campaign", "synthetic_campaign", "PRESETS",
           "preset_by_name"]


def demo_campaign(*, n_slots: int = 600,
                  seeds: tuple[int, ...] = (1, 2)) -> CampaignSpec:
    """The ``python -m repro campaign --demo`` grid.

    Two topologies × two traffic mixes × two backends = 8 simulation
    scenarios plus one service-churn scenario, one churn-replay
    scenario and one churn+faults scenario, each across the seed grid —
    wide enough to exercise the pool and every scenario mode, small
    enough to finish in seconds.
    """
    scenarios = scenario_grid(
        topologies={
            "mesh2x2": TopologySpec(kind="mesh", cols=2, rows=2,
                                    nis_per_router=1),
            "ring4": TopologySpec(kind="ring", cols=4, nis_per_router=1),
        },
        traffic_mixes={
            "cbr": TrafficSpec(pattern="cbr"),
            "burst": TrafficSpec(pattern="burst"),
        },
        backends={
            "flit": ("flit", "synchronous"),
            "be": ("be", "synchronous"),
        },
        workload=WorkloadSpec(n_channels=6, n_ips=8),
        n_slots=n_slots, table_size=16)
    scenarios += (
        ScenarioSpec(
            name="mesh2x2-churn-serve", mode="serve",
            topology=TopologySpec(kind="mesh", cols=2, rows=2,
                                  nis_per_router=1),
            churn=ChurnSpec(n_sessions=150), table_size=16),
        ScenarioSpec(
            name="mesh3x3-churn-replay", mode="replay", backend="flit",
            topology=TopologySpec(kind="mesh", cols=3, rows=3,
                                  nis_per_router=2),
            churn=ChurnSpec(n_sessions=60), n_slots=1200,
            table_size=16),
        ScenarioSpec(
            name="mesh3x3-churn-faults", mode="faults", backend="flit",
            topology=TopologySpec(kind="mesh", cols=3, rows=3,
                                  nis_per_router=2),
            churn=ChurnSpec(n_sessions=40),
            faults=FaultSpec(n_faults=3, fault_rate_per_s=400.0,
                             mean_repair_s=0.004),
            n_slots=800, table_size=16),
    )
    return CampaignSpec(name="demo", scenarios=scenarios, seeds=seeds)


def micro_campaign(*, n_slots: int = 400) -> CampaignSpec:
    """A 4-scenario micro-campaign for the tier-2 benchmark smoke check.

    One scenario per backend flavour (flit, cycle-synchronous,
    cycle-mesochronous, best-effort) on one small mesh, one seed — the
    cheapest campaign that still exercises every adapter and the
    parallel pool.
    """
    # One pipeline stage per link so the mesochronous scenario is legal.
    topology = TopologySpec(kind="mesh", cols=2, rows=2, nis_per_router=1,
                            pipeline_stages=1)
    workload = WorkloadSpec(n_channels=4, n_ips=8)
    scenarios = tuple(
        ScenarioSpec(name=name, topology=topology, workload=workload,
                     traffic=TrafficSpec(pattern="cbr"),
                     backend=backend, clocking=clocking,
                     n_slots=n_slots, table_size=16)
        for name, backend, clocking in (
            ("flit", "flit", "synchronous"),
            ("cycle-sync", "cycle", "synchronous"),
            ("cycle-meso", "cycle", "mesochronous"),
            ("be", "be", "synchronous"),
        ))
    return CampaignSpec(name="micro-smoke", scenarios=scenarios,
                        seeds=(1,))


def churn_campaign(*, n_sessions: int = 400,
                   seeds: tuple[int, ...] = (1, 2)) -> CampaignSpec:
    """A service-churn sweep: topology × arrival rate × session mix.

    Every scenario runs the online control plane (``mode="serve"``)
    over a seeded churn stream; the grid crosses the Section VII mesh
    against a smaller mesh, slow against fast arrivals, and the default
    mix against a bulk-heavy one — the service-side analogue of the
    simulation demo grid.
    """
    topologies = {
        "cmesh4x3": TopologySpec(kind="cmesh", cols=4, rows=3,
                                 nis_per_router=4),
        "mesh3x3": TopologySpec(kind="mesh", cols=3, rows=3,
                                nis_per_router=2),
    }
    bulk_heavy = (
        QosClass("video", throughput_mb_s=40.0, max_latency_ns=400.0,
                 weight=1.0),
        QosClass("bulk", throughput_mb_s=120.0, max_latency_ns=None,
                 weight=3.0),
    )
    mixes = {"default": None,
             "bulkheavy": bulk_heavy}
    rates = {"slow": 1000.0, "fast": 10000.0}
    scenarios = []
    for topo_label, topology in sorted(topologies.items()):
        for mix_label, classes in sorted(mixes.items()):
            for rate_label, rate in sorted(rates.items()):
                churn = ChurnSpec(
                    n_sessions=n_sessions, arrival_rate_per_s=rate,
                    **({} if classes is None else {"classes": classes}))
                scenarios.append(ScenarioSpec(
                    name=f"{topo_label}-{mix_label}-{rate_label}",
                    mode="serve", topology=topology, churn=churn,
                    table_size=32))
    return CampaignSpec(name="churn", scenarios=tuple(scenarios),
                        seeds=seeds)


def replay_campaign(*, n_sessions: int = 120, n_slots: int = 2400,
                    seeds: tuple[int, ...] = (1, 2)) -> CampaignSpec:
    """A dynamic-composability sweep: topology × backend under churn.

    Every scenario records a churn trace through the control plane,
    fits it into ``n_slots`` simulation slots, and replays it as a
    reconfiguration timeline on the named backend.  The flit scenarios
    state the paper's claim (survivor traces bit-identical across every
    epoch); the best-effort scenarios show the same churn destroying
    isolation on the baseline.
    """
    topologies = {
        "mesh3x3": TopologySpec(kind="mesh", cols=3, rows=3,
                                nis_per_router=2),
        "cmesh4x3": TopologySpec(kind="cmesh", cols=4, rows=3,
                                 nis_per_router=4),
    }
    scenarios = []
    for topo_label, topology in sorted(topologies.items()):
        for backend in ("flit", "be"):
            scenarios.append(ScenarioSpec(
                name=f"{topo_label}-{backend}-replay", mode="replay",
                backend=backend, topology=topology,
                churn=ChurnSpec(n_sessions=n_sessions),
                n_slots=n_slots, table_size=32))
    return CampaignSpec(name="replay", scenarios=tuple(scenarios),
                        seeds=seeds)


def design_campaign(*, target_admission_rate: float = 0.95,
                    seed: int = 2009) -> CampaignSpec:
    """A design-space sweep: dimension a network for a churn profile.

    The workload is the expected concurrent session population of a
    churn profile at a target admission rate (Little's law, see
    :func:`repro.design.space.workload_from_churn`); every scenario is
    one ``mode="design"`` candidate — topology family x slot-table size
    — evaluated through pruning, mapping optimisation, feasibility
    bisection and the synthesis cost models.  The aggregated records
    are exactly what :func:`repro.design.pareto_front` consumes.
    """
    from repro.design.space import (DesignSpace, DesignSpec,
                                    workload_from_churn)

    use_case = workload_from_churn(
        ChurnSpec(n_sessions=200, arrival_rate_per_s=800.0),
        target_admission_rate=target_admission_rate, seed=seed)
    space = DesignSpace(
        topologies=(
            TopologySpec(kind="mesh", cols=2, rows=2, nis_per_router=3),
            TopologySpec(kind="mesh", cols=3, rows=3, nis_per_router=2),
            TopologySpec(kind="cmesh", cols=3, rows=2, nis_per_router=4),
            TopologySpec(kind="torus", cols=3, rows=3, nis_per_router=2),
            TopologySpec(kind="ring", cols=5, nis_per_router=2),
        ),
        table_sizes=(16, 32),
        mappings=("optimized",))
    scenarios = tuple(
        ScenarioSpec(
            name=candidate.label, mode="design",
            topology=candidate.topology,
            table_size=candidate.table_size,
            design=DesignSpec(
                use_case=use_case, data_width=candidate.data_width,
                mapping=candidate.mapping,
                min_frequency_mhz=space.min_frequency_mhz,
                max_frequency_mhz=space.max_frequency_mhz,
                tolerance_mhz=space.tolerance_mhz, prune=space.prune))
        for candidate in space.candidates())
    return CampaignSpec(name="design", scenarios=scenarios, seeds=(1,),
                        base_seed=seed)


def fault_campaign(*, n_sessions: int = 80, n_slots: int = 1600,
                   seeds: tuple[int, ...] = (1, 2)) -> CampaignSpec:
    """A survivability sweep: fault rate × topology × slot-table size.

    Every scenario runs the control plane over churn merged with a
    seeded fault schedule (``mode="faults"``), folds the outcome against
    the fault-free baseline of the identical churn, and replays the
    churn+fault timeline on the flit backend for the fault-survivor
    composability verdict.  The grid crosses a sparse adversary (few
    faults, quick repairs) against a dense one (many faults, slow
    repairs) over two topologies and two slot-table sizes — the
    quantitative answer to "how much service survives N failures?".
    """
    topologies = {
        "mesh3x3": TopologySpec(kind="mesh", cols=3, rows=3,
                                nis_per_router=2),
        "cmesh4x3": TopologySpec(kind="cmesh", cols=4, rows=3,
                                 nis_per_router=4),
    }
    adversaries = {
        "sparse": FaultSpec(n_faults=3, fault_rate_per_s=150.0,
                            mean_repair_s=0.003),
        "dense": FaultSpec(n_faults=8, fault_rate_per_s=600.0,
                           mean_repair_s=0.01),
    }
    scenarios = []
    for topo_label, topology in sorted(topologies.items()):
        for adv_label, faults in sorted(adversaries.items()):
            for table_size in (16, 32):
                scenarios.append(ScenarioSpec(
                    name=f"{topo_label}-{adv_label}-t{table_size}-faults",
                    mode="faults", backend="flit", topology=topology,
                    churn=ChurnSpec(n_sessions=n_sessions),
                    faults=faults, n_slots=n_slots,
                    table_size=table_size))
    return CampaignSpec(name="faults", scenarios=tuple(scenarios),
                        seeds=seeds)


def fairness_campaign(*, n_events: int = 800,
                      seeds: tuple[int, ...] = (1, 2)) -> CampaignSpec:
    """A multi-tenant fairness sweep: adversary intensity × weights.

    Every scenario runs the ``mode="fairness"`` comparison — the
    weighted-fair control plane versus the FCFS baseline versus
    per-tenant solo references over one tenant-tagged churn stream —
    on the Section VII mesh.  The grid crosses a mild against a severe
    abuser (3x / 10x the honest arrival intensity) with equal against
    skewed tenant weights, so the aggregated retention columns show
    both knobs of the policy at work.
    """
    from repro.service.fairness import TenantSpec, abusive_tenant_mix

    topology = TopologySpec(kind="cmesh", cols=4, rows=3,
                            nis_per_router=4)
    adversaries = {"mild": 3.0, "severe": 10.0}
    weightings = {"equal": 1.0, "weighted": 2.0}
    scenarios = []
    for adv_label, multiplier in sorted(adversaries.items()):
        for weight_label, weight in sorted(weightings.items()):
            tenants = abusive_tenant_mix(
                3, multiplier=multiplier, floor_opens_per_window=2)
            if weight != 1.0:
                # Skewed grid cells double every honest tenant's
                # fair-share weight while the abuser keeps weight 1.
                tenants = (tenants[0],) + tuple(
                    TenantSpec(t.name, weight=weight,
                               rate_multiplier=t.rate_multiplier,
                               apps=t.apps,
                               floor_opens_per_window=
                               t.floor_opens_per_window)
                    for t in tenants[1:])
            churn = ChurnSpec(
                n_sessions=max(1, (n_events + 1) // 2 + 8),
                arrival_rate_per_s=18000.0, tenants=tenants)
            scenarios.append(ScenarioSpec(
                name=f"cmesh4x3-{adv_label}-{weight_label}-fairness",
                mode="fairness", topology=topology, churn=churn,
                table_size=32))
    return CampaignSpec(name="fairness", scenarios=tuple(scenarios),
                        seeds=seeds)


def synthetic_campaign(*, n_scenarios: int = 8,
                       seeds: tuple[int, ...] = (1, 2),
                       work: int = 200,
                       fail_seeds: tuple[int, ...] = ()) -> CampaignSpec:
    """A fabric-scale grid of ``mode="synthetic"`` runs.

    Each run hashes a seeded chain for ``work`` rounds and records the
    final digest — deterministic, allocation-free, microseconds-cheap —
    so 10k+-run grids exercise sharding, checkpointing, dispatch and
    streaming aggregation without simulation cost drowning the
    measurement.  Seeds listed in ``fail_seeds`` raise inside the run
    body, driving the crashed-envelope degradation path.

    >>> spec = synthetic_campaign(n_scenarios=3, seeds=(1, 2))
    >>> len(list(spec.expand()))
    6
    """
    synthetic = SyntheticSpec(work=work, fail_seeds=fail_seeds)
    scenarios = tuple(
        ScenarioSpec(name=f"synth-{i:04d}", mode="synthetic",
                     synthetic=synthetic)
        for i in range(n_scenarios))
    return CampaignSpec(name="synthetic", scenarios=scenarios,
                        seeds=seeds)


#: Registry of the ready-made campaigns, keyed by their function names
#: (what ``python -m repro campaign --preset <name>`` accepts).
PRESETS: dict[str, Callable[[], CampaignSpec]] = {
    "demo_campaign": demo_campaign,
    "micro_campaign": micro_campaign,
    "churn_campaign": churn_campaign,
    "replay_campaign": replay_campaign,
    "design_campaign": design_campaign,
    "fault_campaign": fault_campaign,
    "fairness_campaign": fairness_campaign,
    "synthetic_campaign": synthetic_campaign,
}


def preset_by_name(name: str) -> CampaignSpec:
    """Build a preset campaign; unknown names list what is available."""
    from repro.core.exceptions import ConfigurationError
    key = name if name in PRESETS else f"{name}_campaign"
    if key not in PRESETS:
        raise ConfigurationError(
            f"unknown campaign preset {name!r}; available: "
            f"{', '.join(sorted(PRESETS))}")
    return PRESETS[key]()
