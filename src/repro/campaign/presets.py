"""Ready-made campaign specs: the CLI demo and the CI smoke check.

These are ordinary :class:`~repro.campaign.spec.CampaignSpec` values —
nothing here is privileged.  They double as worked examples of
:func:`~repro.campaign.spec.scenario_grid`.
"""

from __future__ import annotations

from repro.campaign.spec import (CampaignSpec, ScenarioSpec, TopologySpec,
                                 TrafficSpec, WorkloadSpec, scenario_grid)

__all__ = ["demo_campaign", "micro_campaign"]


def demo_campaign(*, n_slots: int = 600,
                  seeds: tuple[int, ...] = (1, 2)) -> CampaignSpec:
    """The ``python -m repro campaign --demo`` grid.

    Two topologies × two traffic mixes × two backends = 8 scenarios,
    each across the seed grid — wide enough to exercise the pool, small
    enough to finish in seconds.
    """
    scenarios = scenario_grid(
        topologies={
            "mesh2x2": TopologySpec(kind="mesh", cols=2, rows=2,
                                    nis_per_router=1),
            "ring4": TopologySpec(kind="ring", cols=4, nis_per_router=1),
        },
        traffic_mixes={
            "cbr": TrafficSpec(pattern="cbr"),
            "burst": TrafficSpec(pattern="burst"),
        },
        backends={
            "flit": ("flit", "synchronous"),
            "be": ("be", "synchronous"),
        },
        workload=WorkloadSpec(n_channels=6, n_ips=8),
        n_slots=n_slots, table_size=16)
    return CampaignSpec(name="demo", scenarios=scenarios, seeds=seeds)


def micro_campaign(*, n_slots: int = 400) -> CampaignSpec:
    """A 4-scenario micro-campaign for the tier-2 benchmark smoke check.

    One scenario per backend flavour (flit, cycle-synchronous,
    cycle-mesochronous, best-effort) on one small mesh, one seed — the
    cheapest campaign that still exercises every adapter and the
    parallel pool.
    """
    # One pipeline stage per link so the mesochronous scenario is legal.
    topology = TopologySpec(kind="mesh", cols=2, rows=2, nis_per_router=1,
                            pipeline_stages=1)
    workload = WorkloadSpec(n_channels=4, n_ips=8)
    scenarios = tuple(
        ScenarioSpec(name=name, topology=topology, workload=workload,
                     traffic=TrafficSpec(pattern="cbr"),
                     backend=backend, clocking=clocking,
                     n_slots=n_slots, table_size=16)
        for name, backend, clocking in (
            ("flit", "flit", "synchronous"),
            ("cycle-sync", "cycle", "synchronous"),
            ("cycle-meso", "cycle", "mesochronous"),
            ("be", "be", "synchronous"),
        ))
    return CampaignSpec(name="micro-smoke", scenarios=scenarios,
                        seeds=(1,))
