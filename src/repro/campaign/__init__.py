"""Scenario campaigns: declarative sweep specs and a sharded runner.

The campaign subsystem turns the unified
:class:`~repro.simulation.backend.SimulationBackend` protocol into a
batch engine: describe a grid of scenarios (topology × workload ×
traffic mix × backend/clocking × seeds) as plain data, then execute it
serially or across worker processes with byte-identical aggregated
results either way.  The grid is partitioned into deterministic shards
(:func:`shard_campaign`); give the runner a workdir and completed runs
checkpoint into per-shard journals (:class:`CampaignWorkdir`), so a
killed campaign resumes where it stopped — and still produces the
byte-identical report.
"""

from repro.campaign.fabric import (CampaignWorkdir, Shard,
                                   default_shard_size, shard_campaign,
                                   spec_fingerprint)
from repro.campaign.presets import (PRESETS, churn_campaign, demo_campaign,
                                    design_campaign, fault_campaign,
                                    micro_campaign, preset_by_name,
                                    replay_campaign, synthetic_campaign)
from repro.campaign.runner import (CampaignResult, CampaignRunner,
                                   execute_run)
from repro.campaign.spec import (CampaignSpec, RunSpec, ScenarioSpec,
                                 SyntheticSpec, TopologySpec, TrafficSpec,
                                 WorkloadSpec, derive_seed, scenario_grid)

__all__ = [
    "TopologySpec", "WorkloadSpec", "TrafficSpec", "SyntheticSpec",
    "ScenarioSpec", "RunSpec", "CampaignSpec", "scenario_grid",
    "derive_seed",
    "CampaignRunner", "CampaignResult", "execute_run",
    "Shard", "shard_campaign", "default_shard_size", "spec_fingerprint",
    "CampaignWorkdir",
    "demo_campaign", "micro_campaign", "churn_campaign",
    "replay_campaign", "design_campaign", "fault_campaign",
    "synthetic_campaign",
    "PRESETS", "preset_by_name",
]
