"""Scenario campaigns: declarative sweep specs and a parallel runner.

The campaign subsystem turns the unified
:class:`~repro.simulation.backend.SimulationBackend` protocol into a
batch engine: describe a grid of scenarios (topology × workload ×
traffic mix × backend/clocking × seeds) as plain data, then execute it
serially or across worker processes with byte-identical aggregated
results either way.
"""

from repro.campaign.presets import (PRESETS, churn_campaign, demo_campaign,
                                    design_campaign, fault_campaign,
                                    micro_campaign, preset_by_name,
                                    replay_campaign)
from repro.campaign.runner import (CampaignResult, CampaignRunner,
                                   execute_run)
from repro.campaign.spec import (CampaignSpec, RunSpec, ScenarioSpec,
                                 TopologySpec, TrafficSpec, WorkloadSpec,
                                 derive_seed, scenario_grid)

__all__ = [
    "TopologySpec", "WorkloadSpec", "TrafficSpec", "ScenarioSpec",
    "RunSpec", "CampaignSpec", "scenario_grid", "derive_seed",
    "CampaignRunner", "CampaignResult", "execute_run",
    "demo_campaign", "micro_campaign", "churn_campaign",
    "replay_campaign", "design_campaign", "fault_campaign",
    "PRESETS", "preset_by_name",
]
