"""Sharding, journals, and streaming reports for the campaign fabric.

This module is the persistence and addressing layer under
:class:`~repro.campaign.runner.CampaignRunner`:

* **Sharding** — :func:`shard_campaign` partitions a campaign's run
  grid into deterministic :class:`Shard` s.  Shard ids derive from the
  *sorted run-key ordering* (the canonical record order), never from
  scenario enumeration order or worker count, so the same spec always
  yields the same shard layout and a grid is addressable in O(shards)
  memory.
* **Checkpointed progress** — a :class:`CampaignWorkdir` holds an
  atomically-written manifest plus one append-only JSONL journal per
  shard (:class:`ShardJournal`).  Completed-run records are appended
  as they arrive; after a kill, :meth:`CampaignWorkdir.load_shard`
  tolerates a truncated trailing line and the runner re-executes only
  the missing runs.
* **Streaming reports** — :func:`iter_report_chunks` emits the
  canonical campaign report (`json.dumps(..., indent=2,
  sort_keys=True)` byte-compatible) from a *record iterator*, so a
  100k-run report can be written without ever materialising the full
  record list in memory.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.campaign.spec import CampaignSpec, RunSpec
from repro.core.exceptions import ConfigurationError

__all__ = ["Shard", "shard_campaign", "default_shard_size",
           "spec_fingerprint", "ShardJournal", "CampaignWorkdir",
           "iter_report_chunks"]

#: Manifest schema version; bumped on incompatible layout changes.
_MANIFEST_FORMAT = 1

#: Maximum journal file handles the workdir keeps open at once.
#: Dispatch order is roughly shard-sequential, so a small LRU cache
#: avoids per-record open/close without holding thousands of fds on
#: very large grids.
_MAX_OPEN_JOURNALS = 32


@dataclass(frozen=True)
class Shard:
    """One deterministic slice of a campaign's sorted run grid.

    ``run_ids`` are contiguous in the campaign's canonical (sorted)
    record order, which is what lets the final report stream shard by
    shard while staying globally ordered.
    """

    shard_id: str
    index: int
    run_ids: tuple[str, ...]

    @property
    def n_runs(self) -> int:
        """Runs addressed by this shard."""
        return len(self.run_ids)


def default_shard_size(n_runs: int) -> int:
    """Shard size used when the caller does not pick one.

    A pure function of the grid size — never of worker count — so the
    shard layout (and therefore every shard id and journal name) is
    identical whether the campaign runs on one worker or fifty.  Small
    grids get one-run shards (finest checkpoint granularity); huge
    grids cap at 512 runs per shard so a million-run campaign stays at
    ~2000 journals.

    >>> default_shard_size(10)
    1
    >>> default_shard_size(10_000)
    157
    >>> default_shard_size(1_000_000)
    512
    """
    return max(1, min(512, -(-n_runs // 64)))


def shard_campaign(spec: CampaignSpec, *, shard_size: int | None = None
                   ) -> tuple[Shard, ...]:
    """Partition ``spec``'s run grid into deterministic shards.

    Runs are sorted by run id first — the same ordering the canonical
    report uses — and each shard's id is a digest of the run ids it
    contains, so shard identity survives scenario re-ordering in the
    spec and is independent of how execution is scheduled.

    >>> from repro.campaign.presets import synthetic_campaign
    >>> spec = synthetic_campaign(n_scenarios=3, seeds=(1, 2))
    >>> shards = shard_campaign(spec, shard_size=4)
    >>> [s.n_runs for s in shards]
    [4, 2]
    >>> shards == shard_campaign(spec, shard_size=4)
    True
    """
    if shard_size is not None and shard_size < 1:
        raise ConfigurationError(
            f"shard_size must be >= 1, got {shard_size}")
    run_ids = sorted(run.run_id for run in spec.expand())
    size = shard_size or default_shard_size(len(run_ids))
    shards = []
    for index, start in enumerate(range(0, len(run_ids), size)):
        chunk = tuple(run_ids[start:start + size])
        digest = hashlib.sha256(
            "\n".join(chunk).encode()).hexdigest()[:10]
        shards.append(Shard(shard_id=f"s{index:04d}-{digest}",
                            index=index, run_ids=chunk))
    return tuple(shards)


def spec_fingerprint(spec: CampaignSpec) -> str:
    """Stable digest identifying a campaign grid for resume validation.

    Hashes the campaign name, base seed, seed grid and the full repr of
    every scenario (frozen dataclasses, so reprs are deterministic) —
    resuming a workdir with a *different* grid under the same name is
    caught instead of silently mixing records.
    """
    h = hashlib.sha256()
    h.update(f"{spec.name}\x00{spec.base_seed}\x00".encode())
    for seed in spec.seeds:
        h.update(f"{seed},".encode())
    for scenario in sorted(spec.scenarios, key=lambda s: s.name):
        h.update(repr(scenario).encode())
        h.update(b"\x00")
    return h.hexdigest()[:16]


class ShardJournal:
    """Append-only JSONL journal of one shard's completed-run records.

    Each line is one JSON-ready record (the same object that enters the
    canonical report).  Loading tolerates undecodable lines — a parent
    killed mid-append leaves a truncated tail, which simply means that
    run re-executes on resume.
    """

    def __init__(self, path: Path):
        self.path = path

    def load(self) -> dict[str, dict]:
        """Completed records by run id; first write wins on duplicates.

        Duplicates happen when a straggler batch was re-dispatched and
        both executions finished — the runs are deterministic, so the
        copies are identical and either is safe to keep.
        """
        records: dict[str, dict] = {}
        if not self.path.exists():
            return records
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated by a kill mid-append
                run_id = record.get("run_id")
                if isinstance(run_id, str) and run_id not in records:
                    records[run_id] = record
        return records


class CampaignWorkdir:
    """A campaign's on-disk checkpoint: manifest plus shard journals.

    Layout::

        <root>/manifest.json          # atomic: tmp + os.replace
        <root>/shards/<shard_id>.jsonl

    The manifest pins the grid fingerprint, shard size and shard ids;
    :meth:`resume` refuses a workdir whose manifest belongs to a
    different grid.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.manifest_path = self.root / "manifest.json"
        self.shards_dir = self.root / "shards"
        self._handles: OrderedDict[str, IO[str]] = OrderedDict()

    # -- manifest ------------------------------------------------------

    def initialise(self, spec: CampaignSpec,
                   shards: tuple[Shard, ...], shard_size: int) -> None:
        """Start a fresh campaign in this workdir (manifest must not
        already exist — refusing to clobber checkpoints is the safe
        default; resume instead, or pick a new directory)."""
        if self.manifest_path.exists():
            raise ConfigurationError(
                f"workdir {self.root} already holds a campaign manifest; "
                "pass resume=True to continue it or choose a fresh "
                "directory")
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format": _MANIFEST_FORMAT,
            "campaign": spec.name,
            "base_seed": spec.base_seed,
            "fingerprint": spec_fingerprint(spec),
            "shard_size": shard_size,
            "n_runs": sum(s.n_runs for s in shards),
            "shards": [{"id": s.shard_id, "index": s.index,
                        "n_runs": s.n_runs} for s in shards],
        }
        tmp = self.manifest_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.manifest_path)

    def resume(self, spec: CampaignSpec) -> int:
        """Validate this workdir against ``spec``; return its shard size.

        The manifest's shard size is authoritative on resume — it keeps
        shard ids (and journal names) stable even if the runner's
        default sizing changed between versions or the caller passed a
        different override.
        """
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise ConfigurationError(
                f"workdir {self.root} uses manifest format "
                f"{manifest.get('format')!r}; this runner expects "
                f"{_MANIFEST_FORMAT}")
        fingerprint = spec_fingerprint(spec)
        if manifest.get("fingerprint") != fingerprint:
            raise ConfigurationError(
                f"workdir {self.root} belongs to a different campaign "
                f"grid (manifest fingerprint "
                f"{manifest.get('fingerprint')!r}, spec {fingerprint!r}); "
                "refusing to mix records")
        shard_size = int(manifest["shard_size"])
        expected = [e["id"] for e in manifest["shards"]]
        actual = [s.shard_id
                  for s in shard_campaign(spec, shard_size=shard_size)]
        if expected != actual:
            raise ConfigurationError(
                f"workdir {self.root} shard layout does not match the "
                "spec; the grid changed since the manifest was written")
        return shard_size

    def has_manifest(self) -> bool:
        """Whether this workdir already holds a campaign manifest."""
        return self.manifest_path.exists()

    # -- journals ------------------------------------------------------

    def journal_path(self, shard_id: str) -> Path:
        """The JSONL journal path of one shard."""
        return self.shards_dir / f"{shard_id}.jsonl"

    def load_shard(self, shard: Shard) -> dict[str, dict]:
        """Completed records of ``shard``, keyed by run id."""
        loaded = ShardJournal(self.journal_path(shard.shard_id)).load()
        return {run_id: record for run_id, record in loaded.items()
                if run_id in set(shard.run_ids)}

    def append(self, shard_id: str, record: dict) -> None:
        """Append one completed-run record to a shard's journal.

        Handles are LRU-cached (dispatch is roughly shard-sequential)
        and every line is flushed so a killed parent loses at most the
        line it was writing.
        """
        handle = self._handles.get(shard_id)
        if handle is None:
            self.shards_dir.mkdir(parents=True, exist_ok=True)
            handle = open(self.journal_path(shard_id), "a",
                          encoding="utf-8")
            self._handles[shard_id] = handle
            while len(self._handles) > _MAX_OPEN_JOURNALS:
                _, oldest = self._handles.popitem(last=False)
                oldest.close()
        else:
            self._handles.move_to_end(shard_id)
        handle.write(json.dumps(record, sort_keys=True))
        handle.write("\n")
        handle.flush()

    def close(self) -> None:
        """Close every cached journal handle."""
        while self._handles:
            _, handle = self._handles.popitem()
            handle.close()

    def iter_records(self, shards: Iterable[Shard]
                     ) -> Iterator[dict]:
        """Stream journaled records in canonical (run-id-sorted) order.

        Shards partition the *sorted* run grid, so iterating shards in
        index order with an in-shard sort yields globally ordered
        records while only ever holding one shard in memory.
        """
        for shard in shards:
            loaded = self.load_shard(shard)
            for run_id in sorted(loaded):
                yield loaded[run_id]


def iter_report_chunks(campaign: str, base_seed: int, n_runs: int,
                       n_failed: int, records: Iterable[dict]
                       ) -> Iterator[str]:
    """The canonical campaign report as a stream of text chunks.

    Byte-compatible with ``json.dumps({"campaign": ..., "base_seed":
    ..., "n_runs": ..., "n_failed": ..., "records": [...]}, indent=2,
    sort_keys=True)`` — the report format every prior release wrote —
    but driven by a record *iterator*, so writing a huge report costs
    one record of memory, not the whole list.

    >>> "".join(iter_report_chunks("c", 1, 0, 0, iter(()))) == \\
    ...     json.dumps({"campaign": "c", "base_seed": 1, "n_runs": 0,
    ...                 "n_failed": 0, "records": []},
    ...                indent=2, sort_keys=True)
    True
    """
    yield (f'{{\n  "base_seed": {json.dumps(base_seed)},\n'
           f'  "campaign": {json.dumps(campaign)},\n'
           f'  "n_failed": {json.dumps(n_failed)},\n'
           f'  "n_runs": {json.dumps(n_runs)},\n'
           f'  "records": ')
    first = True
    for record in records:
        blob = json.dumps(record, indent=2, sort_keys=True)
        body = "\n".join("    " + line for line in blob.splitlines())
        yield ("[\n" if first else ",\n") + body
        first = False
    yield "[]\n}" if first else "\n  ]\n}"
