"""Declarative scenario specifications for simulation campaigns.

A *campaign* is a grid of simulation runs: topology × workload ×
traffic mix × backend/clocking scheme × seed.  Every axis is described
by a small frozen dataclass, so a campaign spec is a plain value —
picklable (it crosses process boundaries in the parallel runner),
hashable where it matters, and serialisable into the aggregated report
for provenance.

The specs are deliberately self-contained: a :class:`RunSpec` carries
everything needed to *rebuild* its configuration and traffic from
scratch inside a worker process.  Nothing simulated is ever shipped
between processes except the JSON-ready result record, which is what
makes serial and parallel execution byte-identical.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable

from repro.core.application import Application, UseCase
from repro.core.configuration import NocConfiguration, configure
from repro.core.connection import MB, ChannelSpec
from repro.core.exceptions import ConfigurationError
from repro.faults.model import FaultSpec
from repro.service.churn import ChurnSpec
from repro.simulation.traffic import (BernoulliMessages, Saturating,
                                      TrafficPattern)
from repro.topology.builders import (concentrated_mesh, line, mesh, ring,
                                     single_router, torus)
from repro.topology.graph import Topology
from repro.topology.mapping import Mapping, round_robin

__all__ = ["TopologySpec", "WorkloadSpec", "TrafficSpec", "SyntheticSpec",
           "ScenarioSpec", "RunSpec", "CampaignSpec", "scenario_grid",
           "derive_seed"]


def derive_seed(base_seed: int, *labels: object) -> int:
    """Stable 63-bit seed from a base seed and a label path.

    Uses SHA-256 rather than :func:`hash` so the derivation is identical
    across processes (``PYTHONHASHSEED`` does not leak in) and across
    runs — the foundation of campaign determinism.

    >>> derive_seed(2009, "demo/seed1") == derive_seed(2009, "demo/seed1")
    True
    >>> derive_seed(2009, "a") != derive_seed(2009, "b")
    True
    """
    digest = hashlib.sha256(
        ":".join([str(base_seed), *map(str, labels)]).encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class TopologySpec:
    """A named topology family plus its extent parameters."""

    kind: str = "mesh"        # mesh | cmesh | ring | line | torus | single
    cols: int = 2
    rows: int = 2
    nis_per_router: int = 1
    pipeline_stages: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _TOPOLOGY_BUILDERS:
            raise ConfigurationError(
                f"unknown topology kind {self.kind!r}; expected one of "
                f"{sorted(_TOPOLOGY_BUILDERS)}")

    @property
    def label(self) -> str:
        """Compact identifier used in run ids."""
        if self.kind == "single":
            return f"single{self.nis_per_router}"
        extent = (f"{self.cols}" if self.kind in ("ring", "line")
                  else f"{self.cols}x{self.rows}")
        return (f"{self.kind}{extent}"
                f"n{self.nis_per_router}p{self.pipeline_stages}")

    def build(self) -> Topology:
        """Construct the topology graph."""
        return _TOPOLOGY_BUILDERS[self.kind](self)


_TOPOLOGY_BUILDERS: dict[str, Callable[[TopologySpec], Topology]] = {
    "mesh": lambda s: mesh(s.cols, s.rows,
                           nis_per_router=s.nis_per_router,
                           pipeline_stages=s.pipeline_stages),
    "cmesh": lambda s: concentrated_mesh(
        s.cols, s.rows, nis_per_router=s.nis_per_router,
        pipeline_stages=s.pipeline_stages),
    "torus": lambda s: torus(s.cols, s.rows,
                             nis_per_router=s.nis_per_router,
                             pipeline_stages=s.pipeline_stages),
    "ring": lambda s: ring(s.cols, nis_per_router=s.nis_per_router,
                           pipeline_stages=s.pipeline_stages),
    "line": lambda s: line(s.cols, nis_per_router=s.nis_per_router,
                           pipeline_stages=s.pipeline_stages),
    "single": lambda s: single_router(s.nis_per_router),
}


@dataclass(frozen=True)
class WorkloadSpec:
    """A randomly generated but seed-deterministic channel set."""

    n_channels: int = 6
    n_ips: int = 8
    n_applications: int = 2
    min_throughput_mb_s: float = 5.0
    max_throughput_mb_s: float = 40.0

    def __post_init__(self) -> None:
        if self.n_channels < 1 or self.n_ips < 2:
            raise ConfigurationError(
                "workload needs >= 1 channel and >= 2 IPs")
        if self.n_applications < 1:
            raise ConfigurationError("workload needs >= 1 application")
        if not 0 < self.min_throughput_mb_s <= self.max_throughput_mb_s:
            raise ConfigurationError("bad throughput range")

    def build(self, topology: Topology, seed: int
              ) -> tuple[UseCase, Mapping]:
        """Generate the channel set and IP mapping for one run."""
        rng = random.Random(seed)
        ips = [f"ip{i}" for i in range(self.n_ips)]
        mapping = round_robin(ips, topology)
        if len({mapping.ni_of(ip) for ip in ips}) < 2:
            raise ConfigurationError(
                "workload needs IPs on at least two distinct NIs; "
                f"topology {topology.name!r} offers too few NIs")
        channels: list[ChannelSpec] = []
        for index in range(self.n_channels):
            src, dst = rng.sample(ips, 2)
            while mapping.ni_of(src) == mapping.ni_of(dst):
                src, dst = rng.sample(ips, 2)
            rate = rng.uniform(self.min_throughput_mb_s,
                               self.max_throughput_mb_s) * MB
            channels.append(ChannelSpec(
                f"c{index}", src, dst, rate,
                application=f"app{index % self.n_applications}"))
        applications = tuple(
            Application(f"app{k}", tuple(
                c for c in channels if c.application == f"app{k}"))
            for k in range(self.n_applications))
        applications = tuple(a for a in applications if a.channels)
        return UseCase(f"campaign_s{seed}", applications), mapping


@dataclass(frozen=True)
class TrafficSpec:
    """Which arrival process drives every channel, and how hard."""

    pattern: str = "cbr"         # cbr | burst | bernoulli | saturating
    rate_factor: float = 1.0
    burst_messages: int = 3
    probability: float = 0.25

    def __post_init__(self) -> None:
        if self.pattern not in ("cbr", "burst", "bernoulli", "saturating"):
            raise ConfigurationError(
                f"unknown traffic pattern {self.pattern!r}")
        if self.rate_factor <= 0:
            raise ConfigurationError("rate_factor must be positive")

    def build(self, config: NocConfiguration, seed: int
              ) -> dict[str, TrafficPattern]:
        """Instantiate per-channel patterns, deterministically.

        The rate-driven mixes delegate to the canonical Section VII
        builders (:func:`repro.usecase.runner.cbr_traffic` /
        :func:`~repro.usecase.runner.burst_traffic`), so campaign
        traffic and paper-experiment traffic stay one implementation.
        """
        from repro.usecase.runner import burst_traffic, cbr_traffic

        fmt = config.fmt
        if self.pattern == "cbr":
            return cbr_traffic(config, rate_factor=self.rate_factor)
        if self.pattern == "burst":
            return burst_traffic(config,
                                 burst_messages=self.burst_messages,
                                 rate_factor=self.rate_factor)
        patterns: dict[str, TrafficPattern] = {}
        for name in sorted(config.allocation.channels):
            if self.pattern == "bernoulli":
                patterns[name] = BernoulliMessages(
                    self.probability, fmt.payload_words_per_flit,
                    fmt.flit_size, seed=derive_seed(seed, name))
            else:
                patterns[name] = Saturating(fmt.payload_words_per_flit,
                                            fmt.flit_size)
        return patterns


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of a ``mode="synthetic"`` scenario.

    Synthetic runs execute a seed-deterministic hash chain instead of a
    simulation — microseconds per run — which is what lets dispatch
    overhead, checkpointing and resume be exercised (and benchmarked)
    on grids of tens of thousands of runs.  ``work`` counts SHA-256
    rounds per run; ``fail_seeds`` names seeds whose runs raise inside
    the worker, the deterministic probe for the fabric's
    failed-envelope (graceful-degradation) path.
    """

    work: int = 200
    fail_seeds: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ConfigurationError("synthetic work must be >= 0")


@dataclass(frozen=True)
class ScenarioSpec:
    """One cell of the campaign grid (before seed expansion).

    Three scenario modes share the grid machinery:

    * ``mode="simulate"`` (default) — allocate a workload and drive a
      simulation backend, as before;
    * ``mode="serve"`` — run the online control plane
      (:class:`~repro.service.controller.SessionService`) over a seeded
      churn workload; ``churn`` parameterises the session stream and the
      ``workload``/``traffic``/``backend`` axes are ignored;
    * ``mode="replay"`` — run the control plane with timeline recording,
      fit the recorded churn into ``n_slots`` simulation slots, execute
      it on ``backend`` (flit or be — the cycle model cannot
      reconfigure mid-run), and report the dynamic composability
      verdict (survivor traces, churn run vs solo reference);
    * ``mode="design"`` — evaluate one design candidate for the
      :mod:`repro.design` explorer: prune analytically, optimise the
      mapping, bisect for the minimum feasible frequency and price the
      network with the synthesis models.  ``design`` carries the
      workload and evaluation recipe; ``topology``/``table_size`` name
      the candidate and the ``traffic``/``backend``/``n_slots`` axes
      are ignored;
    * ``mode="faults"`` — run the control plane over churn merged with
      a seeded fault schedule (``faults``, a :class:`~repro.faults.
      model.FaultSpec`; defaults apply when ``None``), compare against
      the fault-free baseline run of the identical churn, and replay
      the churn+fault timeline on ``backend`` for the fault-survivor
      composability verdict.  Reports are survivability records
      (admission retention, guarantee retention, session survival);
    * ``mode="fairness"`` — run the multi-tenant fairness comparison
      (:func:`~repro.service.fairness_demo.fairness_comparison`) over a
      tenant-tagged churn stream: the ``policy="wfq"`` control plane
      versus the FCFS baseline versus per-tenant solo references, with
      per-tenant retention verdicts.  ``churn`` must carry a tenant
      mix (defaults to the abusive-tenant adversary profile when
      ``None``);
    * ``mode="synthetic"`` — execute a seed-deterministic hash chain
      (``synthetic``, a :class:`SyntheticSpec`; defaults apply when
      ``None``).  Costs microseconds per run, which makes it the grid
      filler for fabric-scale benchmarks, crash/resume drills and CI
      smoke checks; every other axis except ``topology`` (used only
      for its label) is ignored.

    ``policy`` selects the admission policy of the control-plane modes:
    ``"fcfs"`` (the default, byte-identical to the pre-fairness
    reports) or ``"wfq"`` for ``mode="serve"`` runs over a tenant-
    tagged churn spec; ``mode="fairness"`` always compares both.
    """

    name: str
    topology: TopologySpec = TopologySpec()
    workload: WorkloadSpec = WorkloadSpec()
    traffic: TrafficSpec = TrafficSpec()
    backend: str = "flit"
    clocking: str = "synchronous"   # cycle backend only
    n_slots: int = 800
    table_size: int = 16
    frequency_mhz: float = 500.0
    mode: str = "simulate"  # simulate|serve|replay|design|faults|
    #                         fairness|synthetic
    policy: str = "fcfs"    # serve / fairness modes: fcfs|wfq
    churn: ChurnSpec | None = None  # serve/replay/faults/fairness modes
    design: object | None = None    # design mode only (a DesignSpec)
    faults: FaultSpec | None = None  # faults mode only
    synthetic: SyntheticSpec | None = None  # synthetic mode only

    def __post_init__(self) -> None:
        from repro.simulation.backend import available_backends
        if self.mode not in ("simulate", "serve", "replay", "design",
                             "faults", "fairness", "synthetic"):
            raise ConfigurationError(
                f"unknown scenario mode {self.mode!r}; expected "
                "'simulate', 'serve', 'replay', 'design', 'faults', "
                "'fairness' or 'synthetic'")
        if self.policy not in ("fcfs", "wfq"):
            raise ConfigurationError(
                f"unknown admission policy {self.policy!r}; expected "
                "'fcfs' or 'wfq'")
        if self.policy != "fcfs" and self.mode not in (
                "serve", "fairness"):
            raise ConfigurationError(
                "policy='wfq' only applies to serve/fairness scenarios")
        if self.synthetic is not None and self.mode != "synthetic":
            raise ConfigurationError(
                "synthetic spec only applies to mode='synthetic' "
                "scenarios")
        if self.churn is not None and self.mode not in (
                "serve", "replay", "faults", "fairness"):
            raise ConfigurationError(
                "churn spec only applies to serve/replay/faults/"
                "fairness scenarios; design scenarios take their "
                "workload from the DesignSpec (see "
                "repro.design.workload_from_churn)")
        if (self.mode == "fairness" and self.churn is not None
                and not self.churn.tenants):
            raise ConfigurationError(
                "mode='fairness' scenarios need a tenant-tagged churn "
                "spec (ChurnSpec(tenants=...)) or churn=None for the "
                "default adversary profile")
        if (self.policy == "wfq" and self.mode == "serve"
                and (self.churn is None or not self.churn.tenants)):
            raise ConfigurationError(
                "policy='wfq' serve scenarios need a tenant-tagged "
                "churn spec (ChurnSpec(tenants=...))")
        if self.mode == "design":
            from repro.design.space import DesignSpec
            if not isinstance(self.design, DesignSpec):
                raise ConfigurationError(
                    "mode='design' scenarios need a DesignSpec in "
                    "'design'")
        elif self.design is not None:
            raise ConfigurationError(
                "design spec only applies to design scenarios")
        if self.faults is not None and self.mode != "faults":
            raise ConfigurationError(
                "fault spec only applies to mode='faults' scenarios")
        if self.backend not in available_backends():
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{available_backends()}")
        if self.mode in ("replay", "faults") and self.backend == "cycle":
            raise ConfigurationError(
                f"mode={self.mode!r} needs a backend that can "
                "reconfigure mid-run; use 'flit' or 'be'")
        if self.backend == "cycle" and self.clocking not in (
                "synchronous", "mesochronous", "asynchronous"):
            raise ConfigurationError(
                f"unknown clocking scheme {self.clocking!r}")
        if self.n_slots <= 0:
            raise ConfigurationError("n_slots must be positive")
        if self.table_size < 2:
            raise ConfigurationError("table_size must be >= 2")
        if self.frequency_mhz <= 0:
            raise ConfigurationError("frequency_mhz must be positive")


@dataclass(frozen=True)
class RunSpec:
    """One executable run: a scenario bound to a seed."""

    run_id: str
    scenario: ScenarioSpec
    seed: int
    base_seed: int

    @property
    def run_seed(self) -> int:
        """The derived seed all of this run's randomness flows from."""
        return derive_seed(self.base_seed, self.run_id)


@dataclass(frozen=True)
class CampaignSpec:
    """A full campaign: scenarios × seed grid."""

    name: str
    scenarios: tuple[ScenarioSpec, ...]
    seeds: tuple[int, ...] = (1,)
    base_seed: int = 2009

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ConfigurationError("campaign needs at least one scenario")
        if not self.seeds:
            raise ConfigurationError("campaign needs at least one seed")
        names = [s.name for s in self.scenarios]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate scenario names in campaign {self.name!r}")

    def expand(self) -> tuple[RunSpec, ...]:
        """The deterministic, ordered run list of the campaign."""
        runs = []
        for scenario in self.scenarios:
            for seed in self.seeds:
                runs.append(RunSpec(
                    run_id=f"{scenario.name}/seed{seed}",
                    scenario=scenario, seed=seed,
                    base_seed=self.base_seed))
        return tuple(runs)


def scenario_grid(topologies: dict[str, TopologySpec],
                  traffic_mixes: dict[str, TrafficSpec],
                  backends: dict[str, tuple[str, str]], *,
                  workload: WorkloadSpec | None = None,
                  n_slots: int = 800, table_size: int = 16,
                  frequency_mhz: float = 500.0
                  ) -> tuple[ScenarioSpec, ...]:
    """Cross labelled axes into the scenario list of a campaign.

    ``backends`` maps a label to a ``(backend, clocking)`` pair so the
    clocking-scheme axis and the backend axis stay one grid dimension
    (only the cycle backend distinguishes clockings).
    """
    workload = workload or WorkloadSpec()
    scenarios = []
    for topo_label, topology in sorted(topologies.items()):
        for traffic_label, traffic in sorted(traffic_mixes.items()):
            for backend_label, (backend, clocking) in sorted(
                    backends.items()):
                scenarios.append(ScenarioSpec(
                    name=f"{topo_label}-{traffic_label}-{backend_label}",
                    topology=topology, workload=workload,
                    traffic=traffic, backend=backend, clocking=clocking,
                    n_slots=n_slots, table_size=table_size,
                    frequency_mhz=frequency_mhz))
    return tuple(scenarios)
