"""Factories for the clocking schemes the paper distinguishes.

These build per-node :class:`~repro.clocking.clock.ClockDomain` maps for a
topology's routers and NIs:

* :func:`synchronous_domains` — one global clock (baseline Æthereal style);
* :func:`mesochronous_domains` — equal periods, per-node phases drawn from
  a seeded RNG, bounded by ``max_skew_fraction`` of the period between any
  two nodes (Section V assumes neighbour skew of at most half a cycle);
* :func:`plesiochronous_domains` — per-node periods within ``ppm`` of the
  nominal (Section VI's asynchronous wrapper absorbs this).
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.clocking.clock import ClockDomain, period_ps_from_hz
from repro.core.exceptions import ConfigurationError

__all__ = ["synchronous_domains", "mesochronous_domains",
           "plesiochronous_domains"]


def synchronous_domains(nodes: Iterable[str],
                        frequency_hz: float) -> dict[str, ClockDomain]:
    """One shared clock for every node (global synchronicity)."""
    period = period_ps_from_hz(frequency_hz)
    shared = ClockDomain(name="clk_global", period_ps=period, phase_ps=0)
    return {node: shared for node in nodes}


def mesochronous_domains(nodes: Iterable[str], frequency_hz: float, *,
                         max_skew_fraction: float = 0.5,
                         seed: int = 0) -> dict[str, ClockDomain]:
    """Equal-period clocks with bounded random phase offsets.

    ``max_skew_fraction`` bounds each node's phase within
    ``[0, max_skew_fraction * period]``, which in turn bounds the skew
    between any pair of nodes by the same amount — satisfying the paper's
    assumption that the skew between writing and reading clocks of a link
    stage is at most half a clock cycle when the fraction is 0.5.
    """
    if not 0 <= max_skew_fraction <= 0.5:
        raise ConfigurationError(
            f"max_skew_fraction must be in [0, 0.5], got {max_skew_fraction}")
    period = period_ps_from_hz(frequency_hz)
    rng = random.Random(seed)
    limit = int(period * max_skew_fraction)
    domains: dict[str, ClockDomain] = {}
    for node in sorted(set(nodes)):
        phase = rng.randint(0, limit) if limit > 0 else 0
        domains[node] = ClockDomain(name=f"clk_{node}", period_ps=period,
                                    phase_ps=phase)
    return domains


def plesiochronous_domains(nodes: Iterable[str], frequency_hz: float, *,
                           ppm: float = 200.0,
                           seed: int = 0) -> dict[str, ClockDomain]:
    """Clocks whose periods deviate up to ``ppm`` parts-per-million.

    Every node gets an independent period in
    ``[nominal * (1 - ppm/1e6), nominal * (1 + ppm/1e6)]`` and a random
    phase within its period.  The flit-synchronous network then runs at the
    rate of the slowest clock (Section VI-A), which the wrapper tests
    verify.
    """
    if ppm < 0:
        raise ConfigurationError(f"ppm must be >= 0, got {ppm}")
    nominal = period_ps_from_hz(frequency_hz)
    spread = max(1, round(nominal * ppm / 1e6)) if ppm > 0 else 0
    rng = random.Random(seed)
    domains: dict[str, ClockDomain] = {}
    for node in sorted(set(nodes)):
        period = nominal + (rng.randint(-spread, spread) if spread else 0)
        phase = rng.randint(0, period - 1)
        domains[node] = ClockDomain(name=f"clk_{node}", period_ps=period,
                                    phase_ps=phase)
    return domains
