"""Clock domains: synchronous, mesochronous and plesiochronous timing."""

from repro.clocking.clock import PS_PER_S, ClockDomain, period_ps_from_hz
from repro.clocking.domains import (mesochronous_domains,
                                    plesiochronous_domains,
                                    synchronous_domains)

__all__ = [
    "ClockDomain", "PS_PER_S", "period_ps_from_hz",
    "synchronous_domains", "mesochronous_domains", "plesiochronous_domains",
]
