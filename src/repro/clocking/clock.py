"""Clock domains with integer-picosecond timing.

All detailed simulation in this library is driven by clock edges placed on
an integer picosecond timeline — integers so that event ordering is exact
and runs are bit-reproducible (no floating-point accumulation).

A :class:`ClockDomain` is defined by its period and phase.  Three
relationships between domains matter for aelite (Section V/VI and [17]):

* **synchronous** — same period, same phase;
* **mesochronous** — same period, arbitrary but constant phase difference
  (the case the link pipeline stage of Section V absorbs, up to half a
  period of skew);
* **plesiochronous / heterochronous** — slightly or arbitrarily different
  periods (the case requiring the asynchronous wrapper of Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.exceptions import ConfigurationError

__all__ = ["ClockDomain", "PS_PER_S", "period_ps_from_hz"]

PS_PER_S = 1_000_000_000_000


def period_ps_from_hz(frequency_hz: float) -> int:
    """Clock period in integer picoseconds for a frequency in Hz."""
    if frequency_hz <= 0:
        raise ConfigurationError(
            f"frequency must be positive, got {frequency_hz}")
    period = round(PS_PER_S / frequency_hz)
    if period < 1:
        raise ConfigurationError(
            f"frequency {frequency_hz} Hz is above the 1 ps resolution")
    return period


@dataclass(frozen=True)
class ClockDomain:
    """A free-running clock: rising edges at ``phase_ps + n * period_ps``."""

    name: str
    period_ps: int
    phase_ps: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("clock domain name must be non-empty")
        if self.period_ps <= 0:
            raise ConfigurationError(
                f"clock {self.name!r}: period must be positive, "
                f"got {self.period_ps}")
        if not 0 <= self.phase_ps < self.period_ps:
            raise ConfigurationError(
                f"clock {self.name!r}: phase {self.phase_ps} must lie in "
                f"[0, period={self.period_ps})")

    @property
    def frequency_hz(self) -> float:
        """Nominal frequency in Hz."""
        return PS_PER_S / self.period_ps

    def edge_time(self, n: int) -> int:
        """Time of the ``n``-th rising edge (0-based)."""
        if n < 0:
            raise ConfigurationError(f"edge index must be >= 0, got {n}")
        return self.phase_ps + n * self.period_ps

    def edges_until(self, t_end_ps: int) -> Iterator[tuple[int, int]]:
        """Yield ``(edge_index, time_ps)`` for all edges strictly before
        ``t_end_ps``."""
        n = 0
        t = self.phase_ps
        while t < t_end_ps:
            yield n, t
            n += 1
            t += self.period_ps

    def cycles_in(self, duration_ps: int) -> int:
        """Number of rising edges in ``[0, duration_ps)``."""
        if duration_ps <= self.phase_ps:
            return 0
        return 1 + (duration_ps - self.phase_ps - 1) // self.period_ps

    def skew_to(self, other: "ClockDomain") -> int:
        """Phase difference to another domain of equal period, in ps.

        Returned in ``(-period/2, period/2]`` — the paper's mesochronous
        stage assumes its magnitude is at most half a period.  Raises for
        domains of different period (those are plesiochronous; skew is not
        a constant).
        """
        if other.period_ps != self.period_ps:
            raise ConfigurationError(
                f"skew between {self.name!r} ({self.period_ps} ps) and "
                f"{other.name!r} ({other.period_ps} ps) is undefined: "
                "periods differ")
        diff = (other.phase_ps - self.phase_ps) % self.period_ps
        if diff > self.period_ps // 2:
            diff -= self.period_ps
        return diff

    def is_mesochronous_with(self, other: "ClockDomain") -> bool:
        """Same period (phase may differ arbitrarily)."""
        return self.period_ps == other.period_ps

    def __repr__(self) -> str:
        return (f"ClockDomain({self.name!r}, {self.frequency_hz / 1e6:.1f} MHz"
                f", phase={self.phase_ps} ps)")
