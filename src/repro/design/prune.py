"""Analytical lower-bound pruning of design candidates.

Dimensioning a network means scoring hundreds of (topology, table size,
word format, mapping) candidates; actually *allocating* a candidate is by
far the most expensive step.  Everything here is a necessary condition —
arithmetic over slot demands that every feasible allocation must satisfy
— so a candidate rejected by :func:`prune_candidate` is provably
infeasible for the whole frequency interval and never reaches the
allocator.  The same arithmetic, solved for frequency instead of
checked at a fixed one, yields :func:`frequency_lower_bound_hz`, which
tightens the bisection interval of the feasibility search for the
candidates that survive.

Three bound families (all per Section III's TDM arithmetic, and in the
spirit of the flow-based lower bounds of Even & Fais):

* **serialisation** — an NI's injection (ejection) link is a single
  resource of ``table_size`` slots; the channels sourced (sunk) at one
  NI must fit it, both in count (one slot each, minimum) and in
  aggregate slot demand at the candidate's frequency ceiling;
* **aggregate capacity** — each channel consumes its slot demand on
  every link of its route; summing demand times the *shortest possible*
  route length cannot exceed the total slot capacity of all links;
* **bisection** — for coordinate-embedded topologies (all builders
  store ``x``/``y``), every vertical/horizontal cut must carry the slot
  demand of all channels whose endpoints straddle it, per direction,
  within the slot capacity of the links actually crossing the cut
  (wrap-around links of tori count, because the cut edges are read off
  the real link graph).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.application import UseCase
from repro.core.words import WordFormat
from repro.topology.builders import router_coords
from repro.topology.graph import NodeKind, Topology
from repro.topology.mapping import Mapping, router_distances

__all__ = ["PruneReport", "prune_candidate", "frequency_lower_bound_hz",
           "min_traversal_slots"]


@dataclass(frozen=True)
class PruneReport:
    """Outcome of the analytical feasibility screen of one candidate.

    ``feasible_possible=False`` is a proof of infeasibility at (and
    below) the checked frequency; ``True`` only means no lower bound
    fired — the allocator still has the last word.
    """

    feasible_possible: bool
    frequency_hz: float
    reasons: tuple[str, ...] = field(default_factory=tuple)
    checks: int = 0

    def to_record(self) -> dict[str, object]:
        """JSON-ready summary."""
        return {"feasible_possible": self.feasible_possible,
                "frequency_mhz": round(self.frequency_hz / 1e6, 3),
                "reasons": list(self.reasons), "checks": self.checks}


def min_traversal_slots(hop_distance: int, pipeline_stages: int = 0) -> int:
    """Slots a flit needs end-to-end on a shortest route.

    ``hop_distance`` router-router hops traverse ``hop_distance + 1``
    routers; each router is one slot, the delivery slot is one more, and
    every pipeline stage on the router-router links adds one.
    """
    return hop_distance + 2 + pipeline_stages * hop_distance


def _ni_demands(use_case: UseCase, mapping: Mapping, table_size: int,
                frequency_hz: float, fmt: WordFormat
                ) -> tuple[dict[str, list[str]], dict[str, list[str]],
                           dict[str, int]]:
    """Per-NI channel lists (by src / dst) and per-channel slot demand."""
    by_src: dict[str, list[str]] = {}
    by_dst: dict[str, list[str]] = {}
    demand: dict[str, int] = {}
    for ch in use_case.channels:
        by_src.setdefault(mapping.ni_of(ch.src_ip), []).append(ch.name)
        by_dst.setdefault(mapping.ni_of(ch.dst_ip), []).append(ch.name)
        # Throughput-only demand — the same rotation arithmetic as
        # repro.core.requirements.slots_for_throughput, inlined because
        # that helper *raises* beyond the table size while a bound must
        # keep the unclamped ceil (the serialisation check below then
        # reports the overflow as its infeasibility reason).  Latency
        # requirements can only raise demand, so this stays a valid
        # lower bound.
        rotation_bytes = (ch.throughput_bytes_per_s * table_size *
                          fmt.flit_size / frequency_hz)
        n = max(1, math.ceil(rotation_bytes / fmt.payload_bytes_per_flit
                             - 1e-12))
        demand[ch.name] = n
    return by_src, by_dst, demand


def frequency_lower_bound_hz(topology: Topology, use_case: UseCase,
                             mapping: Mapping, *,
                             fmt: WordFormat | None = None) -> float:
    """Frequency below which *no* allocation can exist.

    From the serialisation bound: the channels sourced (or sunk) at one
    NI share its single link, whose payload capacity is
    ``f * payload_bytes_per_flit / flit_size``; solving
    ``sum(throughput) <= capacity`` for ``f`` over the most loaded NI
    gives the floor.  Exact fractional relaxation of the slot demand —
    the integer ceils only push the true minimum higher.
    """
    fmt = fmt or WordFormat()
    load: dict[str, float] = {}
    for ch in use_case.channels:
        for key in (("tx", mapping.ni_of(ch.src_ip)),
                    ("rx", mapping.ni_of(ch.dst_ip))):
            label = f"{key[0]}:{key[1]}"
            load[label] = load.get(label, 0.0) + ch.throughput_bytes_per_s
    if not load:
        return 0.0
    worst = max(load.values())
    return worst * fmt.flit_size / fmt.payload_bytes_per_flit


def _cut_links(router_links, coords: dict[str, tuple[int, int]],
               index: int, boundary: int) -> tuple[int, int]:
    """Directed router-router links crossing a coordinate cut.

    Returns ``(forward, backward)`` counts for the cut between
    coordinate ``<= boundary`` and ``> boundary`` along the axis at
    ``index`` (0 = x, 1 = y); ``router_links`` and ``coords`` are
    precomputed once per candidate by :func:`prune_candidate`.
    """
    forward = backward = 0
    for link in router_links:
        a = coords[link.src][index] <= boundary
        b = coords[link.dst][index] <= boundary
        if a and not b:
            forward += 1
        elif b and not a:
            backward += 1
    return forward, backward


def prune_candidate(topology: Topology, use_case: UseCase,
                    mapping: Mapping, *, table_size: int,
                    frequency_hz: float,
                    fmt: WordFormat | None = None,
                    distances: dict[str, dict[str, int]] | None = None
                    ) -> PruneReport:
    """Run all analytical lower bounds at the candidate's frequency ceiling.

    ``frequency_hz`` should be the *highest* frequency the search will
    consider for this candidate (slot demand shrinks as frequency grows,
    so a bound violated at the ceiling is violated everywhere below it).
    ``distances`` may pass a precomputed :func:`router_distances` map so
    repeated prunes of one topology share the all-pairs BFS.
    """
    fmt = fmt or WordFormat()
    reasons: list[str] = []
    checks = 0
    by_src, by_dst, demand = _ni_demands(use_case, mapping, table_size,
                                         frequency_hz, fmt)

    # 0. Co-location: endpoints on one NI can never use the NoC.
    for ch in use_case.channels:
        checks += 1
        if mapping.ni_of(ch.src_ip) == mapping.ni_of(ch.dst_ip):
            reasons.append(
                f"channel {ch.name!r}: both endpoints map to NI "
                f"{mapping.ni_of(ch.src_ip)!r}")

    # 1. Serialisation: counts and slot demand per NI link.
    for side, groups in (("injection", by_src), ("ejection", by_dst)):
        for ni in sorted(groups):
            names = groups[ni]
            checks += 1
            if len(names) > table_size:
                reasons.append(
                    f"{side} link of {ni!r} must serialise {len(names)} "
                    f"channels but the table has {table_size} slots")
                continue
            slots = sum(demand[name] for name in names)
            if slots > table_size:
                reasons.append(
                    f"{side} link of {ni!r} needs {slots} slots of "
                    f"{table_size} at "
                    f"{frequency_hz / 1e6:.0f} MHz")

    # 2. Aggregate capacity: demand x shortest route length vs all links.
    distances = distances or router_distances(topology)
    checks += 1
    slot_hops = 0
    for ch in use_case.channels:
        src_router = topology.attached_router(mapping.ni_of(ch.src_ip))
        dst_router = topology.attached_router(mapping.ni_of(ch.dst_ip))
        hops = distances[src_router].get(dst_router)
        if hops is None:
            reasons.append(
                f"channel {ch.name!r}: no route between routers "
                f"{src_router!r} and {dst_router!r}")
            continue
        # One reservation per traversed link: NI out + hops + NI in.
        slot_hops += demand[ch.name] * (hops + 2)
    capacity = len(topology.links) * table_size
    if slot_hops > capacity:
        reasons.append(
            f"aggregate demand of {slot_hops} slot-links exceeds the "
            f"{capacity} available across {len(topology.links)} links")

    # 3. Bisection: coordinate cuts, per direction.
    coords = {r: router_coords(topology, r) for r in topology.routers}
    router_links = [link for link in topology.links
                    if topology.kind(link.src) is NodeKind.ROUTER
                    and topology.kind(link.dst) is NodeKind.ROUTER]
    endpoint_coords = [
        (coords[topology.attached_router(mapping.ni_of(ch.src_ip))],
         coords[topology.attached_router(mapping.ni_of(ch.dst_ip))],
         demand[ch.name])
        for ch in use_case.channels]
    for axis, index in (("x", 0), ("y", 1)):
        values = sorted({c[index] for c in coords.values()})
        for boundary in values[:-1]:
            forward_cap, backward_cap = _cut_links(router_links, coords,
                                                   index, boundary)
            forward = backward = 0
            for src_coord, dst_coord, slots in endpoint_coords:
                src_side = src_coord[index] <= boundary
                dst_side = dst_coord[index] <= boundary
                if src_side and not dst_side:
                    forward += slots
                elif dst_side and not src_side:
                    backward += slots
            checks += 1
            for label, need, cap in (("->", forward, forward_cap),
                                     ("<-", backward, backward_cap)):
                if need > cap * table_size:
                    reasons.append(
                        f"bisection {axis}<={boundary} {label}: "
                        f"{need} slots demanded across {cap} links "
                        f"({cap * table_size} slot capacity)")

    # 4. Latency floors on shortest routes.  The per-hop stage count is
    # the *minimum* over router-router links so the floor stays a lower
    # bound on heterogeneous pipelining.
    stages = min(
        (link.pipeline_stages for link in topology.links
         if topology.kind(link.src) is NodeKind.ROUTER
         and topology.kind(link.dst) is NodeKind.ROUTER),
        default=0)
    for ch in use_case.channels:
        if ch.max_latency_ns is None:
            continue
        checks += 1
        src_router = topology.attached_router(mapping.ni_of(ch.src_ip))
        dst_router = topology.attached_router(mapping.ni_of(ch.dst_ip))
        hops = distances[src_router].get(dst_router)
        if hops is None:
            continue  # already reported above
        floor_slots = 1 + min_traversal_slots(hops, stages)
        floor_ns = floor_slots * fmt.flit_size / frequency_hz * 1e9
        if floor_ns > ch.max_latency_ns * (1 + 1e-9):
            reasons.append(
                f"channel {ch.name!r}: latency floor {floor_ns:.1f} ns "
                f"over {hops} hops exceeds requirement "
                f"{ch.max_latency_ns:.1f} ns at "
                f"{frequency_hz / 1e6:.0f} MHz")

    return PruneReport(feasible_possible=not reasons,
                       frequency_hz=frequency_hz,
                       reasons=tuple(reasons), checks=checks)
