"""Search primitives: feasibility probes, probe caching, 1-D scans.

Absorbed from ``repro.core.exploration`` (which remains as a deprecated
re-export shim): these are the building blocks the design-space explorer
composes — a cached feasibility probe, a bisection for the minimum
feasible frequency, and a slot-table-size scan whose rows now carry the
synthesis-model area and frequency columns so a scan is directly
plottable as a trade-off curve.

The probe cache exists because a design search hammers ``configure()``
with near-duplicate questions: restarted bisections re-probe the same
frequencies, grid scans revisit (topology, table size) cells, and
feasibility is *monotone* in frequency — so one infeasible probe at
``f`` answers every probe below ``f`` for free, and one feasible probe
answers everything above.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.analysis import analyse, summarise
from repro.core.application import UseCase
from repro.core.configuration import configure
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.core.words import WordFormat
from repro.synthesis.network import network_area_um2, network_fmax_hz
from repro.topology.graph import Topology
from repro.topology.mapping import Mapping

__all__ = ["ProbeCache", "probe_fingerprint", "min_feasible_frequency",
           "min_feasible_configuration", "TableSizeResult",
           "table_size_scan"]


def probe_fingerprint(topology: Topology, use_case: UseCase,
                      mapping: Mapping, fmt: WordFormat) -> str:
    """Stable digest of everything a feasibility probe depends on
    except the slot-table size and the frequency (the cache key axes).

    SHA-256 over the canonical structural descriptions, so fingerprints
    agree across processes regardless of ``PYTHONHASHSEED``.
    """
    digest = hashlib.sha256()
    digest.update(repr(sorted(topology.to_dict()["links"],
                              key=lambda l: (l["src"], l["dst"]))).encode())
    digest.update(repr(sorted(mapping.to_dict().items())).encode())
    digest.update(repr([(ch.name, ch.src_ip, ch.dst_ip,
                         ch.throughput_bytes_per_s, ch.max_latency_ns)
                        for ch in use_case.channels]).encode())
    digest.update(repr(fmt).encode())
    return digest.hexdigest()[:24]


class ProbeCache:
    """Memo of ``configure()`` feasibility probes within one search.

    Per ``(fingerprint, table_size)`` the cache keeps the monotone
    bounds — the highest frequency known infeasible and the lowest
    known feasible — which answer every probe at or outside the open
    interval between them *exactly*, whatever the search tolerance
    (feasibility is monotone in frequency, so no quantisation is
    involved in the decision).  The failure recorded at the infeasible
    bound is kept so cached-infeasible answers still carry a concrete
    allocator error.  Re-running an identical bisection is fully
    answered from the bounds: every midpoint repeats a previously
    probed frequency, which by then sits on or outside them.

    Caveat: soundness rests on the monotonicity assumption.  The
    greedy allocator can (rarely) fail at a frequency above one it
    succeeded at, so a cached answer may differ from what a fresh
    ``configure()`` would say in such corners.  Share a cache only
    across searches that tolerate bound-consistent answers — not
    across runs whose reports must be byte-identical to uncached ones
    (which is why the campaign workers do not share one).
    """

    def __init__(self, *, telemetry=None):
        from repro.telemetry.hub import coalesce
        self._failures: dict[tuple[str, int], AllocationError] = {}
        self._bounds: dict[tuple[str, int], tuple[float, float]] = {}
        self.hits = 0
        self.misses = 0
        tel = coalesce(telemetry)
        self._tel_hit = tel.counter("design.probe_cache", outcome="hit")
        self._tel_miss = tel.counter("design.probe_cache",
                                     outcome="miss")

    def lookup(self, fingerprint: str, table_size: int,
               frequency_hz: float) -> tuple[bool, AllocationError | None]:
        """``(known, failure)``; ``failure`` is ``None`` for feasible."""
        key = (fingerprint, table_size)
        lo_infeasible, hi_feasible = self._bounds.get(
            key, (0.0, float("inf")))
        if frequency_hz <= lo_infeasible:
            self.hits += 1
            self._tel_hit.inc()
            return True, self._failures.get(key, AllocationError(
                f"known infeasible at or below "
                f"{lo_infeasible / 1e6:.1f} MHz (monotone bound)",
                reason="cached infeasible"))
        if frequency_hz >= hi_feasible:
            self.hits += 1
            self._tel_hit.inc()
            return True, None
        self.misses += 1
        self._tel_miss.inc()
        return False, None

    def record(self, fingerprint: str, table_size: int,
               frequency_hz: float,
               failure: AllocationError | None) -> None:
        """Store one probe outcome and tighten the monotone bounds."""
        key = (fingerprint, table_size)
        lo, hi = self._bounds.get(key, (0.0, float("inf")))
        if failure is None:
            hi = min(hi, frequency_hz)
        else:
            if frequency_hz >= lo:
                self._failures[key] = failure
            lo = max(lo, frequency_hz)
        self._bounds[key] = (lo, hi)


def _probe(topology: Topology, use_case: UseCase, mapping: Mapping,
           table_size: int, frequency_hz: float, fmt: WordFormat, *,
           cache: ProbeCache | None = None,
           fingerprint: str | None = None
           ) -> tuple[AllocationError | None, object | None]:
    """``(failure, config)``: failure ``None`` when the use case
    allocates with all requirements met (then ``config`` is the
    :class:`~repro.core.configuration.NocConfiguration`, unless the
    answer came from the cache)."""
    if cache is not None:
        fingerprint = fingerprint or probe_fingerprint(topology, use_case,
                                                       mapping, fmt)
        known, failure = cache.lookup(fingerprint, table_size,
                                      frequency_hz)
        if known:
            return failure, None
    config = None
    try:
        config = configure(topology, use_case, table_size=table_size,
                           frequency_hz=frequency_hz, fmt=fmt,
                           mapping=mapping, require_met=True)
        failure = None
    except AllocationError as exc:
        failure = exc
    if cache is not None and fingerprint is not None:
        cache.record(fingerprint, table_size, frequency_hz, failure)
    return failure, config


def _search(topology: Topology, use_case: UseCase, mapping: Mapping,
            table_size: int, fmt: WordFormat, low_hz: float,
            high_hz: float, tolerance_hz: float,
            cache: ProbeCache | None):
    """Bisection core: ``(frequency, config-or-None)`` of the minimum.

    ``config`` is ``None`` only when the winning probe was answered
    from the cache (no allocation was computed for it).
    """
    if low_hz <= 0 or high_hz <= low_hz or tolerance_hz <= 0:
        raise ConfigurationError("invalid search interval")
    fingerprint = (probe_fingerprint(topology, use_case, mapping, fmt)
                   if cache is not None else None)
    failure, config = _probe(topology, use_case, mapping, table_size,
                             high_hz, fmt, cache=cache,
                             fingerprint=fingerprint)
    if failure is not None:
        raise AllocationError(
            f"use case infeasible even at {high_hz / 1e6:.0f} MHz; "
            f"last failure on channel {failure.channel!r}: "
            f"{failure.reason}",
            channel=failure.channel,
            reason=failure.reason) from failure
    best = (high_hz, config)
    failure, config = _probe(topology, use_case, mapping, table_size,
                             low_hz, fmt, cache=cache,
                             fingerprint=fingerprint)
    if failure is None:
        best = (low_hz, config)
    else:
        lo, hi = low_hz, high_hz
        while hi - lo > tolerance_hz:
            mid = (lo + hi) / 2
            failure, config = _probe(topology, use_case, mapping,
                                     table_size, mid, fmt, cache=cache,
                                     fingerprint=fingerprint)
            if failure is None:
                hi = mid
                best = (mid, config)
            else:
                lo = mid
    return best


def min_feasible_configuration(topology: Topology, use_case: UseCase,
                               mapping: Mapping, *, table_size: int,
                               fmt: WordFormat | None = None,
                               low_hz: float = 100e6,
                               high_hz: float = 2e9,
                               tolerance_hz: float = 10e6,
                               cache: ProbeCache | None = None):
    """Like :func:`min_feasible_frequency`, but returns the allocated
    :class:`~repro.core.configuration.NocConfiguration` at the found
    frequency — the final successful probe's allocation is reused
    instead of thrown away and recomputed (allocation is the expensive
    step of a design search)."""
    fmt = fmt or WordFormat()
    frequency_hz, config = _search(topology, use_case, mapping,
                                   table_size, fmt, low_hz, high_hz,
                                   tolerance_hz, cache)
    if config is None:  # the winning answer came from the cache
        config = configure(topology, use_case, table_size=table_size,
                           frequency_hz=frequency_hz, fmt=fmt,
                           mapping=mapping, require_met=True)
    return config


def min_feasible_frequency(topology: Topology, use_case: UseCase,
                           mapping: Mapping, *, table_size: int,
                           fmt: WordFormat | None = None,
                           low_hz: float = 100e6,
                           high_hz: float = 2e9,
                           tolerance_hz: float = 10e6,
                           cache: ProbeCache | None = None) -> float:
    """Lowest frequency at which every requirement is guaranteed.

    Binary search over the operating frequency; raises
    :class:`AllocationError` when even ``high_hz`` is insufficient — the
    raised error surfaces the allocator's last failure (channel name and
    reason), mirroring the Section VII negotiation loop, so the bottleneck
    channel is diagnosable instead of just "infeasible".
    Feasibility is monotone in frequency for a fixed workload (higher
    frequency shortens slots and raises per-slot bandwidth), which the
    search relies on — and which the optional :class:`ProbeCache`
    exploits to answer repeated probes without re-allocating.
    """
    return _search(topology, use_case, mapping, table_size,
                   fmt or WordFormat(), low_hz, high_hz, tolerance_hz,
                   cache)[0]


@dataclass(frozen=True)
class TableSizeResult:
    """One row of a slot-table-size scan.

    Beyond feasibility and bound quality, each row carries the
    synthesis-model columns that make the scan a plottable trade-off
    curve: the whole-network cell area at the scan frequency (NI slot
    tables grow with the table size; router effort tracks the
    frequency) and the achievable frequency ceiling of the topology.
    """

    table_size: int
    feasible: bool
    mean_latency_bound_ns: float | None
    max_latency_bound_ns: float | None
    mean_link_utilisation: float | None
    network_area_um2: float | None = None
    fmax_mhz: float | None = None

    def to_record(self) -> dict[str, object]:
        """JSON-ready row."""
        return {
            "table_size": self.table_size,
            "feasible": self.feasible,
            "mean_latency_bound_ns": self.mean_latency_bound_ns,
            "max_latency_bound_ns": self.max_latency_bound_ns,
            "mean_link_utilisation": self.mean_link_utilisation,
            "network_area_um2": self.network_area_um2,
            "fmax_mhz": self.fmax_mhz,
        }


def table_size_scan(topology: Topology, use_case: UseCase,
                    mapping: Mapping, *, frequency_hz: float,
                    table_sizes: list[int] | None = None,
                    fmt: WordFormat | None = None
                    ) -> list[TableSizeResult]:
    """Feasibility, bound quality, and silicon cost across table sizes."""
    fmt = fmt or WordFormat()
    sizes = table_sizes or [8, 16, 32, 64, 128]
    fmax_mhz = round(network_fmax_hz(topology, fmt) / 1e6, 1)
    results: list[TableSizeResult] = []
    for size in sizes:
        try:
            config = configure(topology, use_case, table_size=size,
                               frequency_hz=frequency_hz, fmt=fmt,
                               mapping=mapping, require_met=True)
        except AllocationError:
            results.append(TableSizeResult(size, False, None, None, None))
            continue
        bounds = analyse(config.allocation)
        summary = summarise(bounds)
        channels_per_ni = {
            ni: (len(config.allocation.channels_from_ni(ni)),
                 len(config.allocation.channels_to_ni(ni)))
            for ni in topology.nis}
        results.append(TableSizeResult(
            table_size=size, feasible=True,
            mean_latency_bound_ns=summary.mean_latency_ns,
            max_latency_bound_ns=summary.max_latency_ns,
            mean_link_utilisation=config.allocation
            .mean_link_utilisation(),
            network_area_um2=round(network_area_um2(
                topology, table_size=size, frequency_hz=frequency_hz,
                fmt=fmt, channels_per_ni=channels_per_ni), 1),
            fmax_mhz=fmax_mhz))
    return results
