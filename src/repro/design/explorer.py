"""The parallel multi-objective design-space explorer.

Closes the loop from workload to network: enumerate a
:class:`~repro.design.space.DesignSpace`, reject provably infeasible
candidates with the analytical bounds of :mod:`repro.design.prune`
*before* any allocation runs, improve each survivor's mapping with the
seeded annealer of :mod:`repro.design.mapping_opt`, bisect for its
minimum feasible operating frequency (probe-cached, floor-tightened by
the same bounds), and price it with the synthesis models — then return
the byte-deterministic Pareto front over silicon area, operating
frequency and worst-case guarantee slack.

Candidate evaluation is one campaign run (``mode="design"``), so the
fan-out, process pooling, record ordering and byte-determinism of
:class:`~repro.campaign.runner.CampaignRunner` are inherited rather
than reimplemented.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import (CampaignSpec, RunSpec, ScenarioSpec,
                                 TopologySpec, derive_seed)
from repro.core.exceptions import (AllocationError, ConfigurationError,
                                   TopologyError)
from repro.core.requirements import link_payload_bytes_per_s
from repro.core.words import WordFormat
from repro.design.mapping_opt import optimize_mapping
from repro.design.prune import frequency_lower_bound_hz, prune_candidate
from repro.design.search import ProbeCache, min_feasible_configuration
from repro.design.space import (Candidate, DesignSpace, DesignSpec,
                                provisioned_use_case)
from repro.synthesis.network import network_area, network_fmax_hz
from repro.topology.graph import Topology
from repro.topology.mapping import (Mapping, communication_clustered,
                                    hop_weighted_demand, round_robin,
                                    router_distances, traffic_balanced)

__all__ = ["evaluate_candidate", "execute_design_run", "pareto_front",
           "DesignReport", "DesignExplorer", "run_design_demo"]


def _mapping_portfolio(strategy: str, topology: Topology,
                       design: DesignSpec, use_case, seed: int,
                       link_budget: float, table_size: int,
                       ceiling_hz: float, fmt: WordFormat
                       ) -> list[tuple[str, Mapping, float]]:
    """Mappings to try for one candidate, best bet first.

    The annealed mapping minimises the analytical cost, but the greedy
    allocator is not that cost — so for ``"optimized"`` the plain
    heuristics ride along as fallbacks and a candidate is only declared
    infeasible when *every* portfolio entry fails.  Entries are
    ``(label, mapping, optimizer_improvement)``; construction failures
    of individual heuristics (e.g. capacity) just drop the entry.
    ``use_case`` is the (possibly spare-capacity-provisioned) workload
    the candidate is evaluated against.
    """
    if strategy == "round_robin":
        return [("round_robin", round_robin(use_case.ips, topology), 0.0)]
    if strategy == "traffic_balanced":
        return [("traffic_balanced",
                 traffic_balanced(use_case.ips, use_case.channels,
                                  topology), 0.0)]
    if strategy == "communication_clustered":
        return [("communication_clustered",
                 communication_clustered(use_case.ips, use_case.channels,
                                         topology), 0.0)]
    # Build each heuristic once: they seed the annealer *and* ride
    # along as fallback portfolio entries.
    heuristics: list[tuple[str, Mapping]] = []
    for label, build in (
            ("traffic_balanced",
             lambda: traffic_balanced(use_case.ips, use_case.channels,
                                      topology)),
            ("communication_clustered",
             lambda: communication_clustered(use_case.ips,
                                             use_case.channels,
                                             topology))):
        try:
            heuristics.append((label, build()))
        except (ConfigurationError, TopologyError):
            continue
    result = optimize_mapping(topology, use_case, seed=seed,
                              spec=design.optimizer,
                              warm_starts=[m for _, m in heuristics]
                              or None,
                              link_budget_bytes_per_s=link_budget,
                              table_size=table_size,
                              frequency_hz=ceiling_hz, fmt=fmt)
    portfolio = [("optimized", result.mapping, result.improvement)]
    for label, mapping in heuristics:
        if all(mapping.ip_to_ni != m.ip_to_ni for _, m, _ in portfolio):
            portfolio.append((label, mapping, 0.0))
    return portfolio


def evaluate_candidate(topology_spec: TopologySpec, design: DesignSpec,
                       table_size: int, *, seed: int,
                       cache: ProbeCache | None = None
                       ) -> dict[str, object]:
    """Evaluate one candidate into its JSON-ready result record.

    The record's ``status`` distinguishes how far the candidate got:
    ``pruned`` (analytical lower bound fired — no allocation was ever
    attempted), ``infeasible`` (the allocator failed even at the
    frequency ceiling), ``configuration_failed`` (the candidate cannot
    host the workload at all), or ``ok`` with the full dimensioning.
    """
    record: dict[str, object] = {
        "topology": topology_spec.label,
        "table_size": table_size,
        "data_width": design.data_width,
        "mapping": design.mapping,
    }
    if design.spare_capacity:
        record["spare_capacity"] = design.spare_capacity
    fmt = WordFormat(data_width=design.data_width)
    use_case = provisioned_use_case(design.use_case,
                                    design.spare_capacity)
    try:
        topology = topology_spec.build()
        fmax_hz = network_fmax_hz(topology, fmt)
        ceiling_hz = min(design.max_frequency_mhz * 1e6, fmax_hz)
        search_floor_hz = design.min_frequency_mhz * 1e6
        if ceiling_hz <= search_floor_hz:
            record["status"] = "infeasible"
            record["error"] = (
                f"achievable ceiling {ceiling_hz / 1e6:.0f} MHz is below "
                f"the search floor {search_floor_hz / 1e6:.0f} MHz")
            return record
        portfolio = _mapping_portfolio(
            design.mapping, topology, design, use_case, seed,
            link_payload_bytes_per_s(ceiling_hz, fmt), table_size,
            ceiling_hz, fmt)
    except (ConfigurationError, TopologyError) as exc:
        record["status"] = "configuration_failed"
        record["error"] = str(exc)
        return record

    chosen = None
    first_prune = None
    last_error: str | None = None
    all_pruned = True
    distances = router_distances(topology)
    for label, mapping, improvement in portfolio:
        mapping.validate(topology)
        low_hz = search_floor_hz
        if design.prune:
            verdict = prune_candidate(topology, use_case, mapping,
                                      table_size=table_size,
                                      frequency_hz=ceiling_hz, fmt=fmt,
                                      distances=distances)
            if first_prune is None:
                first_prune = verdict
            if not verdict.feasible_possible:
                last_error = verdict.reasons[0]
                continue
            low_hz = max(low_hz, frequency_lower_bound_hz(
                topology, use_case, mapping, fmt=fmt))
            low_hz = min(low_hz, ceiling_hz * 0.999)
        all_pruned = False
        try:
            config = min_feasible_configuration(
                topology, use_case, mapping, table_size=table_size,
                fmt=fmt, low_hz=low_hz, high_hz=ceiling_hz,
                tolerance_hz=design.tolerance_mhz * 1e6, cache=cache)
        except (AllocationError, ConfigurationError, TopologyError) as exc:
            last_error = str(exc)
            continue
        chosen = (label, mapping, improvement, config.frequency_hz,
                  config, low_hz)
        break
    if chosen is None:
        if design.prune and all_pruned and first_prune is not None:
            record["status"] = "pruned"
            record["prune"] = first_prune.to_record()
        else:
            record["status"] = "infeasible"
            record["error"] = last_error or "empty mapping portfolio"
        return record
    mapping_used, mapping, improvement, frequency_hz, config, low_hz = \
        chosen
    record["mapping_used"] = mapping_used
    bounds = config.bounds()
    # Worst relative margin over every requirement; no cap — a 3x
    # overprovisioned candidate must out-rank a 1.5x one on the slack
    # objective.  None when the workload carries no finite requirement.
    slack = float("inf")
    latency_slack_ns: float | None = None
    throughput_slack = float("inf")
    for b in bounds.values():
        throughput_slack = min(throughput_slack, b.throughput_slack)
        if b.required_throughput_bytes_per_s > 0:
            slack = min(slack, b.throughput_slack /
                        b.required_throughput_bytes_per_s)
        if b.required_latency_ns is not None:
            latency_slack_ns = (b.latency_slack_ns
                                if latency_slack_ns is None
                                else min(latency_slack_ns,
                                         b.latency_slack_ns))
            slack = min(slack, b.latency_slack_ns / b.required_latency_ns)
    channels_per_ni = {
        ni: (len(config.allocation.channels_from_ni(ni)),
             len(config.allocation.channels_to_ni(ni)))
        for ni in topology.nis}
    area = network_area(topology, table_size=table_size,
                        frequency_hz=frequency_hz, fmt=fmt,
                        channels_per_ni=channels_per_ni)
    record["status"] = "ok"
    record["result"] = {
        "operating_frequency_mhz": round(frequency_hz / 1e6, 3),
        "fmax_mhz": round(fmax_hz / 1e6, 1),
        "frequency_floor_mhz": round(low_hz / 1e6, 3),
        "area": area.to_record(),
        "n_channels": len(bounds),
        "n_routers": len(topology.routers),
        "n_nis": len(topology.nis),
        "worst_latency_slack_ns": (None if latency_slack_ns is None
                                   else round(latency_slack_ns, 2)),
        "worst_throughput_slack_mb_s": round(throughput_slack / 1e6, 3),
        "guarantee_slack": (round(slack, 6) if slack != float("inf")
                            else None),
        "mean_link_utilisation": round(
            config.allocation.mean_link_utilisation(), 6),
        "hop_weighted_demand_mbhops": round(hop_weighted_demand(
            topology, mapping, use_case.channels,
            distances=distances) / 1e6, 3),
        "mapping_improvement": round(improvement, 6),
    }
    return record


def execute_design_run(run: RunSpec) -> dict[str, object]:
    """Campaign-worker entry point for one ``mode="design"`` run.

    No :class:`ProbeCache` is wired in here on purpose: within one run
    every bisection midpoint is a fresh frequency and every portfolio
    mapping a fresh fingerprint, so there is nothing to hit — the one
    repeated probe the flow used to make (re-allocating at the
    frequency the bisection just proved feasible) is gone because
    :func:`~repro.design.search.min_feasible_configuration` returns
    the winning probe's allocation directly.  Sharing a cache *across*
    runs would also let the greedy allocator's rare non-monotone
    corners leak one run's answers into another and break the
    byte-identical-repeat guarantee; callers iterating interactively
    on the same configuration can opt in via
    ``evaluate_candidate(..., cache=...)``.
    """
    scenario = run.scenario
    design = scenario.design
    assert isinstance(design, DesignSpec)
    record: dict[str, object] = {
        "run_id": run.run_id,
        "scenario": scenario.name,
        "seed": run.seed,
        "mode": "design",
    }
    record.update(evaluate_candidate(
        scenario.topology, design, scenario.table_size,
        seed=derive_seed(run.run_seed, "design", run.seed)))
    return record


def pareto_front(records: list[dict[str, object]]
                 ) -> list[dict[str, object]]:
    """Non-dominated subset of ``status="ok"`` candidate records.

    Objectives: minimise total silicon area, minimise operating
    frequency, maximise the worst-case guarantee slack.  The front is
    sorted by (area, frequency, topology label, table size) so its JSON
    form is stable.
    """
    ok = [r for r in records if r.get("status") == "ok"]

    def key(r: dict[str, object]) -> tuple[float, float, float]:
        result = r["result"]
        slack = result["guarantee_slack"]  # None = no finite requirement
        return (result["area"]["total_um2"],
                result["operating_frequency_mhz"],
                -slack if slack is not None else -float("inf"))

    def dominates(a: tuple[float, float, float],
                  b: tuple[float, float, float]) -> bool:
        return all(x <= y for x, y in zip(a, b)) and a != b

    keyed = [(key(r), r) for r in ok]
    front = [r for k, r in keyed
             if not any(dominates(other, k) for other, _ in keyed)]
    front.sort(key=lambda r: (r["result"]["area"]["total_um2"],
                              r["result"]["operating_frequency_mhz"],
                              str(r["topology"]), r["table_size"]))
    return front


@dataclass
class DesignReport:
    """Aggregated, byte-deterministic outcome of one exploration.

    ``meta`` relays the campaign runner's wall-clock execution report
    (stage timings, per-worker table, stragglers) and — like
    :class:`~repro.campaign.runner.CampaignResult` — is excluded from
    :meth:`to_json` so the determinism contract ignores it.
    """

    problem: str
    base_seed: int
    records: list[dict[str, object]] = field(default_factory=list)
    meta: dict[str, object] = field(default_factory=dict)

    @property
    def front(self) -> list[dict[str, object]]:
        """The Pareto-optimal candidate records."""
        return pareto_front(self.records)

    @property
    def n_candidates(self) -> int:
        """Total candidates examined."""
        return len(self.records)

    def count(self, status: str) -> int:
        """Candidates that finished with ``status``."""
        return sum(1 for r in self.records if r.get("status") == status)

    def min_area_point(self) -> dict[str, object] | None:
        """The cheapest feasible dimensioning (first point of the front)."""
        front = self.front
        return front[0] if front else None

    def to_json(self, *, indent: int = 2) -> str:
        """Canonical JSON: sorted keys, records ordered by run id."""
        return json.dumps(
            {"problem": self.problem, "base_seed": self.base_seed,
             "n_candidates": self.n_candidates,
             "n_ok": self.count("ok"), "n_pruned": self.count("pruned"),
             "n_infeasible": self.count("infeasible"),
             "front": [r["run_id"] for r in self.front],
             "records": self.records},
            indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        """Write the canonical JSON report to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def summary_rows(self) -> list[dict[str, object]]:
        """Per-candidate table rows for the CLI."""
        rows = []
        front_ids = {r["run_id"] for r in self.front}
        for record in self.records:
            row: dict[str, object] = {
                "candidate": record["scenario"],
                "status": record["status"],
                "pareto": "*" if record["run_id"] in front_ids else "",
            }
            result = record.get("result")
            if isinstance(result, dict):
                row["mhz"] = result["operating_frequency_mhz"]
                row["area_mm2"] = round(
                    result["area"]["total_um2"] / 1e6, 4)
                row["slack"] = result["guarantee_slack"]
                row["util"] = round(result["mean_link_utilisation"], 3)
            prune = record.get("prune")
            if isinstance(prune, dict) and prune["reasons"]:
                row["why"] = prune["reasons"][0][:48]
            rows.append(row)
        return rows


class DesignExplorer:
    """Fan a design space out over the campaign runner's process pool."""

    def __init__(self, design: DesignSpec | None = None, *,
                 use_case=None, space: DesignSpace, workers: int = 1,
                 name: str = "design", seed: int = 1,
                 base_seed: int = 2009, telemetry=None,
                 workdir=None, resume: bool = False,
                 shard_size: int | None = None):
        if design is None:
            if use_case is None:
                raise ConfigurationError(
                    "DesignExplorer needs a DesignSpec or a use case")
            design = DesignSpec(
                use_case=use_case,
                min_frequency_mhz=space.min_frequency_mhz,
                max_frequency_mhz=space.max_frequency_mhz,
                tolerance_mhz=space.tolerance_mhz,
                prune=space.prune,
                spare_capacity=space.spare_capacity)
        self.design = design
        self.space = space
        self.workers = workers
        self.name = name
        self.seed = seed
        self.base_seed = base_seed
        self.telemetry = telemetry
        self.workdir = workdir
        self.resume = resume
        self.shard_size = shard_size

    def campaign_spec(self) -> CampaignSpec:
        """One ``mode="design"`` scenario per candidate of the space.

        The space is authoritative for everything it declares — the
        frequency interval, the tolerance and the prune flag besides
        the candidate axes — so a 500 MHz-capped space never evaluates
        above 500 MHz whatever the passed-in DesignSpec's defaults say;
        the DesignSpec contributes the workload and the optimizer
        settings.
        """
        scenarios = []
        for candidate in self.space.candidates():
            scenarios.append(ScenarioSpec(
                name=candidate.label,
                mode="design",
                topology=candidate.topology,
                table_size=candidate.table_size,
                design=DesignSpec(
                    use_case=self.design.use_case,
                    data_width=candidate.data_width,
                    mapping=candidate.mapping,
                    optimizer=self.design.optimizer,
                    min_frequency_mhz=self.space.min_frequency_mhz,
                    max_frequency_mhz=self.space.max_frequency_mhz,
                    tolerance_mhz=self.space.tolerance_mhz,
                    prune=self.space.prune,
                    spare_capacity=self.space.spare_capacity)))
        return CampaignSpec(name=self.name, scenarios=tuple(scenarios),
                            seeds=(self.seed,), base_seed=self.base_seed)

    def explore(self) -> DesignReport:
        """Evaluate every candidate and aggregate the Pareto report.

        The sweep inherits the campaign fabric wholesale: with a
        ``workdir`` each evaluated candidate checkpoints into the shard
        journals, and ``resume=True`` picks a killed exploration back
        up without re-evaluating finished candidates.
        """
        result = CampaignRunner(self.campaign_spec(),
                                workers=self.workers,
                                telemetry=self.telemetry,
                                workdir=self.workdir,
                                resume=self.resume,
                                shard_size=self.shard_size).run()
        return DesignReport(problem=self.design.use_case.name,
                            base_seed=self.base_seed,
                            records=result.records, meta=result.meta)


def run_design_demo(*, workers: int = 2, seed: int = 2009,
                    spare_capacity: float = 0.0, telemetry=None
                    ) -> tuple[DesignReport, bool, bool | None]:
    """Dimension the demo-scale Section VII workload, twice.

    Returns ``(report, byte_identical, matches_paper)`` where
    ``matches_paper`` asserts the acceptance claim: the minimum-area
    feasible point of the Pareto front is the paper's 2x2 mesh operated
    at or below 500 MHz.  ``spare_capacity`` provisions fault-tolerance
    headroom (every requirement inflated by that fraction); the paper
    match is only meaningful for the unprovisioned workload — extra
    headroom may legitimately push the minimum-area point elsewhere —
    so with ``spare_capacity > 0`` the check is skipped and
    ``matches_paper`` is ``None``.
    """
    import dataclasses

    from repro.design.space import demo_space, section7_demo_use_case
    from repro.telemetry.hub import coalesce

    tel = coalesce(telemetry)
    with tel.phase("space"):
        use_case = section7_demo_use_case(seed)
        space = dataclasses.replace(demo_space(),
                                    spare_capacity=spare_capacity)

    def once(run_telemetry=None) -> DesignReport:
        return DesignExplorer(use_case=use_case, space=space,
                              workers=workers, name="design-demo",
                              telemetry=run_telemetry).explore()

    with tel.phase("explore"):
        report = once(telemetry)
    with tel.phase("verify"):
        identical = once().to_json() == report.to_json()
    if spare_capacity > 0:
        return report, identical, None
    chosen = report.min_area_point()
    matches = bool(
        chosen is not None and
        str(chosen["topology"]).startswith("mesh2x2") and
        chosen["result"]["operating_frequency_mhz"] <= 500.0)
    return report, identical, matches
