"""The joint design space and the workloads that drive its search.

A *design problem* is a workload — an explicit
:class:`~repro.core.application.UseCase`, or a
:class:`~repro.service.churn.ChurnSpec` profile translated into its
expected concurrent session set at a target admission rate
(:func:`workload_from_churn`, Little's law) — and a
:class:`DesignSpace`: the cross product of topology family x extent x
NIs-per-router x slot-table size x word format x mapping strategy.

:class:`DesignSpec` is the per-candidate evaluation recipe that rides
inside a campaign :class:`~repro.campaign.spec.ScenarioSpec` (mode
``"design"``), so candidate evaluation fans out over the existing
multiprocessing campaign runner unchanged; everything here is a frozen,
picklable value.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.campaign.spec import TopologySpec
from repro.core.application import Application, UseCase
from repro.core.connection import MB, ChannelSpec
from repro.core.exceptions import ConfigurationError
from repro.design.mapping_opt import OptimizerSpec
from repro.service.churn import ChurnSpec

__all__ = ["DesignSpec", "Candidate", "DesignSpace", "workload_from_churn",
           "provisioned_use_case", "section7_demo_use_case", "demo_space",
           "MAPPING_STRATEGIES"]

MAPPING_STRATEGIES = ("optimized", "traffic_balanced", "round_robin",
                      "communication_clustered")


@dataclass(frozen=True)
class DesignSpec:
    """How to evaluate one design candidate (rides in a ScenarioSpec).

    The topology, slot-table size and seed come from the surrounding
    scenario; this carries the workload and everything else the worker
    needs to rebuild the evaluation from scratch.
    """

    use_case: UseCase
    data_width: int = 32
    mapping: str = "optimized"
    optimizer: OptimizerSpec = field(default_factory=OptimizerSpec)
    min_frequency_mhz: float = 100.0
    max_frequency_mhz: float = 1000.0
    tolerance_mhz: float = 10.0
    prune: bool = True
    #: Fault-tolerance headroom: every channel requirement is inflated
    #: by this fraction during evaluation, so the dimensioned network
    #: keeps slack for degraded-mode re-allocation after failures.
    spare_capacity: float = 0.0

    def __post_init__(self) -> None:
        if not self.use_case.channels:
            raise ConfigurationError(
                f"design workload {self.use_case.name!r} has no channels")
        if self.mapping not in MAPPING_STRATEGIES:
            raise ConfigurationError(
                f"unknown mapping strategy {self.mapping!r}; expected one "
                f"of {MAPPING_STRATEGIES}")
        if self.data_width < 8:
            raise ConfigurationError("data_width must be >= 8")
        if not 0 < self.min_frequency_mhz < self.max_frequency_mhz:
            raise ConfigurationError("bad frequency interval")
        if self.tolerance_mhz <= 0:
            raise ConfigurationError("tolerance must be positive")
        if self.spare_capacity < 0:
            raise ConfigurationError("spare_capacity must be >= 0")


@dataclass(frozen=True)
class Candidate:
    """One point of the joint space, before evaluation."""

    topology: TopologySpec
    table_size: int
    data_width: int = 32
    mapping: str = "optimized"

    @property
    def label(self) -> str:
        """Deterministic scenario/run identifier."""
        return (f"{self.topology.label}-t{self.table_size}"
                f"-w{self.data_width}-{self.mapping}")


@dataclass(frozen=True)
class DesignSpace:
    """The cross product the explorer enumerates.

    Deliberately explicit (a tuple of topology specs rather than ranges)
    so spaces are values: picklable, comparable, and reportable.
    """

    topologies: tuple[TopologySpec, ...]
    table_sizes: tuple[int, ...] = (8, 16, 32)
    data_widths: tuple[int, ...] = (32,)
    mappings: tuple[str, ...] = ("optimized",)
    min_frequency_mhz: float = 100.0
    max_frequency_mhz: float = 1000.0
    tolerance_mhz: float = 10.0
    prune: bool = True
    #: Fault-tolerance headroom applied to every candidate evaluation
    #: (see :attr:`DesignSpec.spare_capacity`): dimension the network
    #: as if every channel asked for ``1 + spare_capacity`` times its
    #: throughput, so post-failure re-allocation has room to reroute.
    spare_capacity: float = 0.0

    def __post_init__(self) -> None:
        if not self.topologies:
            raise ConfigurationError("design space needs >= 1 topology")
        if not self.table_sizes or any(t < 2 for t in self.table_sizes):
            raise ConfigurationError("table sizes must all be >= 2")
        if not self.data_widths:
            raise ConfigurationError("design space needs >= 1 data width")
        for strategy in self.mappings:
            if strategy not in MAPPING_STRATEGIES:
                raise ConfigurationError(
                    f"unknown mapping strategy {strategy!r}")
        if self.spare_capacity < 0:
            raise ConfigurationError("spare_capacity must be >= 0")

    def candidates(self) -> tuple[Candidate, ...]:
        """The full ordered candidate list (label-sorted, unique)."""
        out = [Candidate(topology=topo, table_size=size, data_width=width,
                         mapping=strategy)
               for topo in self.topologies
               for size in self.table_sizes
               for width in self.data_widths
               for strategy in self.mappings]
        labels = [c.label for c in out]
        if len(set(labels)) != len(labels):
            raise ConfigurationError("duplicate candidates in design space")
        return tuple(sorted(out, key=lambda c: c.label))


def workload_from_churn(churn: ChurnSpec, *,
                        target_admission_rate: float = 1.0,
                        seed: int = 2009,
                        n_ips: int | None = None) -> UseCase:
    """Translate a churn profile into a static dimensioning workload.

    By Little's law the expected number of concurrently open sessions is
    ``arrival_rate x mean_duration``; scaled by the target admission
    rate, that is the steady-state channel population a network must be
    dimensioned for.  Each expected-concurrent session draws its QoS
    class from the weighted mix and endpoints from a synthetic IP
    population, all deterministically from ``seed`` — so churn-driven
    and use-case-driven design problems flow through the same explorer.
    """
    if not 0 < target_admission_rate <= 1:
        raise ConfigurationError(
            "target_admission_rate must be in (0, 1]")
    concurrency = max(1, math.ceil(churn.arrival_rate_per_s *
                                   churn.mean_duration_s *
                                   target_admission_rate))
    n_ips = n_ips or max(4, 2 * math.ceil(math.sqrt(concurrency)))
    if n_ips < 2:
        raise ConfigurationError("workload needs >= 2 IPs")
    rng = random.Random(seed)
    ips = [f"ip{i:02d}" for i in range(n_ips)]
    classes = list(churn.classes)
    weights = [c.weight for c in classes]
    by_class: dict[str, list[ChannelSpec]] = {}
    for index in range(concurrency):
        qos = rng.choices(classes, weights)[0]
        src, dst = rng.sample(ips, 2)
        by_class.setdefault(qos.name, []).append(ChannelSpec(
            name=f"{qos.name}_s{index:04d}", src_ip=src, dst_ip=dst,
            throughput_bytes_per_s=qos.throughput_mb_s * MB,
            max_latency_ns=qos.max_latency_ns, application=qos.name))
    applications = tuple(Application(name, tuple(channels))
                         for name, channels in sorted(by_class.items()))
    return UseCase(
        f"churn{churn.n_sessions}a{target_admission_rate:g}s{seed}",
        applications)


def provisioned_use_case(use_case: UseCase,
                         spare_capacity: float) -> UseCase:
    """The workload with every throughput inflated for fault headroom.

    ``spare_capacity=0.25`` dimensions the network as if every channel
    asked for 25 % more bandwidth than it needs — the slack a
    degraded-mode re-allocation draws on when failures concentrate the
    surviving traffic onto fewer links.  Latency requirements are
    untouched (a fault does not change what the application can
    tolerate).

    >>> from repro.core.application import Application, UseCase
    >>> from repro.core.connection import MB, ChannelSpec
    >>> uc = UseCase("w", (Application("a", (
    ...     ChannelSpec("c", "x", "y", 8 * MB, application="a"),)),))
    >>> provisioned_use_case(uc, 0.25).channels[0] \\
    ...     .throughput_bytes_per_s / MB
    10.0
    """
    if spare_capacity < 0:
        raise ConfigurationError("spare_capacity must be >= 0")
    if spare_capacity == 0:
        return use_case
    factor = 1.0 + spare_capacity
    applications = tuple(
        Application(app.name,
                    tuple(ch.scaled(factor) for ch in app.channels))
        for app in use_case.applications)
    return UseCase(f"{use_case.name}+sc{spare_capacity:g}", applications)


def section7_demo_use_case(seed: int = 2009) -> UseCase:
    """The Section VII workload at the scale of the paper's 2x2 point.

    Same generator, same distributions and feasibility negotiation as
    the full 200-connection instance, scaled to the 2x2/500 MHz design
    the ISSUE's dimensioning demo has to rediscover: 16 IPs, four
    applications of eight connections each.
    """
    from repro.usecase.generator import (Section7Parameters,
                                         generate_section7)
    params = Section7Parameters(
        seed=seed, cols=2, rows=2, nis_per_router=4, n_ips=16,
        n_applications=4, connections_per_application=8,
        table_size=16, frequency_hz=500e6)
    return generate_section7(params).use_case


def demo_space() -> DesignSpace:
    """The demo candidate grid around the paper's operating point.

    Six topology families that can all host the 16-IP demo workload
    (>= 16 NIs each), three slot-table sizes, one word format, optimized
    mapping — 18 candidates, of which the 2x2 concentrated mesh is the
    least silicon whenever it is feasible (fewest routers and fewest
    NIs in the grid).  The frequency ceiling is the paper's 500 MHz
    clock, so the search asks exactly the Section VII question: the
    cheapest network that carries the workload at or below that clock.
    """
    return DesignSpace(
        topologies=(
            TopologySpec(kind="mesh", cols=2, rows=2, nis_per_router=4),
            TopologySpec(kind="mesh", cols=3, rows=2, nis_per_router=3),
            TopologySpec(kind="mesh", cols=3, rows=3, nis_per_router=2),
            TopologySpec(kind="cmesh", cols=4, rows=3, nis_per_router=4),
            TopologySpec(kind="torus", cols=3, rows=3, nis_per_router=2),
            TopologySpec(kind="ring", cols=6, nis_per_router=3),
        ),
        table_sizes=(8, 16, 32),
        data_widths=(32,),
        mappings=("optimized",),
        min_frequency_mhz=100.0,
        max_frequency_mhz=500.0,
        tolerance_mhz=10.0)
