"""Seeded local-search mapping optimisation for design candidates.

The mapping heuristics in :mod:`repro.topology.mapping` are one-shot
constructions; a design-space search can afford to *improve* a mapping,
because a better placement lowers the hop-weighted slot demand and with
it the frequency (and therefore silicon) a candidate needs.  This module
provides a deterministic simulated-annealing optimizer over
swap/relocate moves on :class:`~repro.topology.mapping.Mapping`,
warm-started from :func:`~repro.topology.mapping.traffic_balanced`
(which is itself guaranteed no worse than ``round_robin`` on the same
metric, so the chain of warm starts never regresses).

The cost being annealed is lexicographic, folded into one scalar:

* **co-location** — a channel whose endpoints share an NI cannot use
  the NoC at all (the allocator rejects it), so every co-located
  channel costs more than any amount of hop demand;
* **NI-link overload** — an NI's injection/ejection link is the one
  resource a mapping cannot route around; bandwidth assigned to an NI
  beyond its link budget is weighted so that shedding one overloaded
  byte always pays for the extra hops of moving it anywhere else
  (without this term, pure hop minimisation piles communicating IPs
  onto one router's NIs and strangles their links);
* **hop-weighted demand** — bandwidth times router hops, the shared
  placement metric (:func:`~repro.topology.mapping.hop_weighted_demand`).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.application import UseCase
from repro.core.connection import ChannelSpec
from repro.core.exceptions import ConfigurationError
from repro.core.words import WordFormat
from repro.topology.graph import Topology
from repro.topology.mapping import (Mapping, communication_clustered,
                                    hop_weighted_demand, router_distances,
                                    traffic_balanced)

__all__ = ["OptimizerSpec", "MappingSearchResult", "mapping_cost",
           "optimize_mapping"]


@dataclass(frozen=True)
class OptimizerSpec:
    """Tunables of the annealing run (a plain picklable value).

    ``iterations`` is a floor: runs scale to ``iterations_per_ip`` moves
    per mapped IP so large instances get proportionate search effort,
    and the cooling schedule is renormalised so the total temperature
    decay is the same whatever the move count.  ``iterations=0``
    disables the annealing entirely and returns the (repaired) warm
    start — useful to measure the optimizer's own contribution.

    Moves: *relocate* one IP to a random NI, *swap* two IPs, or *pull*
    one endpoint of a random channel onto the NIs at (or next to) its
    partner's router — the targeted move that builds communication
    clusters far faster than blind relocation.
    """

    iterations: int = 600
    iterations_per_ip: int = 40
    initial_temperature: float = 0.2
    cooling: float = 0.995
    relocate_bias: float = 0.3
    pull_bias: float = 0.4

    def __post_init__(self) -> None:
        if self.iterations < 0 or self.iterations_per_ip < 0:
            raise ConfigurationError("iterations must be >= 0")
        if not 0 < self.cooling < 1:
            raise ConfigurationError("cooling must be in (0, 1)")
        if not 0 <= self.relocate_bias <= 1 or not 0 <= self.pull_bias <= 1 \
                or self.relocate_bias + self.pull_bias > 1:
            raise ConfigurationError(
                "relocate_bias + pull_bias must fit in [0, 1]")
        if self.initial_temperature < 0:
            raise ConfigurationError("initial_temperature must be >= 0")

    def effective_iterations(self, n_ips: int) -> int:
        """Move budget for an instance of ``n_ips`` mapped IPs."""
        if self.iterations == 0:
            return 0
        return max(self.iterations, self.iterations_per_ip * n_ips)

    @property
    def label(self) -> str:
        """Compact identifier for reports."""
        return f"sa{self.iterations}t{self.initial_temperature:g}"


@dataclass(frozen=True)
class MappingSearchResult:
    """Outcome of one optimisation run."""

    mapping: Mapping
    start_cost: float
    final_cost: float
    colocated_channels: int
    moves_accepted: int
    moves_tried: int

    @property
    def improvement(self) -> float:
        """Relative cost reduction achieved by the search."""
        if self.start_cost <= 0:
            return 0.0
        return 1.0 - self.final_cost / self.start_cost


def mapping_cost(topology: Topology, mapping: Mapping,
                 channels: tuple[ChannelSpec, ...], *,
                 distances: dict[str, dict[str, int]] | None = None
                 ) -> tuple[int, float]:
    """``(co-located channel count, hop-weighted demand)`` of a mapping."""
    colocated = sum(1 for ch in channels
                    if mapping.ni_of(ch.src_ip) == mapping.ni_of(ch.dst_ip))
    return colocated, hop_weighted_demand(topology, mapping, channels,
                                          distances=distances)


class _PlacementState:
    """Mutable assignment with incremental cost bookkeeping.

    NI-link pressure is tracked in *slots*, the granularity the
    allocator actually reserves: a channel of throughput ``t`` on a
    link of payload capacity ``budget`` costs
    ``max(1, ceil(t * table_size / budget))`` of the ``table_size``
    slots — the same arithmetic as
    :func:`repro.core.requirements.slots_for_throughput` and the
    serialisation bound in :mod:`repro.design.prune`, so a mapping the
    optimizer reports overload-free passes that prune check too.
    """

    def __init__(self, topology: Topology, channels: tuple[ChannelSpec, ...],
                 budget: float | None, table_size: int | None,
                 frequency_hz: float | None = None,
                 fmt: WordFormat | None = None):
        self.topology = topology
        self.channels = channels
        self.nis = list(topology.nis)
        self.budget = budget if table_size else None
        self.table_size = table_size or 0
        self.distances = router_distances(topology)
        self.router_of = {ni: topology.attached_router(ni)
                          for ni in self.nis}
        self.diameter = max((d for row in self.distances.values()
                             for d in row.values()), default=0)
        # Per-channel router-distance caps from latency requirements: a
        # requirement of L ns at frequency f allows at most the hop
        # count whose traversal-plus-one-slot floor still fits in L
        # (the same floor as prune check 4).  A placement beyond the
        # cap can never allocate, so it is penalised like co-location.
        self.max_hops: dict[str, int] = {}
        if frequency_hz:
            fmt = fmt or WordFormat()
            from repro.design.prune import min_traversal_slots
            from repro.topology.graph import NodeKind
            stages = min(
                (link.pipeline_stages for link in topology.links
                 if topology.kind(link.src) is NodeKind.ROUTER
                 and topology.kind(link.dst) is NodeKind.ROUTER),
                default=0)
            for ch in channels:
                if ch.max_latency_ns is None:
                    continue
                cap = 0
                for hops in range(self.diameter, -1, -1):
                    floor_ns = (1 + min_traversal_slots(hops, stages)) * \
                        fmt.flit_size / frequency_hz * 1e9
                    if floor_ns <= ch.max_latency_ns * (1 + 1e-9):
                        cap = hops
                        break
                self.max_hops[ch.name] = cap
        # Any co-located channel must outweigh any achievable hop
        # demand; any overloaded slot must outweigh the hops of moving
        # its bandwidth anywhere else on the chip.
        self.penalty = sum(ch.throughput_bytes_per_s for ch in channels) \
            * (2 * len(topology.routers) + 2) + 1.0
        self.slot_bytes = (self.budget / self.table_size
                           if self.budget else 0.0)
        self.overload_weight = 2.0 * (self.diameter + 1) * self.slot_bytes
        self.slot_demand: dict[str, int] = {}
        if self.budget:
            for ch in channels:
                self.slot_demand[ch.name] = max(1, math.ceil(
                    ch.throughput_bytes_per_s / self.slot_bytes - 1e-12))
        self.incident: dict[str, list[ChannelSpec]] = {}
        for ch in channels:
            self.incident.setdefault(ch.src_ip, []).append(ch)
            if ch.dst_ip != ch.src_ip:
                self.incident.setdefault(ch.dst_ip, []).append(ch)
        self.assignment: dict[str, str] = {}
        self.inj: dict[str, int] = {}
        self.ej: dict[str, int] = {}

    def reset(self, assignment: dict[str, str]) -> None:
        """Load a fresh assignment and rebuild the NI slot tallies."""
        self.assignment = dict(assignment)
        self.inj = {ni: 0 for ni in self.nis}
        self.ej = {ni: 0 for ni in self.nis}
        if not self.budget:
            return
        for ch in self.channels:
            slots = self.slot_demand[ch.name]
            self.inj[self.assignment[ch.src_ip]] += slots
            self.ej[self.assignment[ch.dst_ip]] += slots

    def apply(self, ip: str, target: str) -> None:
        """Move one IP, keeping the slot tallies in sync."""
        old = self.assignment[ip]
        if self.budget:
            for ch in self.incident.get(ip, ()):
                slots = self.slot_demand[ch.name]
                if ch.src_ip == ip:
                    self.inj[old] -= slots
                    self.inj[target] += slots
                if ch.dst_ip == ip:
                    self.ej[old] -= slots
                    self.ej[target] += slots
        self.assignment[ip] = target

    def _overload(self, nis_touched) -> float:
        if not self.budget:
            return 0.0
        total = 0
        for ni in nis_touched:
            total += max(0, self.inj[ni] - self.table_size)
            total += max(0, self.ej[ni] - self.table_size)
        return total * self.overload_weight

    def _channel_cost(self, ch: ChannelSpec) -> float:
        src_ni = self.assignment[ch.src_ip]
        dst_ni = self.assignment[ch.dst_ip]
        if src_ni == dst_ni:
            return self.penalty
        dist = self.distances[self.router_of[src_ni]][
            self.router_of[dst_ni]]
        total = ch.throughput_bytes_per_s * dist
        cap = self.max_hops.get(ch.name)
        if cap is not None and dist > cap:
            # Beyond the latency cap the channel can never allocate:
            # penalised like co-location, with the distance term kept
            # so the annealer still has a gradient toward the cap.
            total += self.penalty
        return total

    def cost_around(self, touched: tuple[str, ...],
                    nis_touched: set[str]) -> float:
        """Cost contribution of the channels/NIs a move touches."""
        seen: set[str] = set()
        total = self._overload(nis_touched)
        for ip in touched:
            for ch in self.incident.get(ip, ()):
                if ch.name in seen:
                    continue
                seen.add(ch.name)
                total += self._channel_cost(ch)
        return total

    def violations(self) -> int:
        """Channels currently unplaceable: co-located or over their cap."""
        count = 0
        for ch in self.channels:
            src_ni = self.assignment[ch.src_ip]
            dst_ni = self.assignment[ch.dst_ip]
            if src_ni == dst_ni:
                count += 1
                continue
            cap = self.max_hops.get(ch.name)
            if cap is not None and self.distances[
                    self.router_of[src_ni]][self.router_of[dst_ni]] > cap:
                count += 1
        return count

    def total_cost(self) -> float:
        """Full scalar cost of the current assignment."""
        return sum(self._channel_cost(ch) for ch in self.channels) + \
            self._overload(self.nis)

    def colocated(self) -> int:
        """Channels whose endpoints currently share an NI."""
        return sum(1 for ch in self.channels
                   if self.assignment[ch.src_ip] ==
                   self.assignment[ch.dst_ip])

    def repair_violations(self, *, max_passes: int = 3) -> None:
        """Deterministically relocate endpoints of unplaceable channels.

        Greedy first-improvement over the offenders (co-located or
        beyond their latency cap, sorted by name): the destination IP
        moves to the NI minimising the local cost over all NIs other
        than its partner's.  With >= 2 NIs co-location always clears;
        latency caps clear whenever some admissible NI exists.  Passes
        repeat in case a move re-collides another channel of the moved
        IP.
        """
        if len(self.nis) < 2:
            return
        for _ in range(max_passes):
            offenders = sorted(
                (ch for ch in self.channels
                 if self._channel_cost(ch) >= self.penalty),
                key=lambda ch: ch.name)
            if not offenders:
                return
            for ch in offenders:
                if self._channel_cost(ch) < self.penalty:
                    continue  # cleared by an earlier relocation
                src_ni = self.assignment[ch.src_ip]
                mover = ch.dst_ip if ch.dst_ip != ch.src_ip else ch.src_ip
                origin = self.assignment[mover]
                best_target, best_cost = None, float("inf")
                for target in self.nis:
                    if target == src_ni:
                        continue
                    touched = {origin, target}
                    self.apply(mover, target)
                    cost = self.cost_around((mover,), touched)
                    self.apply(mover, origin)
                    if cost < best_cost:
                        best_target, best_cost = target, cost
                if best_target is not None and best_target != origin:
                    self.apply(mover, best_target)


def optimize_mapping(topology: Topology, use_case: UseCase, *, seed: int,
                     spec: OptimizerSpec | None = None,
                     warm_start: Mapping | None = None,
                     warm_starts: list[Mapping] | None = None,
                     link_budget_bytes_per_s: float | None = None,
                     table_size: int | None = None,
                     frequency_hz: float | None = None,
                     fmt: WordFormat | None = None
                     ) -> MappingSearchResult:
    """Anneal an IP-to-NI mapping for one candidate topology.

    The warm start is the cheaper (after co-location repair) of
    :func:`~repro.topology.mapping.traffic_balanced` (spreads load) and
    :func:`~repro.topology.mapping.communication_clustered` (keeps
    traffic local) — the two heuristics fail in opposite regimes, and
    annealing recovers locality much more slowly than it repairs a few
    overloads.  ``link_budget_bytes_per_s`` is the payload capacity of
    one NI link at the candidate's frequency ceiling and ``table_size``
    its slot table; together they turn per-NI pressure into slot
    counts, and slots demanded beyond the table are penalised hard
    enough that spreading always wins over locality — the serialisation
    bound any feasible allocation must respect anyway.

    Deterministic: all randomness flows from ``random.Random(seed)``;
    the same topology, use case, seed and spec always return the same
    mapping, which is what keeps design reports byte-stable.
    """
    spec = spec or OptimizerSpec()
    channels = use_case.channels
    ips = list(use_case.ips)
    nis = list(topology.nis)
    if not nis:
        raise ConfigurationError("topology has no NIs to map onto")
    state = _PlacementState(topology, channels, link_budget_bytes_per_s,
                            table_size, frequency_hz, fmt)

    starts: list[dict[str, str]] = []
    if warm_starts:
        for candidate in warm_starts:
            candidate.validate(topology)
            starts.append(dict(candidate.ip_to_ni))
    elif warm_start is not None:
        warm_start.validate(topology)
        starts.append(dict(warm_start.ip_to_ni))
    else:
        starts.append(dict(
            traffic_balanced(ips, channels, topology).ip_to_ni))
        try:
            starts.append(dict(communication_clustered(
                ips, channels, topology).ip_to_ni))
        except ConfigurationError:
            pass
    best_start, best_start_cost = None, float("inf")
    for candidate in starts:
        state.reset(candidate)
        state.repair_violations()
        cost = state.total_cost()
        if cost < best_start_cost:
            best_start, best_start_cost = dict(state.assignment), cost
    assert best_start is not None
    state.reset(best_start)
    current = best_start_cost
    start_cost = current
    best_cost = current
    best = dict(best_start)

    rng = random.Random(seed)
    # Temperature lives on the scale of one *move*, not of the whole
    # objective: a move touches a handful of channels, so the mean
    # per-channel cost is the right yardstick for uphill acceptance.
    temperature = spec.initial_temperature * \
        max(current / max(1, len(channels)), 1.0)
    accepted = 0
    iterations = (spec.effective_iterations(len(ips))
                  if len(ips) > 1 and len(nis) > 1 else 0)
    # Same total temperature decay whatever the move budget.
    cooling = spec.cooling ** (spec.iterations / iterations) \
        if iterations else spec.cooling
    channel_list = list(channels)
    near_nis: dict[str, list[str]] = {}
    for ni in nis:
        router = state.router_of[ni]
        near = [other for other in nis
                if state.distances[router][state.router_of[other]] <= 1]
        near_nis[ni] = near

    def propose() -> tuple[list[tuple[str, str]], set[str]] | None:
        """Pick a move; returns ``(moves, touched_nis)`` or ``None``."""
        roll = rng.random()
        if channel_list and roll < spec.pull_bias:
            ch = rng.choice(channel_list)
            if ch.src_ip == ch.dst_ip:
                return None
            mover, anchor = ((ch.src_ip, ch.dst_ip)
                             if rng.random() < 0.5
                             else (ch.dst_ip, ch.src_ip))
            target = rng.choice(near_nis[state.assignment[anchor]])
            old = state.assignment[mover]
            if target == old:
                return None
            return [(mover, target)], {old, target}
        ip_a = rng.choice(ips)
        if roll < spec.pull_bias + spec.relocate_bias:
            target = rng.choice(nis)
            old = state.assignment[ip_a]
            if target == old:
                return None
            return [(ip_a, target)], {old, target}
        ip_b = rng.choice(ips)
        ni_a = state.assignment[ip_a]
        ni_b = state.assignment.get(ip_b, "")
        if ip_b == ip_a or ni_a == ni_b:
            return None
        return [(ip_a, ni_b), (ip_b, ni_a)], {ni_a, ni_b}

    for _ in range(iterations):
        move = propose()
        temperature *= cooling
        if move is None:
            continue
        moves, touched_nis = move
        touched_ips = tuple(ip for ip, _ in moves)
        undo = [(ip, state.assignment[ip]) for ip, _ in moves]
        before = state.cost_around(touched_ips, touched_nis)
        for ip, target in moves:
            state.apply(ip, target)
        delta = state.cost_around(touched_ips, touched_nis) - before
        if delta <= 0 or (temperature > 0 and
                          rng.random() < math.exp(-delta / temperature)):
            current += delta
            accepted += 1
            if current < best_cost:
                best_cost = current
                best = dict(state.assignment)
        else:
            for ip, ni in undo:
                state.apply(ip, ni)

    state.reset(best)
    state.repair_violations()
    final_cost = state.total_cost()
    if final_cost > start_cost:
        # The annealer never returns worse than its (repaired) start.
        state.reset(best_start)
        final_cost = start_cost
    mapping = Mapping(dict(state.assignment))
    return MappingSearchResult(
        mapping=mapping,
        start_cost=start_cost,
        final_cost=final_cost,
        colocated_channels=state.colocated(),
        moves_accepted=accepted,
        moves_tried=iterations)
