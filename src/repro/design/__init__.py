"""Design-space exploration: dimension a NoC from a workload.

The paper hand-picks its Section VII network; this subsystem *finds*
such operating points.  Give it a workload — a
:class:`~repro.core.application.UseCase` or a churn profile via
:func:`~repro.design.space.workload_from_churn` — and a
:class:`~repro.design.space.DesignSpace`, and the
:class:`~repro.design.explorer.DesignExplorer` returns the
byte-deterministic Pareto front over silicon area, operating frequency
and worst-case guarantee slack, using analytical lower-bound pruning,
seeded mapping optimisation, probe-cached feasibility bisection and the
campaign runner's process pool.
"""

from repro.design.explorer import (DesignExplorer, DesignReport,
                                   evaluate_candidate, execute_design_run,
                                   pareto_front, run_design_demo)
from repro.design.mapping_opt import (MappingSearchResult, OptimizerSpec,
                                      mapping_cost, optimize_mapping)
from repro.design.prune import (PruneReport, frequency_lower_bound_hz,
                                min_traversal_slots, prune_candidate)
from repro.design.search import (ProbeCache, TableSizeResult,
                                 min_feasible_configuration,
                                 min_feasible_frequency, probe_fingerprint,
                                 table_size_scan)
from repro.design.space import (Candidate, DesignSpace, DesignSpec,
                                demo_space, provisioned_use_case,
                                section7_demo_use_case,
                                workload_from_churn)

__all__ = [
    "DesignSpec", "Candidate", "DesignSpace", "workload_from_churn",
    "provisioned_use_case", "section7_demo_use_case", "demo_space",
    "PruneReport", "prune_candidate", "frequency_lower_bound_hz",
    "min_traversal_slots",
    "OptimizerSpec", "MappingSearchResult", "mapping_cost",
    "optimize_mapping",
    "ProbeCache", "probe_fingerprint", "min_feasible_frequency",
    "min_feasible_configuration", "TableSizeResult", "table_size_scan",
    "DesignExplorer", "DesignReport", "pareto_front",
    "evaluate_candidate", "execute_design_run", "run_design_demo",
]
