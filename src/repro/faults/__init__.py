"""Fault-aware guarantees: failure injection and degraded-mode service.

Aelite's composability and predictability hold on a healthy fabric;
this package measures what survives when the fabric degrades:

* :mod:`repro.faults.model` — seeded, deterministic schedules of link
  and router failures/repairs (:class:`FaultSpec`,
  :class:`FaultSchedule`);
* :meth:`repro.core.allocation.Allocation.rebuild_excluding` — the
  allocator-layer answer: guarantee-preserving re-allocation of
  affected channels over surviving k-shortest paths with per-channel
  verdicts;
* :meth:`repro.service.controller.SessionService.process_fault` — the
  control-plane answer: fault-hit sessions are force-released and
  re-admitted through the normal admission path, all recorded onto the
  replayable reconfiguration timeline;
* :mod:`repro.faults.demo` — the ``python -m repro faults --demo``
  flow: churn + faults, survivability metrics against a fault-free
  baseline, and the dynamic composability proof for fault survivors.

Campaign grids sweep fault rate × topology × slot-table size as
``mode="faults"`` scenarios (:func:`repro.campaign.fault_campaign`).

Exports are resolved lazily (PEP 562) because the demo imports the
service layer, which itself imports :mod:`repro.faults.model`.
"""

from __future__ import annotations

import importlib

_EXPORTS: dict[str, str] = {
    "FaultSpec": "repro.faults.model",
    "FaultEvent": "repro.faults.model",
    "FaultSchedule": "repro.faults.model",
    "FaultRunOutcome": "repro.faults.demo",
    "run_churn_with_faults": "repro.faults.demo",
    "run_faults_demo": "repro.faults.demo",
    "survivability_record": "repro.faults.demo",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    """Resolve exports on first access (avoids circular imports)."""
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.faults' has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
