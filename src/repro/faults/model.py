"""Seeded fault schedules: link and router failures/repairs over time.

Aelite's composability and predictability claims assume a healthy
fabric; this module supplies the adversary.  A :class:`FaultSpec`
parameterises a deterministic per-seed schedule of link and router
failures (Poisson fault arrivals, exponential repair times), and
:class:`FaultSchedule` materialises it over one topology — the same
eager, replayable construction as :class:`~repro.service.churn.
ChurnWorkload`, so the identical fault timeline can be injected into
several consumers (the control plane, the campaign layer, a rebuild
study) and byte-identical reports fall out.

Targets are drawn deterministically: link faults hit router-to-router
links only (an NI's single attachment link dying is modelled as its
router failing), router faults hit any router.  Repairs restore the
exact resource that failed; a fault on an already-failed resource is
redrawn so every failure changes the surviving set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.allocation import excluded_link_keys
from repro.core.exceptions import ConfigurationError
from repro.topology.graph import NodeKind, Topology

__all__ = ["FaultSpec", "FaultEvent", "FaultSchedule"]

_KINDS = ("link", "router")
_ACTIONS = ("fail", "repair")


@dataclass(frozen=True)
class FaultSpec:
    """Parameters of a fault workload (plain value, picklable).

    Attributes
    ----------
    n_faults:
        Failures to generate; with repairs on, the event stream has up
        to twice as many events.
    fault_rate_per_s:
        Poisson arrival rate of new failures.
    mean_repair_s:
        Mean of the exponential repair time.  ``repair=False`` makes
        every failure permanent (the repair events are simply not
        generated).
    router_fraction:
        Probability that a failure hits a whole router rather than a
        single link.
    repair:
        Whether failed resources come back.

    >>> FaultSpec(n_faults=2).label
    'faults2r20f0.25d0.05'
    >>> FaultSpec(n_faults=2, repair=False).label
    'faults2r20f0.25perm'
    """

    n_faults: int = 4
    fault_rate_per_s: float = 20.0
    mean_repair_s: float = 0.05
    router_fraction: float = 0.25
    repair: bool = True

    def __post_init__(self) -> None:
        if self.n_faults < 1:
            raise ConfigurationError("fault schedule needs >= 1 fault")
        if self.fault_rate_per_s <= 0:
            raise ConfigurationError("fault rate must be positive")
        if self.mean_repair_s <= 0:
            raise ConfigurationError("mean repair time must be positive")
        if not 0 <= self.router_fraction <= 1:
            raise ConfigurationError(
                "router_fraction must be in [0, 1]")

    @property
    def label(self) -> str:
        """Compact identifier used in run ids and reports.

        Encodes every numeric axis a sweep might vary (fault count,
        rate, router fraction, and the repair time or permanence), so
        two adversaries are distinguishable in any report row.
        """
        return (f"faults{self.n_faults}"
                f"r{self.fault_rate_per_s:g}"
                f"f{self.router_fraction:g}"
                + (f"d{self.mean_repair_s:g}" if self.repair else "perm"))


@dataclass(frozen=True)
class FaultEvent:
    """One fabric transition: a resource fails or is repaired.

    ``target`` is a directed link key ``(src, dst)`` for ``kind="link"``
    and a router name for ``kind="router"``.
    """

    time_s: float
    action: str   # "fail" | "repair"
    kind: str     # "link" | "router"
    target: tuple[str, str] | str

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ConfigurationError("fault event time must be >= 0")
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}")
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}")

    @property
    def target_label(self) -> str:
        """Stable printable identity of the failed resource."""
        if self.kind == "link":
            return f"{self.target[0]}->{self.target[1]}"
        return str(self.target)


class FaultSchedule:
    """Deterministic fault/repair event stream over one topology.

    Generation is eager, so the same schedule object can be replayed
    against several consumers; everything flows from one
    ``random.Random(seed)``.

    >>> from repro.topology.builders import mesh
    >>> schedule = FaultSchedule(FaultSpec(n_faults=2), mesh(2, 2), 7)
    >>> [e.action for e in schedule.events()].count("fail")
    2
    >>> schedule.events() == FaultSchedule(
    ...     FaultSpec(n_faults=2), mesh(2, 2), 7).events()
    True
    """

    def __init__(self, spec: FaultSpec, topology: Topology, seed: int):
        router_links = tuple(sorted(
            link.key for link in topology.links
            if topology.kind(link.src) is NodeKind.ROUTER
            and topology.kind(link.dst) is NodeKind.ROUTER))
        routers = topology.routers
        if not router_links and not routers:
            raise ConfigurationError(
                f"topology {topology.name!r} has nothing to fail")
        self.spec = spec
        self.topology = topology
        self.seed = seed
        self._events = self._generate(router_links, routers)

    def _generate(self, router_links: tuple[tuple[str, str], ...],
                  routers: tuple[str, ...]) -> tuple[FaultEvent, ...]:
        spec = self.spec
        rng = random.Random(self.seed)
        clock = 0.0
        events: list[FaultEvent] = []
        down: set[object] = set()
        pending: list[tuple[float, object]] = []  # (repair time, target)
        for _ in range(spec.n_faults):
            clock += rng.expovariate(spec.fault_rate_per_s)
            # Repairs scheduled before this fault free their resource
            # for re-failure.
            for at, target in sorted(pending, key=lambda p: p[0]):
                if at <= clock:
                    down.discard(target)
            pending = [(at, t) for at, t in pending if at > clock]
            kind, target = self._draw_target(rng, router_links, routers,
                                             down)
            if target is None:
                break  # everything that can fail is already down
            down.add(target)
            events.append(FaultEvent(clock, "fail", kind, target))
            if spec.repair:
                repair_at = clock + rng.expovariate(1.0 /
                                                    spec.mean_repair_s)
                events.append(FaultEvent(repair_at, "repair", kind,
                                         target))
                pending.append((repair_at, target))
        events.sort(key=lambda e: (e.time_s, e.action != "repair",
                                   e.kind, e.target_label))
        return tuple(events)

    def _draw_target(self, rng: random.Random,
                     router_links: tuple[tuple[str, str], ...],
                     routers: tuple[str, ...],
                     down: set[object]):
        """Draw a not-currently-failed resource, deterministically."""
        want_router = (rng.random() < self.spec.router_fraction
                       or not router_links)
        if want_router and routers:
            alive = [r for r in routers if r not in down]
            if alive:
                return "router", rng.choice(alive)
        # A link incident to a failed router is already dead, so it is
        # not a valid draw: every failure must shrink the surviving set.
        alive_links = [key for key in router_links
                       if key not in down
                       and key[0] not in down and key[1] not in down]
        if alive_links:
            return "link", rng.choice(alive_links)
        alive = [r for r in routers if r not in down]
        if alive:
            return "router", rng.choice(alive)
        return "link", None

    def events(self) -> tuple[FaultEvent, ...]:
        """The time-ordered fail/repair stream."""
        return self._events

    def failed_at(self, time_s: float) -> tuple[frozenset[tuple[str, str]],
                                                frozenset[str]]:
        """The ``(failed_links, failed_routers)`` sets at ``time_s``.

        Events at exactly ``time_s`` are included (a fault takes effect
        at its own instant).
        """
        links: set[tuple[str, str]] = set()
        routers: set[str] = set()
        for event in self._events:
            if event.time_s > time_s:
                break
            pool = links if event.kind == "link" else routers
            if event.action == "fail":
                pool.add(event.target)  # type: ignore[arg-type]
            else:
                pool.discard(event.target)  # type: ignore[arg-type]
        return frozenset(links), frozenset(routers)

    def excluded_at(self, time_s: float) -> frozenset[tuple[str, str]]:
        """Directed link keys unusable at ``time_s`` (links + routers)."""
        links, routers = self.failed_at(time_s)
        return excluded_link_keys(self.topology, links, routers)
