"""The ``python -m repro faults --demo`` flow.

Measures what survives a degrading fabric, quantitatively:

1. run a seeded churn workload through the online control plane
   *without* faults — the healthy baseline;
2. run the identical churn merged with a seeded fault schedule (link
   and router failures with repairs): fault-hit sessions are
   force-released and re-admitted through the normal admission path,
   every transition recorded onto the reconfiguration timeline;
3. fit the churn+fault timeline into a simulation horizon and verify
   dynamic composability on the flit-level TDM backend — every
   fault-survivor's trace must be bit-identical to its solo reference;
4. exercise the allocator layer directly:
   :meth:`~repro.core.allocation.Allocation.rebuild_excluding` of the
   final live allocation around the schedule's first failure, with
   per-channel verdicts;
5. aggregate everything into one survivability report
   (admission-retention, guarantee-retention, session survival).

The whole flow runs twice and the demo asserts the two canonical JSON
reports are byte-identical — the same self-check as the campaign,
serve, replay and design demos.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.faults.model import FaultSchedule, FaultSpec
from repro.simulation.composability import replay_traffic, verify_timeline
from repro.topology.builders import mesh

__all__ = ["demo_fault_spec", "survivability_record", "FaultRunOutcome",
           "run_churn_with_faults", "run_faults_demo"]

#: The replay demo's operating point: a 3x3 mesh with two NIs per
#: router has enough path diversity for rerouting to actually happen.
DEMO_TABLE_SIZE = 32
DEMO_FREQUENCY_HZ = 500e6


def demo_fault_spec(n_faults: int) -> FaultSpec:
    """The demo adversary: ``n_faults`` failures paced to land inside
    the ~20 ms the demo churn trace spans, most repaired quickly."""
    return FaultSpec(n_faults=n_faults, fault_rate_per_s=400.0,
                     mean_repair_s=0.004, router_fraction=0.25)


def survivability_record(baseline_totals: dict[str, object],
                         faulty_totals: dict[str, object],
                         fault_section: dict[str, object] | None
                         ) -> dict[str, object]:
    """Fold a faulty run and its healthy baseline into retention metrics.

    ``admission_retention`` is the faulty accept rate over the healthy
    one (capped at 1.0 — a fault cannot *improve* admission, but slot
    fragmentation noise can); ``guarantee_retention`` and
    ``session_survival`` come from the fault section of the degraded
    run's report.
    """
    base_rate = float(baseline_totals["accept_rate"])  # type: ignore
    fault_rate = float(faulty_totals["accept_rate"])  # type: ignore
    retention = fault_rate / base_rate if base_rate > 0 else 1.0
    section = fault_section or {}
    return {
        "baseline_accept_rate": round(base_rate, 4),
        "faulty_accept_rate": round(fault_rate, 4),
        "admission_retention": round(min(1.0, retention), 4),
        "guarantee_retention": section.get("guarantee_retention", 1.0),
        "session_survival": section.get("session_survival", 1.0),
        "n_evicted": section.get("n_evicted", 0),
        "n_reallocated": section.get("n_reallocated", 0),
        "n_dropped": section.get("n_dropped", 0),
    }


@dataclass
class FaultRunOutcome:
    """Everything one churn+faults experiment produces.

    ``baseline`` is the healthy run of the identical churn, ``faulty``
    the degraded run (its report carries the ``faults`` section),
    ``timeline`` the replayable churn+fault trace, ``verdict`` the
    fault-survivor composability check, and ``service`` the degraded
    service instance (its live allocation feeds rebuild studies).
    """

    baseline: object
    faulty: object
    timeline: object
    verdict: object
    service: object


def run_churn_with_faults(topology, events, schedule, *,
                          table_size: int, frequency_hz: float,
                          horizon_slots: int, name: str = "faults",
                          seed: int = 0, backend_factory=None,
                          scenario: str | None = None, telemetry=None,
                          monitor=None) -> FaultRunOutcome:
    """Run identical churn healthy and degraded, then replay and verify.

    The single orchestration shared by the demo and the campaign's
    ``mode="faults"`` runner: healthy baseline, churn merged with the
    fault schedule (timeline recorded only for the degraded run — the
    baseline's would be discarded), timeline fit, and the
    fault-survivor composability check on ``backend_factory`` (default:
    the flit-level TDM backend).  ``telemetry`` instruments the
    *degraded* run — that is the one whose admission/fault behaviour is
    under study.  ``monitor`` (a :class:`~repro.telemetry.monitor.
    MonitorSpec`) arms the conformance watchdog on the degraded service
    (quote conformance via ``outcome.service.conformance_report()``)
    and on the replay verification (``outcome.verdict.conformance``).
    """
    from repro.service.controller import SessionService, merge_events
    from repro.telemetry.hub import coalesce

    if monitor is True:
        from repro.telemetry.monitor import MonitorSpec
        monitor = MonitorSpec()
    elif monitor is False:
        monitor = None
    tel = coalesce(telemetry)

    def service(record_timeline: bool, run_telemetry=None,
                run_monitor=None) -> SessionService:
        return SessionService(
            topology, table_size=table_size, frequency_hz=frequency_hz,
            name=name, seed=seed, record_events=False,
            record_timeline=record_timeline, telemetry=run_telemetry,
            monitor=run_monitor)

    with tel.phase("baseline"):
        baseline_report = service(False).run(events)
    with tel.phase("degraded"):
        faulty = service(True, telemetry, monitor)
        faulty_report = faulty.run(
            merge_events(events, schedule.events()))
    with tel.phase("verify"):
        timeline = faulty.timeline(horizon_slots=horizon_slots)
        verdict = verify_timeline(timeline, replay_traffic(timeline),
                                  backend_factory=backend_factory,
                                  scenario=scenario or name,
                                  monitor=monitor)
    return FaultRunOutcome(baseline=baseline_report,
                           faulty=faulty_report, timeline=timeline,
                           verdict=verdict, service=faulty)


def run_faults_demo(*, n_events: int = 240, n_slots: int = 3000,
                    n_faults: int = 6, seed: int = 2009, telemetry=None,
                    monitor=None
                    ) -> tuple[dict[str, object], str, bool]:
    """Run the fault demo twice; return (record, json, byte-identical?).

    The record carries the healthy baseline, the degraded run (with its
    ``faults`` section), the survivability fold, the flit-level dynamic
    composability verdict for the churn+fault timeline, and the static
    ``rebuild_excluding`` study around the schedule's first failure.
    ``telemetry`` instruments the *first* run only, so byte-identity
    doubles as the telemetry-leak check.  ``monitor`` arms the
    conformance watchdog on the first run; its fault-survivor
    :class:`~repro.telemetry.monitor.ConformanceReport` is stashed
    under the record's ``"_conformance"`` key *after* the canonical
    JSON is rendered, so the demo report stays byte-identical with the
    monitor on or off.
    """
    # Local imports: campaign.spec imports service.churn which would
    # cycle through the package __init__s at module scope.
    from repro.campaign.spec import derive_seed
    from repro.service.churn import ChurnSpec, ChurnWorkload
    from repro.telemetry.hub import coalesce

    tel = coalesce(telemetry)
    with tel.phase("workload"):
        topology = mesh(3, 3, nis_per_router=2)
        churn = ChurnSpec(n_sessions=max(1, (n_events + 1) // 2 + 8))
        workload = ChurnWorkload(churn, topology,
                                 derive_seed(seed, "faults-demo"))
        events = workload.events(limit=n_events)
        schedule = FaultSchedule(
            demo_fault_spec(n_faults), topology,
            derive_seed(seed, "faults-demo", "schedule"))

    conformance: list = []

    def one_run(run_telemetry=None, run_monitor=None) -> dict[str, object]:
        outcome = run_churn_with_faults(
            topology, events, schedule, table_size=DEMO_TABLE_SIZE,
            frequency_hz=DEMO_FREQUENCY_HZ, horizon_slots=n_slots,
            name="faults-demo", seed=seed, scenario="faults-demo",
            telemetry=run_telemetry, monitor=run_monitor)
        if outcome.verdict.conformance is not None:
            conformance.append(outcome.verdict.conformance)
        baseline_report = outcome.baseline
        faulty_report = outcome.faulty
        timeline = outcome.timeline
        verdict = outcome.verdict
        first_fail = next(e for e in schedule.events()
                          if e.action == "fail")
        rebuild = outcome.service.allocation.rebuild_excluding(
            failed_links=([first_fail.target]
                          if first_fail.kind == "link" else ()),
            failed_routers=([first_fail.target]
                            if first_fail.kind == "router" else ()),
            telemetry=run_telemetry)
        return {
            "demo": "faults",
            "seed": seed,
            "n_events": len(events),
            "n_fault_events": len(schedule.events()),
            "horizon_slots": n_slots,
            "fault_schedule": [
                {"t_ms": round(e.time_s * 1e3, 4), "action": e.action,
                 "kind": e.kind, "target": e.target_label}
                for e in schedule.events()],
            "baseline": baseline_report.to_record(),
            "faulty": faulty_report.to_record(),
            "survivability": survivability_record(
                baseline_report.totals, faulty_report.totals,
                faulty_report.faults),
            "composability": verdict.to_record(),
            "rebuild_first_failure": rebuild.to_record(),
        }

    first = one_run(telemetry, monitor)
    with tel.phase("re-run"):
        first_json = json.dumps(first, indent=2, sort_keys=True)
        second_json = json.dumps(one_run(), indent=2, sort_keys=True)
    if conformance:
        # Added after both dumps on purpose: the conformance artifact
        # rides along for the CLI without entering the canonical record.
        first["_conformance"] = conformance[0]
    return first, first_json, first_json == second_json
