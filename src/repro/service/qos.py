"""QoS classes for online session admission.

A *session* is one user-facing guaranteed-service stream (a video call
leg, a voice channel, a bulk transfer).  Its network requirements are not
negotiated per session: it arrives tagged with a :class:`QosClass` that
fixes the throughput and latency requirement — exactly how Even & Fais
frame online QoS allocation as a request-admission problem, and what
makes the admission hot path cacheable: every (source NI, destination NI,
class) triple maps to the same candidate routes and slot demands, so
path search and slot arithmetic happen once per triple, not once per
session.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.connection import MB, ChannelSpec
from repro.core.exceptions import ConfigurationError

__all__ = ["QosClass", "DEFAULT_CLASSES", "class_by_name"]


@dataclass(frozen=True)
class QosClass:
    """Requirements shared by every session of one service class.

    Attributes
    ----------
    name:
        Class label (unique within a churn mix).
    throughput_mb_s:
        Required sustained payload throughput per session.
    max_latency_ns:
        Worst-case flit latency requirement, or ``None`` for classes
        that only need bandwidth (bulk transfers).
    weight:
        Relative arrival weight in a churn mix (normalised by the
        workload generator).

    >>> video = QosClass("video", throughput_mb_s=40.0,
    ...                  max_latency_ns=400.0)
    >>> video.channel_spec("s000001", "ni0_0_0", "ni1_0_0").application
    's000001'
    """

    name: str
    throughput_mb_s: float
    max_latency_ns: float | None = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("QoS class name must be non-empty")
        if self.throughput_mb_s <= 0:
            raise ConfigurationError(
                f"class {self.name!r} needs positive throughput")
        if self.max_latency_ns is not None and self.max_latency_ns <= 0:
            raise ConfigurationError(
                f"class {self.name!r} has non-positive latency requirement")
        if self.weight <= 0:
            raise ConfigurationError(
                f"class {self.name!r} needs positive weight")

    def channel_spec(self, session_id: str, src_ni: str,
                     dst_ni: str) -> ChannelSpec:
        """The allocator-facing channel of one session of this class.

        Each session is its own application — the unit of composability —
        so the continuous invariant checker can assert per-session
        isolation under churn.
        """
        return ChannelSpec(
            name=session_id, src_ip=src_ni, dst_ip=dst_ni,
            throughput_bytes_per_s=self.throughput_mb_s * MB,
            max_latency_ns=self.max_latency_ns,
            application=session_id)


#: A plausible interactive-SoC session mix at 500 MHz with a 32-slot
#: table (one slot guarantees ~41.7 MB/s of payload): latency-critical
#: control and voice, slot-sized video, and multi-slot bulk streams.
DEFAULT_CLASSES: tuple[QosClass, ...] = (
    QosClass("control", throughput_mb_s=1.0, max_latency_ns=300.0,
             weight=2.0),
    QosClass("voice", throughput_mb_s=5.0, max_latency_ns=150.0,
             weight=3.0),
    QosClass("video", throughput_mb_s=40.0, max_latency_ns=400.0,
             weight=3.0),
    QosClass("bulk", throughput_mb_s=120.0, max_latency_ns=None,
             weight=2.0),
)


def class_by_name(classes: tuple[QosClass, ...], name: str) -> QosClass:
    """Look up one class of a mix by name."""
    for qos in classes:
        if qos.name == name:
            return qos
    raise ConfigurationError(f"no QoS class named {name!r}")
