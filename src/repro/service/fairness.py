"""Multi-tenant weighted-fair admission, throttling, and shedding.

The control plane's FCFS admission answers "does this session fit?" —
it never asks "*whose* session is this?".  At millions-of-users scale
that is the open fairness hole: one abusive tenant flooding arrivals
starves every other application even though each individual admission
was legitimate.  This module closes it with three policy layers applied
*in front of* the allocator (the allocator itself stays untouched —
composability of admitted sessions is still the paper's per-connection
property):

* **weighted-fair queueing (WFQ)** — every tenant accumulates
  *virtual service* ``S_t`` (admitted capacity cost over its weight)
  inside the current accounting window.  While the allocator shows
  capacity pressure (trailing reject fraction at or above
  ``pressure_threshold``), an arrival from tenant ``t`` is gated
  against the least-served tenant seen this window: admit only if
  ``S_t`` stays within a ``quantum``-scaled burst allowance of that
  reference.  Heavier weights drain service slower, so a tenant's
  admitted-capacity share grows with its weight; the window reset
  means an idle tenant banks no credit and a busy one carries no
  eternal debt.  Without pressure the gate stands down — fairness
  never idles a network that has room (work conservation).  The same
  accounting nests one level down across a tenant's apps;
* **windowed rate throttling** — fixed time-binned open counters per
  tenant and per (tenant, app) with configurable ceilings;
* **QoS-class-aware load shedding** — when the trailing
  capacity-reject fraction crosses per-rank thresholds, arrivals are
  shed in :func:`shed_rank` order (bulk first, voice last).

All three layers honour the **guaranteed floor**: a tenant whose
admissions in the current window are below its ``floor_opens_per_window``
is exempt from every policy rejection and goes straight to the
allocator.  Policy decisions are pure functions of the (simulated)
event stream, so weighted-fair reports inherit the repo's
byte-determinism contract unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.service.qos import QosClass

__all__ = ["TenantSpec", "FairnessSpec", "PolicyEvent",
           "WeightedFairScheduler", "shed_rank", "abusive_tenant_mix",
           "tenant_events"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the control plane (plain value, picklable).

    Attributes
    ----------
    name:
        Tenant label (unique within a mix); tags every session the
        workload generator draws for this tenant.
    weight:
        Weighted-fair share.  Doubling the weight doubles the virtual
        service a tenant may accumulate before the WFQ gate holds it
        back, i.e. roughly doubles its admitted-capacity share under
        contention.
    rate_multiplier:
        Relative *arrival* intensity in a churn mix (how much traffic
        the tenant offers, not how much it deserves) — the adversary
        knob: an abusive tenant offers 10x while its weight stays 1.
    apps:
        The tenant's applications; sessions draw one uniformly and the
        WFQ accounting nests per app inside the tenant.
    floor_opens_per_window:
        Guaranteed floor: while the tenant has fewer admissions than
        this in the current throttle window, no policy layer may reject
        it (the allocator still can — physics beats policy).

    >>> TenantSpec("acme", weight=2.0).label
    'acme:w2'
    """

    name: str
    weight: float = 1.0
    rate_multiplier: float = 1.0
    apps: tuple[str, ...] = ("app0",)
    floor_opens_per_window: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r} needs positive weight")
        if self.rate_multiplier <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r} needs positive rate multiplier")
        if not self.apps:
            raise ConfigurationError(
                f"tenant {self.name!r} needs at least one app")
        if len(set(self.apps)) != len(self.apps):
            raise ConfigurationError(
                f"tenant {self.name!r} has duplicate app names")
        if self.floor_opens_per_window < 0:
            raise ConfigurationError(
                f"tenant {self.name!r} floor must be >= 0")

    @property
    def label(self) -> str:
        """Compact identifier used in churn labels and reports."""
        return f"{self.name}:w{self.weight:g}"


@dataclass(frozen=True)
class FairnessSpec:
    """Tunables of the weighted-fair admission policy.

    Attributes
    ----------
    quantum:
        Burst allowance of the WFQ gate, in units of the costliest
        session seen so far: an arrival is admitted only if its
        tenant's post-admission windowed virtual service stays within
        ``quantum * max_cost / weight`` of the least-served tenant of
        the current window.  ``1.0`` is strict head-of-line fairness;
        must be >= 1 or even the least-served tenant could be
        unadmittable.
    window_s:
        Width of the fixed throttle/floor/WFQ accounting time bins.
        Virtual service resets on every bin roll, so fairness is
        enforced per window: an idle tenant banks no credit, a busy
        one carries no eternal debt.
    pressure_threshold:
        Trailing capacity-reject fraction at or above which the WFQ
        gates engage.  ``0.0`` enforces fairness unconditionally (the
        deterministic property-test mode); the default keeps the gate
        out of the way of any workload the allocator is absorbing
        without rejects (work conservation).
    tenant_opens_per_window / app_opens_per_window:
        Windowed rate ceilings (``None`` disables a layer).  Arrivals
        beyond the ceiling in the current bin are shed with reason
        ``"throttle"``.
    overload_window:
        Trailing allocator outcomes folded into the overload signal.
    min_overload_samples:
        Outcomes required before shedding may trigger at all.
    shed_thresholds:
        Capacity-reject fraction above which arrivals of shed rank
        ``i`` (see :func:`shed_rank`) are shed; rank 0 (bulk) sheds
        first, ranks beyond the tuple never shed.

    >>> FairnessSpec().quantum
    2.0
    """

    quantum: float = 2.0
    window_s: float = 0.01
    pressure_threshold: float = 0.02
    tenant_opens_per_window: int | None = None
    app_opens_per_window: int | None = None
    overload_window: int = 64
    min_overload_samples: int = 16
    shed_thresholds: tuple[float, ...] = (0.25, 0.5, 0.75)

    def __post_init__(self) -> None:
        if self.quantum < 1.0:
            raise ConfigurationError(
                "quantum must be >= 1 (the least-served tenant must be "
                "admittable)")
        if self.window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        if not 0.0 <= self.pressure_threshold <= 1.0:
            raise ConfigurationError(
                "pressure_threshold must lie in [0, 1]")
        for label, limit in (("tenant", self.tenant_opens_per_window),
                             ("app", self.app_opens_per_window)):
            if limit is not None and limit < 1:
                raise ConfigurationError(
                    f"{label}_opens_per_window must be >= 1 or None")
        if self.overload_window < 1:
            raise ConfigurationError("overload_window must be >= 1")
        if self.min_overload_samples < 1:
            raise ConfigurationError("min_overload_samples must be >= 1")
        if any(not 0.0 < t <= 1.0 for t in self.shed_thresholds):
            raise ConfigurationError(
                "shed thresholds must lie in (0, 1]")
        if list(self.shed_thresholds) != sorted(self.shed_thresholds):
            raise ConfigurationError(
                "shed thresholds must be non-decreasing (rank 0 sheds "
                "first)")


@dataclass(frozen=True)
class PolicyEvent:
    """One runtime policy adjustment, mergeable into the event stream.

    ``action`` is ``set_weight`` (re-weight a tenant's fair share),
    ``set_floor`` (adjust its guaranteed floor) or ``set_limit``
    (per-tenant open ceiling override; ``None`` value restores the
    spec-wide ceiling).  Policy events interleave deterministically
    with session and fault events via :func:`~repro.service.controller.
    merge_events`: at equal instants they apply after closes/repairs
    but before failures/opens, so a re-weight at time ``t`` governs the
    arrivals of time ``t``.
    """

    time_s: float
    action: str  # "set_weight" | "set_floor" | "set_limit"
    tenant: str
    value: float | int | None = None

    def __post_init__(self) -> None:
        if self.action not in ("set_weight", "set_floor", "set_limit"):
            raise ConfigurationError(
                f"unknown policy action {self.action!r}")
        if not self.tenant:
            raise ConfigurationError("policy event needs a tenant name")
        if self.action == "set_weight" and (
                self.value is None or self.value <= 0):
            raise ConfigurationError("set_weight needs a positive value")
        if self.action == "set_floor" and (
                self.value is None or self.value < 0):
            raise ConfigurationError("set_floor needs a value >= 0")


def shed_rank(qos: QosClass) -> int:
    """Shedding order of a QoS class — lower ranks shed first.

    Bandwidth-only classes (no latency requirement: bulk transfers)
    are rank 0 and shed at the lightest overload; latency-bound classes
    rank above them, and the tightest-latency classes (voice-like,
    bound under 200 ns) shed last — they are the sessions a human
    notices dropping.

    >>> from repro.service.qos import DEFAULT_CLASSES, class_by_name
    >>> [shed_rank(class_by_name(DEFAULT_CLASSES, n))
    ...  for n in ("bulk", "video", "control", "voice")]
    [0, 1, 1, 2]
    """
    if qos.max_latency_ns is None:
        return 0
    return 2 if qos.max_latency_ns < 200.0 else 1


def abusive_tenant_mix(n_well_behaved: int = 3, *,
                       multiplier: float = 10.0, weight: float = 1.0,
                       floor_opens_per_window: int = 0,
                       apps_per_tenant: int = 2
                       ) -> tuple[TenantSpec, ...]:
    """The adversary profile: one flooding tenant among equals.

    Tenant ``abuser`` offers ``multiplier`` times the arrival intensity
    of each well-behaved tenant (``good0`` .. ``good{n-1}``) while every
    weight stays equal — exactly the workload FCFS admission cannot
    defend against and weighted-fair admission must.

    >>> [t.name for t in abusive_tenant_mix(2)]
    ['abuser', 'good0', 'good1']
    >>> abusive_tenant_mix(2)[0].rate_multiplier
    10.0
    """
    if n_well_behaved < 1:
        raise ConfigurationError("need at least one well-behaved tenant")
    apps = tuple(f"app{i}" for i in range(max(1, apps_per_tenant)))
    tenants = [TenantSpec(
        "abuser", weight=weight, rate_multiplier=multiplier, apps=apps,
        floor_opens_per_window=floor_opens_per_window)]
    tenants += [TenantSpec(
        f"good{i}", weight=weight, apps=apps,
        floor_opens_per_window=floor_opens_per_window)
        for i in range(n_well_behaved)]
    return tuple(tenants)


def tenant_events(events, tenant: str):
    """Filter an event stream down to one tenant's sessions.

    The solo-run baseline of the fairness demo: the tenant keeps its
    exact arrivals/departures from the shared mix, everyone else's
    vanish — so per-tenant admission rates are comparable between the
    contended run and the solo run.
    """
    return tuple(e for e in events if e.session.tenant == tenant)


class _FairQueue:
    """Windowed virtual-service accounting over one set of peers.

    Used twice by the scheduler: across tenants (weights from
    :class:`TenantSpec`) and, inside each tenant, across its apps
    (equal weights).  ``service`` maps peer -> normalised service
    admitted in the *current* window; ``arrived`` tracks which peers
    have offered traffic this window and therefore set the reference
    level (implicitly zero until a peer's first admission).  The
    scheduler rolls both on every window boundary; ``total`` keeps the
    whole-run cumulative service for reporting only.
    """

    def __init__(self):
        self.service: dict[str, float] = {}
        self.total: dict[str, float] = {}
        self.weight: dict[str, float] = {}
        self.arrived: set[str] = set()
        self.max_cost = 0.0

    def register(self, peer: str, weight: float) -> None:
        if peer not in self.service:
            self.service[peer] = 0.0
            self.total[peer] = 0.0
        self.weight[peer] = weight

    def roll(self) -> None:
        for peer in self.service:
            self.service[peer] = 0.0
        self.arrived.clear()

    def gate(self, peer: str, cost: float, quantum: float) -> bool:
        """Would admitting ``cost`` keep ``peer`` inside its share?

        The reference is the least-served peer among those seen this
        window, and the allowance scales with the costliest session
        observed so far — so one expensive admission never locks a
        peer out for longer than ``quantum`` such sessions' worth of
        catch-up by the laggard.  The weakly least-served peer is
        admissible unconditionally: progress never hinges on a
        floating-point boundary comparison.
        """
        self.arrived.add(peer)
        if cost > self.max_cost:
            self.max_cost = cost
        service = self.service[peer]
        reference = min(self.service[p] for p in self.arrived)
        if service <= reference:
            return True
        weight = self.weight[peer]
        return (service + cost / weight - reference
                <= quantum * self.max_cost / weight)

    def charge(self, peer: str, cost: float) -> None:
        share = cost / self.weight[peer]
        self.service[peer] += share
        self.total[peer] += share


class WeightedFairScheduler:
    """The live weighted-fair admission policy of one service run.

    Sits between the event loop and the allocator:
    :meth:`admit_decision` is consulted for every tenant-tagged open
    and returns ``None`` (proceed to the allocator) or a
    ``(reason_kind, reason)`` shed verdict; :meth:`on_admitted` /
    :meth:`on_capacity_reject` feed the accounting and the overload
    signal afterwards.  Unknown tenants self-register with default
    :class:`TenantSpec` parameters, so a tagged workload needs no
    up-front tenant roster.

    ``record_decisions=True`` additionally logs every verdict with the
    tenant's in-window admission count *at decision time* — the
    observable the floor property tests audit.
    """

    #: Policy rejection reasons, in the order the layers apply.
    REASONS = ("throttle", "overload", "fairness")

    def __init__(self, tenants: tuple[TenantSpec, ...] = (), *,
                 spec: FairnessSpec | None = None,
                 record_decisions: bool = False):
        self.spec = spec or FairnessSpec()
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate tenant names")
        self.tenants: dict[str, TenantSpec] = {}
        self._queue = _FairQueue()
        self._app_queues: dict[str, _FairQueue] = {}
        self._floor: dict[str, int] = {}
        self._limit: dict[str, int | None] = {}
        #: Fixed-bin windowed counters, reset on every bin roll.
        self._bin = -1
        self._window_opens: dict[str, int] = {}
        self._window_admits: dict[str, int] = {}
        self._window_app_opens: dict[tuple[str, str], int] = {}
        #: Trailing allocator outcomes (1 = capacity reject).
        self._outcomes: deque[int] = deque(
            maxlen=self.spec.overload_window)
        self._reject_sum = 0
        self.stats: dict[str, dict[str, int]] = {}
        self.decisions: list[tuple] | None = (
            [] if record_decisions else None)
        for tenant in tenants:
            self._register(tenant)

    def _register(self, tenant: TenantSpec) -> None:
        self.tenants[tenant.name] = tenant
        self._queue.register(tenant.name, tenant.weight)
        queue = _FairQueue()
        for app in tenant.apps:
            queue.register(app, 1.0)
        self._app_queues[tenant.name] = queue
        self._floor[tenant.name] = tenant.floor_opens_per_window
        self._limit[tenant.name] = self.spec.tenant_opens_per_window
        self.stats[tenant.name] = {
            "opens": 0, "admitted": 0, "rejected_capacity": 0,
            "shed_throttle": 0, "shed_overload": 0, "shed_fairness": 0}

    def _roll(self, time_s: float) -> None:
        bin_index = int(time_s / self.spec.window_s)
        if bin_index != self._bin:
            self._bin = bin_index
            self._window_opens.clear()
            self._window_admits.clear()
            self._window_app_opens.clear()
            self._queue.roll()
            for queue in self._app_queues.values():
                queue.roll()

    def _overload_fraction(self) -> float:
        if len(self._outcomes) < self.spec.min_overload_samples:
            return 0.0
        return self._reject_sum / len(self._outcomes)

    def admit_decision(self, time_s: float, session
                       ) -> tuple[str, str] | None:
        """Gate one tenant-tagged arrival; ``None`` means proceed.

        Layer order: guaranteed floor (exempts from everything below),
        windowed tenant/app throttle, overload shedding by QoS rank,
        then — only while the allocator shows capacity pressure — the
        tenant-level and app-level WFQ gates.
        """
        tenant = session.tenant
        if tenant not in self.tenants:
            self._register(TenantSpec(tenant))
        spec = self.spec
        self._roll(time_s)
        stats = self.stats[tenant]
        stats["opens"] += 1
        opens = self._window_opens[tenant] = (
            self._window_opens.get(tenant, 0) + 1)
        app_key = (tenant, session.app)
        app_opens = self._window_app_opens[app_key] = (
            self._window_app_opens.get(app_key, 0) + 1)
        admitted_in_window = self._window_admits.get(tenant, 0)
        # The gates run on every arrival (they track who offered
        # traffic this window) even when their verdict is ignored —
        # below the floor or without capacity pressure.
        cost = session.qos.throughput_mb_s
        app_queue = self._app_queues[tenant]
        if session.app not in app_queue.weight:
            app_queue.register(session.app, 1.0)
        tenant_fair = self._queue.gate(tenant, cost, spec.quantum)
        app_fair = app_queue.gate(session.app, cost, spec.quantum)
        verdict: tuple[str, str] | None = None
        if admitted_in_window >= self._floor[tenant]:
            limit = self._limit[tenant]
            app_limit = spec.app_opens_per_window
            rank = shed_rank(session.qos)
            pressured = (self._overload_fraction()
                         >= spec.pressure_threshold)
            if limit is not None and opens > limit:
                verdict = ("throttle",
                           f"tenant {tenant} over {limit} opens per "
                           f"{spec.window_s:g}s window")
            elif app_limit is not None and app_opens > app_limit:
                verdict = ("throttle",
                           f"app {session.app} of tenant {tenant} over "
                           f"{app_limit} opens per {spec.window_s:g}s "
                           "window")
            elif (rank < len(spec.shed_thresholds)
                  and self._overload_fraction()
                  >= spec.shed_thresholds[rank]):
                verdict = ("overload",
                           f"shedding {session.qos.name} (rank {rank}) "
                           f"at {self._overload_fraction():.0%} "
                           "capacity rejects")
            elif pressured and not tenant_fair:
                verdict = ("fairness",
                           f"tenant {tenant} beyond its weighted "
                           "fair share")
            elif pressured and not app_fair:
                verdict = ("fairness",
                           f"app {session.app} beyond its fair "
                           f"share of tenant {tenant}")
        if verdict is not None:
            stats[f"shed_{verdict[0]}"] += 1
        if self.decisions is not None:
            self.decisions.append(
                (time_s, tenant, session.app, session.qos.name,
                 verdict[0] if verdict else "pass",
                 admitted_in_window))
        return verdict

    def on_admitted(self, time_s: float, session) -> None:
        """Charge one admitted session to its tenant and app."""
        tenant = session.tenant
        cost = session.qos.throughput_mb_s
        self._queue.charge(tenant, cost)
        self._app_queues[tenant].charge(session.app, cost)
        self._roll(time_s)
        self._window_admits[tenant] = (
            self._window_admits.get(tenant, 0) + 1)
        self.stats[tenant]["admitted"] += 1
        self._push_outcome(0)

    def on_capacity_reject(self, time_s: float, session) -> None:
        """Feed one allocator reject into the overload signal."""
        self.stats[session.tenant]["rejected_capacity"] += 1
        self._push_outcome(1)

    def _push_outcome(self, rejected: int) -> None:
        if len(self._outcomes) == self._outcomes.maxlen:
            self._reject_sum -= self._outcomes[0]
        self._outcomes.append(rejected)
        self._reject_sum += rejected

    def apply_policy(self, event: PolicyEvent) -> None:
        """Apply one runtime :class:`PolicyEvent` to the live state."""
        tenant = event.tenant
        if tenant not in self.tenants:
            self._register(TenantSpec(tenant))
        if event.action == "set_weight":
            self._queue.register(tenant, float(event.value))
        elif event.action == "set_floor":
            self._floor[tenant] = int(event.value)
        else:
            self._limit[tenant] = (
                None if event.value is None else int(event.value))

    def to_record(self) -> dict[str, object]:
        """The deterministic ``fairness`` section of a service report."""
        spec = self.spec
        per_tenant = {}
        for name in sorted(self.tenants):
            stats = self.stats[name]
            shed = (stats["shed_throttle"] + stats["shed_overload"]
                    + stats["shed_fairness"])
            per_tenant[name] = {
                "weight": round(self._queue.weight[name], 4),
                "floor_opens_per_window": self._floor[name],
                "opens": stats["opens"],
                "admitted": stats["admitted"],
                "rejected_capacity": stats["rejected_capacity"],
                "shed": shed,
                "shed_by_reason": {
                    reason: stats[f"shed_{reason}"]
                    for reason in self.REASONS},
                "virtual_service": round(self._queue.total[name], 4),
            }
        return {
            "policy": "wfq",
            "quantum": round(spec.quantum, 4),
            "window_ms": round(spec.window_s * 1e3, 4),
            "pressure_threshold": round(spec.pressure_threshold, 4),
            "tenant_opens_per_window": spec.tenant_opens_per_window,
            "app_opens_per_window": spec.app_opens_per_window,
            "shed_thresholds": list(spec.shed_thresholds),
            "per_tenant": per_tenant,
        }
