"""Online NoC control plane: admission-controlled session churn.

The static design flow (:mod:`repro.core`) answers "can this use case be
allocated?" once; this package answers it continuously, for a stream of
millions of user sessions opening and closing against a live network:

* :mod:`repro.service.qos` — per-class session requirements;
* :mod:`repro.service.churn` — seeded Poisson/heavy-tail workloads,
  optionally tagged with a multi-tenant mix;
* :mod:`repro.service.fairness` — the multi-tenant admission policy
  tier: weighted-fair queueing over virtual service credits, windowed
  per-tenant/per-app throttling and QoS-class-aware overload shedding
  with guaranteed per-tenant floors (``policy="wfq"``);
* :mod:`repro.service.admission` — the bitmask + candidate-cache
  admission hot path over the existing contention-free allocator;
* :mod:`repro.service.invariants` — the paper's composability claim
  re-checked after every transition;
* :mod:`repro.service.metrics` — per-event records, windowed time
  series, deterministic JSON reports;
* :mod:`repro.service.controller` — the event loop tying it together,
  including fabric :class:`~repro.faults.model.FaultEvent` handling
  (fault-hit sessions are force-released and re-admitted over
  surviving routes, scored against their original quotes);
* :mod:`repro.service.demo` — the ``python -m repro serve --demo`` flow.

Churn scenarios also run inside :mod:`repro.campaign` grids (scenario
``mode="serve"``), sweeping topology × arrival rate × session mix ×
seed like any simulation scenario.
"""

from repro.service.admission import AdmissionController
from repro.service.churn import (ChurnSpec, ChurnWorkload, SessionEvent,
                                 SessionRequest)
from repro.service.controller import SessionService, merge_events
from repro.service.demo import run_demo
from repro.service.fairness import (FairnessSpec, PolicyEvent, TenantSpec,
                                    WeightedFairScheduler,
                                    abusive_tenant_mix, shed_rank,
                                    tenant_events)
from repro.service.fairness_demo import run_fairness_demo
from repro.service.invariants import CompositionInvariantChecker
from repro.service.metrics import ServiceMetrics, ServiceReport
from repro.service.qos import DEFAULT_CLASSES, QosClass, class_by_name

__all__ = [
    "QosClass", "DEFAULT_CLASSES", "class_by_name",
    "ChurnSpec", "ChurnWorkload", "SessionRequest", "SessionEvent",
    "TenantSpec", "FairnessSpec", "PolicyEvent", "WeightedFairScheduler",
    "abusive_tenant_mix", "shed_rank", "tenant_events",
    "AdmissionController", "CompositionInvariantChecker",
    "ServiceMetrics", "ServiceReport", "SessionService", "merge_events",
    "run_demo", "run_fairness_demo",
]
