"""The online NoC control plane: session churn over a live allocation.

:class:`SessionService` is the runtime entity the Æthereal
reconfiguration flow assumes: it consumes a time-ordered stream of
session open/close requests and keeps the network's TDM allocation
consistent throughout —

* **open**: the admission controller searches the cached candidate
  routes for a contention-free reservation; on success the session is
  *quoted* its analytical worst-case latency and guaranteed throughput
  (:func:`~repro.core.analysis.channel_bounds`) — the paper's
  predictability, now stamped on every accept; on failure the session
  is rejected with the allocator's reason and the network is untouched;
* **close**: the session's slots are released on every link it
  traversed, immediately reusable by later arrivals;
* after **every** transition the composability invariant is re-checked:
  no other running session's reservations may have moved (the paper's
  undisrupted-reconfiguration property, continuously verified under
  churn instead of once);
* with ``record_timeline=True`` every accepted open and released close
  is also emitted onto a :class:`~repro.core.timeline.
  ReconfigurationTimeline` — the replayable artifact the flit-level
  simulator executes epoch by epoch, closing the loop from analytical
  isolation proofs to cycle-level trace equality.

The run loop is deliberately synchronous and deterministic: one event
stream in, one report out, byte-identical across repeated runs.
"""

from __future__ import annotations

import time
from collections.abc import Iterable

from repro.core.allocation import (Allocation, AllocatorOptions,
                                   SlotAllocator, excluded_link_keys)
from repro.core.analysis import channel_bounds
from repro.core.exceptions import AllocationError, ConfigurationError
from repro.core.words import WordFormat
from repro.faults.model import FaultEvent
from repro.service.admission import AdmissionController
from repro.service.churn import SessionEvent
from repro.service.fairness import (FairnessSpec, PolicyEvent, TenantSpec,
                                    WeightedFairScheduler)
from repro.service.invariants import CompositionInvariantChecker
from repro.service.metrics import ServiceMetrics, ServiceReport
from repro.telemetry.hub import coalesce
from repro.telemetry.monitor import MonitorSpec, quote_conformance
from repro.telemetry.spans import Span
from repro.topology.graph import Topology

__all__ = ["SessionService", "merge_events"]

#: Wall-clock admission service latency buckets, microseconds.
_ADMIT_US_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)
#: Simulated session hold-time buckets, milliseconds.
_HOLD_MS_BUCKETS = (0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000, 3000)
#: Quoted worst-case latency bound buckets, nanoseconds.
_QUOTE_NS_BUCKETS = (100, 200, 500, 1000, 2000, 5000, 10000)


#: Equal-instant ordering of the merged timeline: closes free slots
#: first, repairs restore fabric, policy updates re-tune the scheduler,
#: then failures degrade and opens arrive last — so a close's slots are
#: reusable by a same-instant arrival, a repaired resource serves it,
#: and a re-weight at time ``t`` governs the arrivals of time ``t``.
_MERGE_PRIORITY = {"close": 0, "repair": 1, "set_weight": 2,
                   "set_floor": 2, "set_limit": 2, "fail": 3, "open": 4}


def _merge_key(event):
    """Total deterministic sort key ``(time, kind-priority, tag, id)``.

    Every stream kind contributes a distinct priority band and an
    id within it (session id, fault target, policy tenant), so ties at
    equal instants break identically regardless of input stream order —
    the property the tie-breaking regression tests pin down.
    """
    if isinstance(event, FaultEvent):
        return (event.time_s, _MERGE_PRIORITY[event.action], event.kind,
                event.target_label)
    if isinstance(event, PolicyEvent):
        return (event.time_s, _MERGE_PRIORITY[event.action],
                event.action, event.tenant)
    return (event.time_s, _MERGE_PRIORITY[event.kind], "",
            event.session.session_id)


def merge_events(*event_streams):
    """Merge session, fault and policy streams into one timeline.

    Accepts any number of streams mixing
    :class:`~repro.service.churn.SessionEvent`,
    :class:`~repro.faults.model.FaultEvent` and
    :class:`~repro.service.fairness.PolicyEvent`; the result is totally
    ordered by :func:`_merge_key` and therefore independent of how the
    events were split across the input streams.
    """
    return tuple(sorted(
        [event for stream in event_streams for event in stream],
        key=_merge_key))


class SessionService:
    """Admission-controlled session churn over one NoC."""

    def __init__(self, topology: Topology, *,
                 table_size: int | None = None,
                 frequency_hz: float | None = None,
                 fmt: WordFormat | None = None,
                 allocator: SlotAllocator | None = None,
                 options: AllocatorOptions | None = None,
                 name: str = "service", seed: int = 0,
                 window: int = 100, record_events: bool = True,
                 validate_every: int = 512,
                 record_timeline: bool = False,
                 timeline_slot_rate: float | None = None,
                 telemetry=None,
                 monitor: MonitorSpec | bool | None = None,
                 policy: str = "fcfs",
                 fairness: FairnessSpec | None = None,
                 tenants: tuple[TenantSpec, ...] = ()):
        if policy not in ("fcfs", "wfq"):
            raise ConfigurationError(
                f"unknown admission policy {policy!r}; expected 'fcfs' "
                "or 'wfq'")
        if policy == "fcfs" and (fairness is not None or tenants):
            raise ConfigurationError(
                "fairness spec / tenant roster only apply to "
                "policy='wfq' (FCFS must stay byte-identical to "
                "policy-free runs)")
        self.policy = policy
        #: The weighted-fair gate; ``None`` keeps the FCFS hot path
        #: untouched (not a single extra branch taken per event).
        self._fairness: WeightedFairScheduler | None = (
            WeightedFairScheduler(tenants, spec=fairness)
            if policy == "wfq" else None)
        if allocator is None:
            allocator = SlotAllocator(
                topology,
                table_size=32 if table_size is None else table_size,
                frequency_hz=(500e6 if frequency_hz is None
                              else frequency_hz),
                fmt=fmt, options=options)
        else:
            # A supplied allocator (cache sharing across service
            # instances) fixes the operating point; conflicting explicit
            # parameters must not be silently dropped.
            if allocator.topology is not topology:
                raise ConfigurationError(
                    "allocator was built for a different topology object")
            if table_size is not None and \
                    table_size != allocator.table_size:
                raise ConfigurationError(
                    f"table_size {table_size} conflicts with the supplied "
                    f"allocator's {allocator.table_size}")
            if frequency_hz is not None and \
                    frequency_hz != allocator.frequency_hz:
                raise ConfigurationError(
                    f"frequency_hz {frequency_hz:g} conflicts with the "
                    f"supplied allocator's {allocator.frequency_hz:g}")
            if fmt is not None and fmt != allocator.fmt:
                raise ConfigurationError(
                    "fmt conflicts with the supplied allocator's format")
            if options is not None and options != allocator.options:
                raise ConfigurationError(
                    "options conflict with the supplied allocator's")
        self.name = name
        self.seed = seed
        self.topology = topology
        self.allocator = allocator
        # All instruments resolve here, once; session spans use
        # *simulated* event time, the admit-latency histogram is
        # wall-clock and therefore flagged into the meta section.
        tel = coalesce(telemetry)
        self.telemetry = tel
        self._tel_enabled = tel.enabled
        if tel.enabled:
            # Only an enabled hub rebinds a (possibly shared) allocator;
            # a disabled service leaves whatever binding it carries.
            allocator.set_telemetry(tel)
        self._tel_admit_wall = tel.histogram(
            "service.admit_latency_us", bounds=_ADMIT_US_BUCKETS,
            wall=True)
        self._tel_hold = tel.histogram("service.session_hold_ms",
                                       bounds=_HOLD_MS_BUCKETS)
        self._tel_quote = tel.histogram(
            "service.quoted_latency_bound_ns", bounds=_QUOTE_NS_BUCKETS)
        #: Open-session bookkeeping for span tracing: session id ->
        #: (simulated open time, QoS class).  Populated only when the
        #: hub is enabled, so the disabled hot path never touches it.
        self._session_open: dict[str, tuple[float, str]] = {}
        # Observations are deferred: the hot path appends raw values to
        # these lists (an append is several times cheaper than an
        # instrument call or a Span construction) and the flush hook
        # registered below folds them into the registry whenever the
        # hub is read or exported.
        self._pending_admit_us: list[float] = []
        self._pending_spans: list[tuple[str, float, float, str, str]] = []
        if tel.enabled:
            tel.register_flush(self._flush_telemetry)
        self.admission = AdmissionController(allocator, telemetry=tel)
        self.allocation: Allocation = self.admission.allocation
        self.checker = CompositionInvariantChecker(
            self.allocation, validate_every=validate_every)
        self.metrics = ServiceMetrics(window=window,
                                      record_events=record_events)
        # The guarantee-conformance watchdog: when armed, every accepted
        # admission (and fault re-admission) is retained for quoting.
        # Deferred like the span/histogram capture above: the hot path
        # appends the (immutable) ChannelAllocation and the analytical
        # bounds are computed in conformance_report(), so arming the
        # watchdog costs one tuple append per accept.  A plain ``True``
        # arms the default spec.
        if monitor is True:
            monitor = MonitorSpec()
        elif monitor is False:
            monitor = None
        self.monitor: MonitorSpec | None = monitor
        self._quotes: list[tuple] = []
        #: Tenant tag of every admitted tenanted session, so fault
        #: re-admissions can re-quote under the owning tenant.
        self._session_tenant: dict[str, str] = {}
        self.active: dict[str, object] = {}
        self.peak_active = 0
        self._last_time_s = 0.0
        #: Currently failed fabric (fault-injection consumers only).
        self.failed_links: frozenset[tuple[str, str]] = frozenset()
        self.failed_routers: frozenset[str] = frozenset()
        self.recorder = None
        if record_timeline:
            from repro.core.timeline import TimelineRecorder
            self.recorder = TimelineRecorder(
                topology, table_size=self.allocator.table_size,
                frequency_hz=self.allocator.frequency_hz,
                fmt=self.allocator.fmt,
                slots_per_second=timeline_slot_rate)

    def timeline(self, *, horizon_slots: int, fit: bool = True):
        """The recorded churn as a replayable reconfiguration timeline.

        Requires ``record_timeline=True``; ``fit`` compresses the trace
        into the requested horizon (see :meth:`~repro.core.timeline.
        TimelineRecorder.build`).
        """
        if self.recorder is None:
            raise ConfigurationError(
                "timeline recording is off; construct the service with "
                "record_timeline=True")
        return self.recorder.build(horizon_slots=horizon_slots, fit=fit)

    # -- telemetry helpers ----------------------------------------------------

    def _tel_session_end(self, session_id: str, time_s: float,
                         outcome: str) -> None:
        """Close one session's trace span at a simulated instant.

        Only called behind ``self._tel_enabled``; unmatched ids (the
        session opened before tracing, or was already closed) are
        ignored.
        """
        entry = self._session_open.pop(session_id, None)
        if entry is None:
            return
        opened_s, qos_name = entry
        # One tuple append on the hot path; the hold-time histogram and
        # the Span object itself materialise at flush time.
        self._pending_spans.append(
            (session_id, opened_s, time_s, qos_name, outcome))

    def _flush_telemetry(self) -> None:
        """Fold deferred hot-path observations into the registry.

        Registered with :meth:`Telemetry.register_flush`, so it runs
        whenever the hub is read or exported.  Pending lists are
        drained, which keeps repeated flushes from double-counting.
        """
        observe = self._tel_hold.observe
        spans = self.telemetry.spans
        for session_id, opened_s, time_s, qos_name, outcome in (
                self._pending_spans):
            observe((time_s - opened_s) * 1e3)
            spans.append(Span(
                session_id, "sessions", "ms", opened_s * 1e3,
                time_s * 1e3, False,
                {"qos": qos_name, "outcome": outcome}))
        self._pending_spans.clear()
        observe = self._tel_admit_wall.observe
        for admit_us in self._pending_admit_us:
            observe(admit_us)
        self._pending_admit_us.clear()

    # -- event handling -------------------------------------------------------

    def process(self, event) -> None:
        """Apply one session or fault event to the live allocation."""
        self._last_time_s = event.time_s
        if isinstance(event, FaultEvent):
            self.process_fault(event)
            return
        if isinstance(event, PolicyEvent):
            if self._fairness is None:
                raise ConfigurationError(
                    "policy events need policy='wfq'; the FCFS service "
                    "has no scheduler to adjust")
            self._fairness.apply_policy(event)
            return
        if event.kind == "open":
            self._open(event)
        else:
            self._close(event)
        if self.metrics.due_for_snapshot:
            self.metrics.snapshot(
                time_s=event.time_s,
                active_sessions=len(self.active),
                mean_link_utilisation=self.allocation
                .mean_link_utilisation())

    def process_fault(self, event: FaultEvent) -> None:
        """Apply one fabric failure or repair.

        A failure force-releases every session whose route crosses the
        dead resource and immediately tries to re-admit each one through
        the *normal* admission path (now restricted to surviving links);
        re-admissions are quoted fresh bounds and compared against the
        pre-fault quote for the guarantee-retention verdict.  All
        transitions flow through the timeline recorder, so a churn+fault
        trace replays through the standard epoch-based simulators.  A
        repair only restores the fabric — degraded sessions are not
        migrated back (no disruption without cause).
        """
        if event.action == "fail":
            if event.kind == "link":
                self.failed_links = self.failed_links | {event.target}
            else:
                self.failed_routers = self.failed_routers | {event.target}
        else:
            if event.kind == "link":
                self.failed_links = self.failed_links - {event.target}
            else:
                self.failed_routers = self.failed_routers - {event.target}
        excluded = excluded_link_keys(self.topology, self.failed_links,
                                      self.failed_routers)
        self.admission.set_excluded_links(excluded)
        evicted = reallocated = same_bounds = degraded = 0
        outcomes: list[dict[str, object]] = []
        start = time.perf_counter()
        if event.action == "fail" and excluded:
            affected = sorted(
                sid for sid, ca in self.active.items()
                if not excluded.isdisjoint(ca.path.link_keys()))
            for sid in affected:
                outcome = self._relocate(sid, event.time_s)
                evicted += 1
                if outcome["decision"] != "dropped":
                    reallocated += 1
                    if outcome["decision"] == "same_bounds":
                        same_bounds += 1
                    else:
                        degraded += 1
                outcomes.append(outcome)
        wall = time.perf_counter() - start
        if self._tel_enabled:
            self.telemetry.span(
                f"{event.action} {event.kind} {event.target_label}",
                event.time_s * 1e3, event.time_s * 1e3, track="faults",
                unit="ms", action=event.action, evicted=evicted,
                reallocated=reallocated)
        record: dict[str, object] | None = None
        if self.metrics.record_events:
            record = {
                "after_event": self.metrics.n_events,
                "fault_index": self.metrics.n_fault_events + 1,
                "t_ms": round(event.time_s * 1e3, 4),
                "kind": "fault",
                "action": event.action,
                "fault_kind": event.kind,
                "target": event.target_label,
                "evicted": evicted,
                "reallocated": reallocated,
                "sessions": outcomes,
            }
        self.metrics.record_fault(
            record, action=event.action, evicted=evicted,
            reallocated=reallocated, same_bounds=same_bounds,
            degraded=degraded, realloc_wall_s=wall)

    def _relocate(self, session_id: str, time_s: float
                  ) -> dict[str, object]:
        """Force-release one fault-hit session and try to re-admit it."""
        old_ca = self.active[session_id]
        old_bounds = channel_bounds(old_ca, self.allocator.table_size,
                                    self.allocator.frequency_hz,
                                    self.allocator.fmt)
        if self._tel_enabled:
            entry = self._session_open.get(session_id)
            qos_name = entry[1] if entry is not None else ""
            self._tel_session_end(session_id, time_s, "evicted")
        self.admission.release(session_id)
        del self.active[session_id]
        self.checker.check_transition(session_id)
        if self.recorder is not None:
            self.recorder.record_stop(time_s, session_id)
        outcome: dict[str, object] = {"session": session_id}
        try:
            new_ca = self.admission.admit(old_ca.spec, old_ca.path.source,
                                          old_ca.path.dest)
        except AllocationError as exc:
            outcome["decision"] = "dropped"
            outcome["reason"] = exc.reason
            return outcome
        self.active[session_id] = new_ca
        if self._tel_enabled:
            self._session_open[session_id] = (time_s, qos_name)
        self.checker.check_transition(session_id)
        if self.recorder is not None:
            self.recorder.record_start(time_s, session_id, (new_ca,))
        new_bounds = channel_bounds(new_ca, self.allocator.table_size,
                                    self.allocator.frequency_hz,
                                    self.allocator.fmt)
        if self.monitor is not None:
            self._quotes.append((session_id, "relocated", new_ca,
                                 self._session_tenant.get(session_id,
                                                          "")))
        same = (new_bounds.throughput_bytes_per_s >=
                old_bounds.throughput_bytes_per_s * (1 - 1e-9)
                and new_bounds.latency_ns <=
                old_bounds.latency_ns * (1 + 1e-9))
        outcome["decision"] = "same_bounds" if same else "degraded"
        outcome["latency_bound_ns"] = round(new_bounds.latency_ns, 3)
        return outcome

    def _open(self, event: SessionEvent) -> None:
        session = event.session
        spec = session.channel_spec()
        # Record dicts (and the bound quote they carry) are only built
        # when per-event recording is on; campaigns and the benchmark run
        # with record_events=False and must not pay for discarded work.
        recording = self.metrics.record_events
        record: dict[str, object] | None = None
        if recording:
            record = {
                "event": self.metrics.n_events + 1,
                "t_ms": round(event.time_s * 1e3, 4),
                "kind": "open",
                "session": session.session_id,
                "class": session.qos.name,
                "src": session.src_ni,
                "dst": session.dst_ni,
            }
            if session.tenant:
                record["tenant"] = session.tenant
                record["app"] = session.app
        fairness = self._fairness
        start = time.perf_counter()
        if fairness is not None and session.tenant:
            verdict = fairness.admit_decision(event.time_s, session)
            if verdict is not None:
                # Policy shed: the allocator is never consulted, the
                # network untouched — still a checked (no-op) transition
                # and a rejected open in every rollup.
                wall = time.perf_counter() - start
                if record is not None:
                    record["decision"] = "shed"
                    record["shed"] = verdict[0]
                    record["reason"] = verdict[1]
                self.checker.check_transition(session.session_id)
                if self._tel_enabled:
                    self._pending_admit_us.append(wall * 1e6)
                self.metrics.record_open(
                    record, qos_name=session.qos.name, accepted=False,
                    wall_s=wall, tenant=session.tenant,
                    shed=verdict[0])
                return
        try:
            ca = self.admission.admit(spec, session.src_ni,
                                      session.dst_ni)
        except AllocationError as exc:
            wall = time.perf_counter() - start
            if fairness is not None and session.tenant:
                fairness.on_capacity_reject(event.time_s, session)
            if record is not None:
                record["decision"] = "reject"
                record["reason"] = exc.reason
            accepted = False
        else:
            wall = time.perf_counter() - start
            if fairness is not None and session.tenant:
                fairness.on_admitted(event.time_s, session)
            if self.monitor is not None:
                self._quotes.append((session.session_id,
                                     session.qos.name, ca,
                                     session.tenant))
            if record is not None:
                bounds = channel_bounds(ca, self.allocator.table_size,
                                        self.allocator.frequency_hz,
                                        self.allocator.fmt)
                record["decision"] = "accept"
                record["quote"] = {
                    "latency_bound_ns": round(bounds.latency_ns, 3),
                    "throughput_mb_s": round(
                        bounds.throughput_bytes_per_s / 1e6, 3),
                    "n_slots": bounds.n_slots,
                    "hops": len(ca.path.routers),
                }
                # Quote-bound capture piggybacks on the record-mode
                # bound computation; record_events=False runs skip both.
                self._tel_quote.observe(bounds.latency_ns)
            if self._tel_enabled:
                self._session_open[session.session_id] = (
                    event.time_s, session.qos.name)
            self.active[session.session_id] = ca
            if session.tenant:
                self._session_tenant[session.session_id] = session.tenant
            self.peak_active = max(self.peak_active, len(self.active))
            accepted = True
            if self.recorder is not None:
                self.recorder.record_start(event.time_s,
                                           session.session_id, (ca,))
        self.checker.check_transition(session.session_id)
        if self._tel_enabled:
            self._pending_admit_us.append(wall * 1e6)
        self.metrics.record_open(record, qos_name=session.qos.name,
                                 accepted=accepted, wall_s=wall,
                                 tenant=session.tenant)

    def _close(self, event: SessionEvent) -> None:
        session = event.session
        released = session.session_id in self.active
        if released:
            if self._tel_enabled:
                self._tel_session_end(session.session_id, event.time_s,
                                      "closed")
            self.admission.release(session.session_id)
            del self.active[session.session_id]
            self.checker.check_transition(session.session_id)
            if self.recorder is not None:
                self.recorder.record_stop(event.time_s,
                                          session.session_id)
        record: dict[str, object] | None = None
        if self.metrics.record_events:
            record = {
                "event": self.metrics.n_events + 1,
                "t_ms": round(event.time_s * 1e3, 4),
                "kind": "close",
                "session": session.session_id,
                "released": released,
            }
        self.metrics.record_close(record, released=released)

    def conformance_report(self, *, scenario: str = "service"):
        """Classify every accepted quote against its session's QoS needs.

        Requires the service to have been constructed with ``monitor``
        set; returns the canonical byte-deterministic
        :class:`~repro.telemetry.monitor.ConformanceReport` over all
        admissions (including fault re-admissions) so far.  The
        analytical bounds are quoted *here*, not on the admission hot
        path — the retained allocations are immutable, so the deferred
        quote is identical to an inline one.
        """
        if self.monitor is None:
            raise ConfigurationError(
                "conformance monitoring is off; construct the service "
                "with monitor=MonitorSpec() (or monitor=True)")
        quotes = []
        for session_id, qos_name, ca, tenant in self._quotes:
            bounds = channel_bounds(ca, self.allocator.table_size,
                                    self.allocator.frequency_hz,
                                    self.allocator.fmt)
            quotes.append((session_id, qos_name, bounds.latency_ns,
                           ca.spec.max_latency_ns,
                           bounds.throughput_bytes_per_s,
                           ca.spec.throughput_bytes_per_s, tenant))
        return quote_conformance(quotes, spec=self.monitor,
                                 scenario=scenario)

    # -- batch execution ------------------------------------------------------

    def run(self, events: Iterable) -> ServiceReport:
        """Process a whole stream and aggregate the report.

        The stream may mix :class:`~repro.service.churn.SessionEvent`
        and :class:`~repro.faults.model.FaultEvent` items (see
        :func:`merge_events`); it must be time-ordered.
        """
        start = time.perf_counter()
        for event in events:
            self.process(event)
        wall = time.perf_counter() - start
        return self.report(wall_s=wall)

    def report(self, *, wall_s: float = 0.0) -> ServiceReport:
        """Aggregate the current state into a :class:`ServiceReport`."""
        if self._tel_enabled:
            # Sessions still open when the stream ends get spans closed
            # at the last simulated instant; popping them keeps repeated
            # report() calls from duplicating spans.
            for session_id in sorted(self._session_open):
                self._tel_session_end(session_id, self._last_time_s,
                                      "open-at-end")
        metrics = self.metrics
        totals: dict[str, object] = {
            "n_events": metrics.n_events,
            "n_opens": metrics.n_opens,
            "n_accepted": metrics.n_accepted,
            "n_rejected": metrics.n_rejected,
            "n_closes": metrics.n_closes,
            "n_released": metrics.n_released,
            "accept_rate": round(
                metrics.n_accepted / metrics.n_opens, 4)
            if metrics.n_opens else 1.0,
            "active_at_end": len(self.active),
            "peak_active": self.peak_active,
            "final_mean_link_utilisation": round(
                self.allocation.mean_link_utilisation(), 4),
        }
        if self._fairness is not None:
            # Only policy-gated runs carry the shed total: FCFS totals
            # keep their exact key set (byte-compatibility).
            totals["n_shed"] = metrics.n_shed
        report = ServiceReport(
            service=self.name,
            topology=self.topology.name,
            table_size=self.allocator.table_size,
            frequency_mhz=self.allocator.frequency_hz / 1e6,
            seed=self.seed,
            totals=totals,
            per_class={k: dict(v)
                       for k, v in sorted(metrics.per_class.items())},
            series=list(metrics.series),
            invariant=self.checker.final_check(),
            events=list(metrics.events),
            faults=(metrics.fault_totals()
                    if metrics.n_fault_events else None),
            tenants=({k: dict(v)
                      for k, v in sorted(metrics.per_tenant.items())}
                     if metrics.per_tenant else None),
            fairness=(self._fairness.to_record()
                      if self._fairness is not None else None),
        )
        report.timing = metrics.timing(wall_s)
        return report
