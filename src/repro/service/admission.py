"""The admission hot path: cached candidates, bitmask slot search.

Admitting a session is the same contention-free allocation problem the
offline :class:`~repro.core.allocation.SlotAllocator` solves, restricted
to one channel at a time against a live allocation.  What changes is the
cost model: the offline allocator runs once per use case, the admission
controller runs per session event, so everything that does not depend on
the *current* occupancy is precomputed and cached:

* candidate routes come from the allocator's memoised k-shortest cache
  (:meth:`~repro.core.allocation.SlotAllocator.shortest_candidates`);
* per (source NI, destination NI, requirement) triple, the slot count
  and latency-gap constraint of every candidate path are computed once
  (:class:`_Candidate`), together with direct references to the link
  occupancy tables the path traverses;
* the per-admission work that remains is one AND per link over integer
  free-slot bitmasks, a popcount, and the single-anchor spreading
  heuristic (:func:`~repro.core.slot_table.choose_slots_fast`).

Commits go through :meth:`Allocation.commit`, so the authoritative
bookkeeping — and its rollback-on-conflict guarantee — is shared with
the offline flow and with :class:`~repro.core.reconfiguration.
ReconfigurationManager`.

Under fault injection the controller additionally honours an excluded
link set (:meth:`AdmissionController.set_excluded_links`): candidates
whose route crosses failed fabric are skipped at admit time, at zero
cost to the healthy hot path (one emptiness check).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import (Allocation, ChannelAllocation,
                                   SlotAllocator)
from repro.core.connection import ChannelSpec
from repro.core.exceptions import AllocationError
from repro.core.path import Path
from repro.core.slot_table import (SlotTable, choose_slots_fast,
                                   mask_to_slots, rotate_mask)
from repro.telemetry.hub import coalesce

__all__ = ["AdmissionController"]

#: Bucket edges for the free-slot intersection width histogram (slots
#: surviving the per-link AND on the winning candidate).
_WIDTH_BUCKETS = (0, 1, 2, 4, 8, 16, 24, 32)


@dataclass(frozen=True)
class _Candidate:
    """One admissible route with its precomputed slot arithmetic."""

    path: Path
    n_slots: int
    max_gap: int | None
    # (occupancy table, slot shift) per traversed link, resolved once so
    # the hot loop does no dict lookups.
    tables: tuple[tuple[SlotTable, int], ...]
    # Traversed link keys, for the degraded-mode exclusion check.
    link_keys: frozenset[tuple[str, str]]


class AdmissionController:
    """Incremental contention-free admission over one live allocation."""

    def __init__(self, allocator: SlotAllocator,
                 allocation: Allocation | None = None, *,
                 telemetry=None):
        self.allocator = allocator
        self.allocation = allocation or Allocation(
            allocator.topology, allocator.table_size,
            allocator.frequency_hz, allocator.fmt)
        self._size = allocator.table_size
        self._full = (1 << self._size) - 1
        self._candidates: dict[tuple[str, str, float, float | None],
                               tuple[_Candidate, ...]] = {}
        #: Directed link keys currently unusable (failed fabric); empty
        #: on the healthy-network hot path, which therefore pays nothing.
        self.excluded_links: frozenset[tuple[str, str]] = frozenset()
        self.admits = 0
        self.rejects = 0
        self.releases = 0
        self.path_hits = 0
        self.path_misses = 0
        # Instruments are resolved once here (the cold path), which
        # also fixes their registry order.  The hot path itself never
        # calls them: decisions/releases/cache outcomes ride the plain
        # integer tallies above and the pending width list below, and
        # :meth:`flush_telemetry` folds the deltas into the registry.
        # An integer increment is several times cheaper than even a
        # no-op instrument call, which keeps the enabled-mode overhead
        # inside the tier-2 gate (bench_telemetry_overhead.py).
        tel = coalesce(telemetry)
        self.telemetry = tel
        self._tel_collect = tel.enabled
        self._tel_accept = tel.counter("admission.decisions",
                                       outcome="accept")
        self._tel_reject = tel.counter("admission.decisions",
                                       outcome="reject")
        self._tel_release = tel.counter("admission.releases")
        self._tel_path_hit = tel.counter("admission.path_cache",
                                         outcome="hit")
        self._tel_path_miss = tel.counter("admission.path_cache",
                                          outcome="miss")
        self._tel_width = tel.histogram("admission.free_slot_width",
                                        bounds=_WIDTH_BUCKETS)
        self._pending_widths: list[int] = []
        self._flushed = {"admits": 0, "rejects": 0, "releases": 0,
                         "path_hits": 0, "path_misses": 0}
        tel.register_flush(self.flush_telemetry)

    def set_excluded_links(
            self, excluded: frozenset[tuple[str, str]]) -> None:
        """Degrade (or restore) the fabric the admission path may use.

        Candidates whose route crosses an excluded link are skipped at
        admit time; the candidate cache itself is fault-agnostic, so
        repairs need no cache invalidation.
        """
        self.excluded_links = frozenset(excluded)

    # -- hot path -------------------------------------------------------------

    def admit(self, spec: ChannelSpec, src_ni: str,
              dst_ni: str) -> ChannelAllocation:
        """Admit one session channel; raises :class:`AllocationError`.

        Tries the cached candidate routes in deterministic (shortest
        first) order; the first route whose free-slot intersection can
        satisfy both the slot count and the gap constraint wins and is
        committed atomically.  A failed admission commits nothing.
        """
        if spec.name in self.allocation.channels:
            raise AllocationError(
                f"session {spec.name!r} is already admitted",
                channel=spec.name, reason="session already admitted")
        size = self._size
        excluded = self.excluded_links
        candidates = self._lookup(spec, src_ni, dst_ni)
        n_usable = 0
        for cand in candidates:
            if excluded and not excluded.isdisjoint(cand.link_keys):
                continue
            n_usable += 1
            mask = self._full
            for table, shift in cand.tables:
                mask &= rotate_mask(table.free_mask, shift, size)
                if not mask:
                    break
            width = mask.bit_count()
            if width < cand.n_slots:
                continue
            slots = choose_slots_fast(mask_to_slots(mask), cand.n_slots,
                                      size, max_gap=cand.max_gap)
            if slots is None:
                continue
            ca = ChannelAllocation(spec=spec, path=cand.path, slots=slots)
            self.allocation.commit(ca)
            self.admits += 1
            if self._tel_collect:
                self._pending_widths.append(width)
            return ca
        self.rejects += 1
        # Distinguish transient capacity exhaustion (retry later may
        # succeed) from requirements no route can ever meet, and from
        # routes that exist but cross failed fabric.
        if not candidates:
            reason = "no route can meet the requirements"
        elif not n_usable:
            reason = "every candidate route crosses failed fabric"
        else:
            reason = "no candidate route has capacity"
        raise AllocationError(
            f"cannot admit session {spec.name!r} "
            f"({src_ni} -> {dst_ni}, "
            f"{spec.throughput_bytes_per_s / 1e6:.3g} MB/s): {reason}",
            channel=spec.name, reason=reason)

    def release(self, session_id: str) -> ChannelAllocation:
        """Release one admitted session, freeing its slots everywhere."""
        ca = self.allocation.release(session_id)
        self.releases += 1
        return ca

    def flush_telemetry(self) -> None:
        """Fold the hot-path tallies into the telemetry registry.

        Registered with :meth:`Telemetry.register_flush`, so it runs
        whenever the hub is read or exported.  Delta-based and
        therefore idempotent: calling it twice (or after more events)
        only accounts for what happened since the previous flush.
        """
        if not self._tel_collect:
            return
        flushed = self._flushed
        for attr, counter in (("admits", self._tel_accept),
                              ("rejects", self._tel_reject),
                              ("releases", self._tel_release),
                              ("path_hits", self._tel_path_hit),
                              ("path_misses", self._tel_path_miss)):
            delta = getattr(self, attr) - flushed[attr]
            if delta:
                counter.inc(delta)
                flushed[attr] = getattr(self, attr)
        observe = self._tel_width.observe
        for width in self._pending_widths:
            observe(width)
        self._pending_widths.clear()

    # -- cold path ------------------------------------------------------------

    def _lookup(self, spec: ChannelSpec, src_ni: str,
                dst_ni: str) -> tuple[_Candidate, ...]:
        key = (src_ni, dst_ni, spec.throughput_bytes_per_s,
               spec.max_latency_ns)
        cached = self._candidates.get(key)
        if cached is None:
            cached = self._build_candidates(spec, src_ni, dst_ni)
            self._candidates[key] = cached
            self.path_misses += 1
        else:
            self.path_hits += 1
        return cached

    def _build_candidates(self, spec: ChannelSpec, src_ni: str,
                          dst_ni: str) -> tuple[_Candidate, ...]:
        # Slot arithmetic comes from the allocator's cross-instance quote
        # cache; this controller only binds the routes to its own
        # allocation's occupancy tables.
        out = []
        for path, n, gap in self.allocator.route_quotes(src_ni, dst_ni,
                                                        spec):
            tables = tuple(
                (self.allocation.link_tables[link.key], shift % self._size)
                for link, shift in zip(path.links, path.link_shifts))
            out.append(_Candidate(path=path, n_slots=n, max_gap=gap,
                                  tables=tables,
                                  link_keys=frozenset(path.link_keys())))
        return tuple(out)
