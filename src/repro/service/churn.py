"""Seeded session-churn workloads: Poisson arrivals, heavy-tailed holds.

The control plane's input is a time-ordered stream of session open/close
requests.  :class:`ChurnWorkload` generates that stream deterministically
from a :class:`ChurnSpec` and a seed:

* arrivals are a Poisson process (exponential inter-arrival times) at a
  configurable rate — the aggregate of many independent users;
* session durations are heavy-tailed (truncated Pareto), so most
  sessions are short but a few pin their slots for a long time — the
  regime that actually stresses incremental admission;
* each session draws a QoS class from the weighted mix and a distinct
  source/destination NI pair from the topology.

Everything is derived from one ``random.Random(seed)``; the same spec,
topology, and seed always produce the byte-identical event stream, which
is what lets service reports be compared across commits like campaign
reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.connection import ChannelSpec
from repro.core.exceptions import ConfigurationError
from repro.service.fairness import TenantSpec
from repro.service.qos import DEFAULT_CLASSES, QosClass
from repro.topology.graph import Topology

__all__ = ["ChurnSpec", "SessionRequest", "SessionEvent", "ChurnWorkload"]


@dataclass(frozen=True)
class ChurnSpec:
    """Parameters of a churn workload (plain value, picklable).

    Attributes
    ----------
    n_sessions:
        Sessions to generate; the event stream has up to twice as many
        events (one open and one close per session).
    arrival_rate_per_s:
        Poisson arrival rate of new sessions.
    mean_duration_s:
        Mean session hold time (of the untruncated Pareto).
    pareto_shape:
        Tail index of the duration distribution (> 1 so the mean
        exists; smaller = heavier tail).
    max_duration_s:
        Truncation cap on a single session's duration.
    classes:
        The weighted QoS mix sessions are drawn from.
    tenants:
        Optional multi-tenant mix: every session is additionally tagged
        with a tenant (drawn proportionally to each tenant's
        ``rate_multiplier``) and one of that tenant's apps.  The empty
        default adds no RNG draws, so untenanted streams — and their
        reports — stay byte-identical to earlier releases.

    >>> ChurnSpec(n_sessions=100, arrival_rate_per_s=1000.0).label
    'churn100r1000d0.02'
    >>> from repro.service.fairness import TenantSpec
    >>> ChurnSpec(tenants=(TenantSpec("a"), TenantSpec("b"))).label
    'churn1000r5000d0.02t2'
    """

    n_sessions: int = 1000
    arrival_rate_per_s: float = 5000.0
    mean_duration_s: float = 0.02
    pareto_shape: float = 1.5
    max_duration_s: float = 2.0
    classes: tuple[QosClass, ...] = DEFAULT_CLASSES
    tenants: tuple[TenantSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.n_sessions < 1:
            raise ConfigurationError("churn needs >= 1 session")
        if self.arrival_rate_per_s <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if self.mean_duration_s <= 0 or self.max_duration_s <= 0:
            raise ConfigurationError("durations must be positive")
        if self.pareto_shape <= 1.0:
            raise ConfigurationError(
                "pareto_shape must exceed 1 (finite mean)")
        if not self.classes:
            raise ConfigurationError("churn needs at least one QoS class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate QoS class names")
        tenant_names = [t.name for t in self.tenants]
        if len(set(tenant_names)) != len(tenant_names):
            raise ConfigurationError("duplicate tenant names")

    @property
    def label(self) -> str:
        """Compact identifier used in run ids and reports."""
        label = (f"churn{self.n_sessions}"
                 f"r{self.arrival_rate_per_s:g}"
                 f"d{self.mean_duration_s:g}")
        if self.tenants:
            label += f"t{len(self.tenants)}"
        return label


@dataclass(frozen=True)
class SessionRequest:
    """One user session: who talks to whom, how, and for how long.

    ``tenant``/``app`` carry the multi-tenant tags of a tenanted churn
    mix; both stay empty (and invisible in reports) for untenanted
    workloads.
    """

    session_id: str
    qos: QosClass
    src_ni: str
    dst_ni: str
    arrival_s: float
    duration_s: float
    tenant: str = ""
    app: str = ""

    @property
    def departure_s(self) -> float:
        """Instant the session closes (if admitted)."""
        return self.arrival_s + self.duration_s

    def channel_spec(self) -> ChannelSpec:
        """The allocator-facing channel of this session."""
        return self.qos.channel_spec(self.session_id, self.src_ni,
                                     self.dst_ni)


@dataclass(frozen=True)
class SessionEvent:
    """One control-plane request: open or close a session."""

    time_s: float
    kind: str  # "open" | "close"
    session: SessionRequest


class ChurnWorkload:
    """Deterministic event stream over one topology.

    Generation is eager (sessions are materialised on construction) so
    the same workload object can be replayed against several service
    instances — the determinism check replays the identical stream.
    """

    def __init__(self, spec: ChurnSpec, topology: Topology, seed: int):
        nis = list(topology.nis)
        if len(nis) < 2:
            raise ConfigurationError(
                f"churn needs >= 2 NIs; topology {topology.name!r} "
                f"has {len(nis)}")
        self.spec = spec
        self.topology = topology
        self.seed = seed
        self.sessions = self._generate(nis)

    def _generate(self, nis: list[str]) -> tuple[SessionRequest, ...]:
        spec = self.spec
        rng = random.Random(self.seed)
        names = list(spec.classes)
        weights = [c.weight for c in names]
        # Truncated Pareto: scale so the *untruncated* mean matches.
        shape = spec.pareto_shape
        scale = spec.mean_duration_s * (shape - 1.0) / shape
        clock = 0.0
        # Tenant draws happen strictly *after* the legacy per-session
        # draws and only when the mix is tenanted, so an untenanted
        # spec consumes the identical RNG sequence as earlier releases
        # (byte-identical streams and reports).
        tenants = list(spec.tenants)
        tenant_weights = [t.rate_multiplier for t in tenants]
        sessions = []
        for index in range(spec.n_sessions):
            clock += rng.expovariate(spec.arrival_rate_per_s)
            qos = rng.choices(names, weights)[0]
            src, dst = rng.sample(nis, 2)
            duration = min(scale * (1.0 - rng.random()) ** (-1.0 / shape),
                           spec.max_duration_s)
            tenant = app = ""
            if tenants:
                owner = rng.choices(tenants, tenant_weights)[0]
                tenant = owner.name
                app = owner.apps[rng.randrange(len(owner.apps))]
            sessions.append(SessionRequest(
                session_id=f"s{index:06d}", qos=qos, src_ni=src,
                dst_ni=dst, arrival_s=clock, duration_s=duration,
                tenant=tenant, app=app))
        return tuple(sessions)

    def events(self, limit: int | None = None) -> tuple[SessionEvent, ...]:
        """The time-ordered open/close stream (optionally truncated).

        Closes sort before opens at equal instants so slots freed by a
        departing session are available to a simultaneous arrival.
        """
        stream = [SessionEvent(s.arrival_s, "open", s)
                  for s in self.sessions]
        stream += [SessionEvent(s.departure_s, "close", s)
                   for s in self.sessions]
        stream.sort(key=lambda e: (e.time_s, e.kind != "close",
                                   e.session.session_id))
        if limit is not None:
            stream = stream[:max(0, limit)]
        return tuple(stream)
