"""The ``python -m repro serve --demo`` flow.

Runs a seeded churn trace on the Section VII mesh (4x3 concentrated
mesh, 4 NIs per router, 32-slot tables at 500 MHz) end to end — twice.
The second run replays the identical event stream against a fresh
service instance and the demo asserts the two canonical JSON reports
are byte-identical, the same self-check the campaign CLI performs for
its serial/parallel split.
"""

from __future__ import annotations

from repro.service.churn import ChurnSpec, ChurnWorkload
from repro.service.controller import SessionService
from repro.service.metrics import ServiceReport
from repro.topology.builders import concentrated_mesh

__all__ = ["demo_churn_spec", "run_demo"]

#: Section VII operating point.
DEMO_TABLE_SIZE = 32
DEMO_FREQUENCY_HZ = 500e6


def demo_churn_spec(n_events: int) -> ChurnSpec:
    """The demo workload: enough sessions to fill ``n_events`` events."""
    # Every session contributes at most two events; generate a small
    # surplus so truncation, not exhaustion, decides the stream length.
    return ChurnSpec(n_sessions=max(1, (n_events + 1) // 2 + 8))


def run_demo(*, n_events: int = 2000, seed: int = 2009,
             record_events: bool = True, telemetry=None, monitor=None
             ) -> tuple[ServiceReport, bool]:
    """Run the demo trace twice; return (report, byte-identical?).

    ``telemetry`` instruments the *first* run only; the second run is
    always bare, so the byte-identity verdict doubles as proof that
    instrumentation never leaks into the report.  ``monitor`` (a
    :class:`~repro.telemetry.monitor.MonitorSpec`, or ``True`` for the
    default) arms the conformance watchdog on the first run and
    attaches its quote verdict as ``report.conformance`` — outside the
    canonical record, so the byte-identity check still holds.
    """
    # Local import: campaign.spec imports service.churn, so importing it
    # at module scope would cycle through the package __init__s.
    from repro.campaign.spec import derive_seed
    from repro.telemetry.hub import coalesce

    tel = coalesce(telemetry)
    with tel.phase("workload"):
        topology = concentrated_mesh(4, 3, nis_per_router=4)
        spec = demo_churn_spec(n_events)
        workload = ChurnWorkload(spec, topology,
                                 derive_seed(seed, "serve-demo"))
        events = workload.events(limit=n_events)

    def one_run(run_telemetry=None, run_monitor=None) -> ServiceReport:
        service = SessionService(
            topology, table_size=DEMO_TABLE_SIZE,
            frequency_hz=DEMO_FREQUENCY_HZ, name="serve-demo",
            seed=seed, record_events=record_events,
            telemetry=run_telemetry, monitor=run_monitor)
        report = service.run(events)
        if service.monitor is not None:
            report.conformance = service.conformance_report(
                scenario="serve-demo")
        return report

    with tel.phase("serve"):
        first = one_run(telemetry, monitor)
    with tel.phase("verify"):
        second = one_run()
    return first, first.to_json() == second.to_json()
