"""The ``python -m repro serve --policy wfq --demo`` flow.

Runs the abusive-tenant adversary profile on the Section VII mesh and
answers the question the fairness subsystem exists for: *does one
flooding tenant degrade anyone else's admission?*  Three runs over the
identical tenant-tagged event stream make the verdict quantitative:

* **wfq** — the weighted-fair policy under test;
* **fcfs** — the legacy first-come-first-served baseline;
* **solo** — each tenant alone on the network (its exact arrivals from
  the shared mix, everyone else's removed), the per-tenant reference
  admission rate.

A tenant's *retention* is its contended admission rate over its solo
rate.  The demo asserts every well-behaved tenant retains at least
:data:`RETENTION_FLOOR` under wfq while the FCFS baseline demonstrably
fails that bound — and, like every demo, the whole comparison runs
twice to prove the emitted report is byte-identical.
"""

from __future__ import annotations

import json

from repro.service.churn import ChurnSpec, ChurnWorkload
from repro.service.controller import SessionService
from repro.service.fairness import (FairnessSpec, TenantSpec,
                                    abusive_tenant_mix, tenant_events)
from repro.topology.builders import concentrated_mesh

__all__ = ["fairness_churn_spec", "fairness_comparison",
           "run_fairness_demo", "RETENTION_FLOOR"]

#: Section VII operating point (shared with the serve demo).
DEMO_TABLE_SIZE = 32
DEMO_FREQUENCY_HZ = 500e6

#: Minimum contended/solo admission-rate ratio a well-behaved tenant
#: must retain under the weighted-fair policy.
RETENTION_FLOOR = 0.95


def fairness_churn_spec(n_events: int, *, multiplier: float = 10.0,
                        arrival_rate_per_s: float = 18000.0
                        ) -> ChurnSpec:
    """The adversarial demo workload: one abuser among three equals.

    The aggregate arrival rate is deliberately above what the Section
    VII mesh can hold, with the abuser offering ``multiplier`` times
    each well-behaved tenant's share — so FCFS admission hands the
    abuser the network while the fair-share load alone would fit.
    """
    tenants = abusive_tenant_mix(3, multiplier=multiplier,
                                 floor_opens_per_window=2)
    return ChurnSpec(
        n_sessions=max(1, (n_events + 1) // 2 + 8),
        arrival_rate_per_s=arrival_rate_per_s,
        tenants=tenants)


def demo_fairness_spec() -> FairnessSpec:
    """The demo's policy tunables: WFQ plus a windowed throttle.

    The per-tenant ceiling (40 opens per 10 ms window) sits far above
    any well-behaved tenant's arrival rate and well below the abuser's
    flood, so the throttle layer visibly contributes to the defence
    without touching honest traffic; the quantum of four bulk sessions
    lets an honest tenant burst inside a window without tripping the
    WFQ gate.
    """
    return FairnessSpec(window_s=0.01, quantum=4.0,
                        tenant_opens_per_window=40)


def _rate(stats: dict | None) -> float:
    """Admission rate of one per-tenant rollup (1.0 when unexercised)."""
    if not stats or not stats["opens"]:
        return 1.0
    return stats["accepted"] / stats["opens"]


def fairness_comparison(topology, events,
                        tenants: tuple[TenantSpec, ...], *,
                        table_size: int, frequency_hz: float,
                        fairness: FairnessSpec | None = None,
                        name: str = "fairness", seed: int = 0,
                        telemetry=None, monitor=None
                        ) -> dict[str, object]:
    """Run wfq vs FCFS vs per-tenant solo over one tagged stream.

    Returns the canonical JSON-ready fairness record: both contended
    reports, the per-tenant retention table and the verdict flags.
    Solo baselines run under FCFS (pure capacity, no policy in the
    way), so retention isolates what *contention* — not the policy —
    costs each tenant.  ``telemetry``/``monitor`` instrument the wfq
    run only; a monitored run additionally attaches the per-tenant
    quote-conformance verdict under the non-canonical ``_conformance``
    key (stripped before byte-identity comparisons).
    """
    def one_run(policy: str, run_events, run_name: str,
                run_telemetry=None, run_monitor=None):
        service = SessionService(
            topology, table_size=table_size, frequency_hz=frequency_hz,
            name=run_name, seed=seed, record_events=False,
            telemetry=run_telemetry, monitor=run_monitor,
            policy=policy,
            fairness=fairness if policy == "wfq" else None,
            tenants=tenants if policy == "wfq" else ())
        report = service.run(run_events)
        conformance = (service.conformance_report(scenario=run_name)
                       if service.monitor is not None else None)
        return report, conformance

    wfq, conformance = one_run("wfq", events, f"{name}-wfq",
                               telemetry, monitor)
    fcfs, _ = one_run("fcfs", events, f"{name}-fcfs")
    multipliers = [t.rate_multiplier for t in tenants]
    honest = min(multipliers)
    retention: dict[str, dict[str, object]] = {}
    checks_ok = True
    fcfs_fails = False
    min_retention = 1.0
    for tenant in sorted(tenants, key=lambda t: t.name):
        solo, _ = one_run("fcfs", tenant_events(events, tenant.name),
                          f"{name}-solo-{tenant.name}")
        solo_rate = _rate((solo.tenants or {}).get(tenant.name))
        wfq_rate = _rate((wfq.tenants or {}).get(tenant.name))
        fcfs_rate = _rate((fcfs.tenants or {}).get(tenant.name))
        wfq_retention = wfq_rate / solo_rate if solo_rate else 1.0
        fcfs_retention = fcfs_rate / solo_rate if solo_rate else 1.0
        well_behaved = tenant.rate_multiplier <= honest
        if well_behaved:
            min_retention = min(min_retention, wfq_retention)
            if wfq_retention < RETENTION_FLOOR:
                checks_ok = False
            if fcfs_retention < RETENTION_FLOOR:
                fcfs_fails = True
        retention[tenant.name] = {
            "well_behaved": well_behaved,
            "solo_rate": round(solo_rate, 4),
            "wfq_rate": round(wfq_rate, 4),
            "fcfs_rate": round(fcfs_rate, 4),
            "wfq_retention": round(wfq_retention, 4),
            "fcfs_retention": round(fcfs_retention, 4),
        }
    record: dict[str, object] = {
        "demo": "fairness",
        "policy": "wfq",
        "tenants": {t.name: {"weight": t.weight,
                             "rate_multiplier": t.rate_multiplier,
                             "apps": list(t.apps),
                             "floor_opens_per_window":
                                 t.floor_opens_per_window}
                    for t in sorted(tenants, key=lambda t: t.name)},
        "wfq": wfq.to_record(),
        "fcfs": fcfs.to_record(),
        "retention": retention,
        "checks": {
            "retention_floor": RETENTION_FLOOR,
            "min_well_behaved_retention": round(min_retention, 4),
            "wfq_retention_ok": checks_ok,
            "fcfs_fails": fcfs_fails,
        },
    }
    if conformance is not None:
        record["_conformance"] = conformance
    record["_reports"] = (wfq, fcfs)
    return record


def canonical_fairness_json(record: dict[str, object]) -> str:
    """The byte-deterministic serialisation (non-canonical keys
    stripped)."""
    canonical = {k: v for k, v in record.items()
                 if not k.startswith("_")}
    return json.dumps(canonical, indent=2, sort_keys=True)


def run_fairness_demo(*, n_events: int = 2000, seed: int = 2009,
                      multiplier: float = 10.0, telemetry=None,
                      monitor=None
                      ) -> tuple[dict[str, object], str, bool]:
    """Run the adversarial comparison twice on the Section VII mesh.

    Returns ``(record, canonical_json, byte_identical)``; the record
    carries the retention table and verdicts of the *first* pass, which
    is also the only instrumented one (same contract as every other
    demo: the byte-identity verdict doubles as proof instrumentation
    never leaks into the report).
    """
    from repro.campaign.spec import derive_seed
    from repro.telemetry.hub import coalesce

    tel = coalesce(telemetry)
    with tel.phase("workload"):
        topology = concentrated_mesh(4, 3, nis_per_router=4)
        spec = fairness_churn_spec(n_events, multiplier=multiplier)
        workload = ChurnWorkload(spec, topology,
                                 derive_seed(seed, "fairness-demo"))
        events = workload.events(limit=n_events)

    def one_pass(pass_telemetry=None, pass_monitor=None):
        record = fairness_comparison(
            topology, events, spec.tenants,
            table_size=DEMO_TABLE_SIZE,
            frequency_hz=DEMO_FREQUENCY_HZ,
            fairness=demo_fairness_spec(), name="fairness-demo",
            seed=seed, telemetry=pass_telemetry,
            monitor=pass_monitor)
        record["seed"] = seed
        record["n_events"] = len(events)
        record["topology"] = topology.name
        return record

    with tel.phase("compare"):
        first = one_pass(telemetry, monitor)
    with tel.phase("verify"):
        second = one_pass()
    first_json = canonical_fairness_json(first)
    return first, first_json, first_json == canonical_fairness_json(
        second)
