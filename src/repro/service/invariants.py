"""Continuous composability checking under churn.

The paper's composability claim — starting or stopping an application
never touches another application's reservations — is proved statically
by :class:`~repro.core.reconfiguration.TransitionReport` for a single
hand-written transition.  Under churn the claim must hold for *every*
transition, so :class:`CompositionInvariantChecker` rides along with the
admission controller and asserts, after each admit/release, that every
other running session's reservations are bit-identical to what they were
before the transition.

Two mechanisms at two costs:

* every transition: the surviving sessions' :class:`ChannelAllocation`
  records (route and slot tuple) are compared against the checker's
  expected map — identity first (the committed objects are frozen), with
  a value comparison fallback so an equal-but-replaced record is not a
  false alarm;
* every ``validate_every`` transitions (and at the end of a run): the
  full :meth:`Allocation.validate` re-derivation, which also catches
  divergence between channel records and per-link occupancy tables.

Violations are collected, not raised, so a run always produces a report
whose ``invariant`` section states the verdict.
"""

from __future__ import annotations

from repro.core.allocation import Allocation
from repro.core.exceptions import AllocationError, ConfigurationError

__all__ = ["CompositionInvariantChecker"]


class CompositionInvariantChecker:
    """Asserts per-session isolation across a stream of transitions."""

    def __init__(self, allocation: Allocation, *,
                 validate_every: int = 512):
        if validate_every < 1:
            raise ConfigurationError("validate_every must be >= 1")
        self.allocation = allocation
        self.validate_every = validate_every
        self.transitions_checked = 0
        self.full_validations = 0
        self.violations: list[str] = []
        self._expected = dict(allocation.channels)
        self._since_validate = 0

    @property
    def ok(self) -> bool:
        """True while no transition has disturbed a running session."""
        return not self.violations

    def check_transition(self, changed: str) -> bool:
        """Verify isolation after a transition that touched ``changed``.

        ``changed`` is the session admitted, released, or rejected; every
        other session must be exactly as recorded.  Returns whether this
        transition was clean, and updates the expected map to the
        post-transition state.
        """
        self.transitions_checked += 1
        actual = self.allocation.channels
        clean = True
        for name, expected_ca in self._expected.items():
            if name == changed:
                continue
            current = actual.get(name)
            if current is expected_ca:
                continue
            if (current is None
                    or current.slots != expected_ca.slots
                    or current.path.link_keys()
                    != expected_ca.path.link_keys()):
                clean = False
                self.violations.append(
                    f"transition on {changed!r} disturbed running "
                    f"session {name!r}")
        if len(actual) - (changed in actual) \
                != len(self._expected) - (changed in self._expected):
            for name in actual:
                if name != changed and name not in self._expected:
                    clean = False
                    self.violations.append(
                        f"transition on {changed!r} materialised "
                        f"unexpected session {name!r}")
        if changed in actual:
            self._expected[changed] = actual[changed]
        else:
            self._expected.pop(changed, None)
        self._since_validate += 1
        if self._since_validate >= self.validate_every:
            clean = self._full_validate() and clean
        return clean

    def final_check(self) -> dict[str, object]:
        """Run a terminal full validation and return the JSON verdict."""
        self._full_validate()
        return {
            "ok": self.ok,
            "transitions_checked": self.transitions_checked,
            "full_validations": self.full_validations,
            "violations": list(self.violations),
        }

    def _full_validate(self) -> bool:
        self._since_validate = 0
        self.full_validations += 1
        try:
            self.allocation.validate()
            return True
        except AllocationError as exc:
            self.violations.append(f"full validation failed: {exc}")
            return False
