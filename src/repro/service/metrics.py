"""Per-event service metrics and the deterministic JSON report.

The control plane records every decision it makes; the report is split
into two layers with different determinism contracts:

* the **canonical report** (:meth:`ServiceReport.to_json`) carries only
  model-time quantities — decisions, bound quotes, utilisation, churn
  rates derived from event timestamps — and is byte-identical across
  repeated runs of the same workload (the same contract as campaign
  reports);
* **wall-clock timing** (events/second, admission latency percentiles)
  is inherently machine-dependent, so it lives in
  :attr:`ServiceReport.timing` and is *excluded* from the canonical
  JSON; the CLI and the benchmark print it separately.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["ServiceMetrics", "ServiceReport"]


def _round(value: float, digits: int = 4) -> float:
    """Stable rounding for report floats (readability, not determinism —
    the underlying values are already deterministic)."""
    return round(value, digits)


class ServiceMetrics:
    """Accumulates per-event records and windowed time series."""

    def __init__(self, *, window: int = 100, record_events: bool = True):
        self.window = max(1, window)
        self.record_events = record_events
        self.events: list[dict[str, object]] = []
        self.series: list[dict[str, object]] = []
        self.n_events = 0
        self.n_opens = 0
        self.n_accepted = 0
        self.n_rejected = 0
        self.n_closes = 0
        self.n_released = 0
        self.n_shed = 0
        self.per_class: dict[str, dict[str, int]] = {}
        self.per_tenant: dict[str, dict[str, int]] = {}
        self.n_fault_events = 0
        self.n_failures = 0
        self.n_repairs = 0
        self.n_evicted = 0
        self.n_reallocated = 0
        self.n_realloc_same_bounds = 0
        self.n_realloc_degraded = 0
        self.n_fault_dropped = 0
        self._window_opens = 0
        self._window_accepts = 0
        self._window_start_s = 0.0
        self._admit_wall_s: list[float] = []
        self._realloc_wall_s: list[float] = []

    # -- recording ------------------------------------------------------------

    def record_open(self, record: dict[str, object] | None, *,
                    qos_name: str, accepted: bool, wall_s: float,
                    tenant: str = "", shed: str | None = None) -> None:
        """Record one admission decision (``record`` is JSON-ready, or
        ``None`` when per-event recording is off).

        ``tenant`` feeds the per-tenant rollup of tenanted workloads
        (empty keeps it out entirely, preserving untenanted report
        bytes); ``shed`` names the policy layer that rejected the open
        before it reached the allocator — sheds count into the
        rejected totals *and* into their own ``shed`` tallies.
        """
        self.n_events += 1
        self.n_opens += 1
        self._window_opens += 1
        stats = self.per_class.setdefault(
            qos_name, {"opens": 0, "accepted": 0, "rejected": 0})
        stats["opens"] += 1
        if accepted:
            self.n_accepted += 1
            self._window_accepts += 1
            stats["accepted"] += 1
        else:
            self.n_rejected += 1
            stats["rejected"] += 1
            if shed is not None:
                self.n_shed += 1
                # Only classes that were actually shed grow the key, so
                # policy-free reports keep their exact per-class shape.
                stats["shed"] = stats.get("shed", 0) + 1
        if tenant:
            tstats = self.per_tenant.setdefault(
                tenant, {"opens": 0, "accepted": 0, "rejected": 0,
                         "shed": 0})
            tstats["opens"] += 1
            if accepted:
                tstats["accepted"] += 1
            else:
                tstats["rejected"] += 1
                if shed is not None:
                    tstats["shed"] += 1
        self._admit_wall_s.append(wall_s)
        if self.record_events and record is not None:
            self.events.append(record)

    def record_close(self, record: dict[str, object] | None, *,
                     released: bool) -> None:
        """Record one close (released or skipped)."""
        self.n_events += 1
        self.n_closes += 1
        if released:
            self.n_released += 1
        if self.record_events and record is not None:
            self.events.append(record)

    def record_fault(self, record: dict[str, object] | None, *,
                     action: str, evicted: int, reallocated: int,
                     same_bounds: int, degraded: int,
                     realloc_wall_s: float) -> None:
        """Record one fabric fault/repair and its re-allocation outcome.

        Fault events do not count into ``n_events`` (that stays the
        session-event total the accept rate is quoted against); they
        accumulate into the ``faults`` section of the report instead.
        """
        self.n_fault_events += 1
        if action == "fail":
            self.n_failures += 1
        else:
            self.n_repairs += 1
        self.n_evicted += evicted
        self.n_reallocated += reallocated
        self.n_realloc_same_bounds += same_bounds
        self.n_realloc_degraded += degraded
        self.n_fault_dropped += evicted - reallocated
        if evicted:
            self._realloc_wall_s.append(realloc_wall_s / evicted)
        if self.record_events and record is not None:
            self.events.append(record)

    def fault_totals(self) -> dict[str, object]:
        """The deterministic ``faults`` section of the report.

        ``guarantee_retention`` is the fraction of fault-evicted
        sessions re-admitted with bounds no worse than their original
        quote; ``session_survival`` the fraction re-admitted at all.
        """
        evicted = self.n_evicted
        return {
            "n_fault_events": self.n_fault_events,
            "n_failures": self.n_failures,
            "n_repairs": self.n_repairs,
            "n_evicted": evicted,
            "n_reallocated": self.n_reallocated,
            "n_realloc_same_bounds": self.n_realloc_same_bounds,
            "n_realloc_degraded": self.n_realloc_degraded,
            "n_dropped": self.n_fault_dropped,
            "guarantee_retention": _round(
                self.n_realloc_same_bounds / evicted if evicted else 1.0),
            "session_survival": _round(
                self.n_reallocated / evicted if evicted else 1.0),
        }

    def snapshot(self, *, time_s: float, active_sessions: int,
                 mean_link_utilisation: float) -> None:
        """Append one time-series point (called every ``window`` events)."""
        span = max(time_s - self._window_start_s, 1e-12)
        self.series.append({
            "event": self.n_events,
            "t_ms": _round(time_s * 1e3),
            "active_sessions": active_sessions,
            "mean_link_utilisation": _round(mean_link_utilisation),
            "accept_rate_window": _round(
                self._window_accepts / self._window_opens
                if self._window_opens else 1.0),
            "accept_rate_total": _round(
                self.n_accepted / self.n_opens if self.n_opens else 1.0),
            "churn_events_per_s": _round(self.window / span, 1),
        })
        self._window_opens = 0
        self._window_accepts = 0
        self._window_start_s = time_s

    @property
    def due_for_snapshot(self) -> bool:
        """True when a window boundary has been reached."""
        return self.n_events % self.window == 0

    # -- wall-clock side channel ----------------------------------------------

    def timing(self, wall_s: float) -> dict[str, float]:
        """Machine-dependent figures (kept out of the canonical report)."""
        admits = sorted(self._admit_wall_s)
        out = {
            "wall_s": wall_s,
            "events_per_s": self.n_events / wall_s if wall_s > 0 else 0.0,
        }
        if admits:
            out["admit_mean_us"] = 1e6 * sum(admits) / len(admits)
            out["admit_p99_us"] = 1e6 * admits[
                min(len(admits) - 1, int(0.99 * len(admits)))]
        if self._realloc_wall_s:
            # Mean wall-clock to re-allocate one fault-evicted session
            # (release + re-admission through the normal path).
            out["realloc_mean_us"] = (1e6 * sum(self._realloc_wall_s) /
                                      len(self._realloc_wall_s))
        return out


@dataclass
class ServiceReport:
    """The aggregated outcome of one service run."""

    service: str
    topology: str
    table_size: int
    frequency_mhz: float
    seed: int
    totals: dict[str, object]
    per_class: dict[str, dict[str, int]]
    series: list[dict[str, object]]
    invariant: dict[str, object]
    events: list[dict[str, object]] = field(default_factory=list)
    #: Fault/repair survivability section; ``None`` for runs without
    #: fault injection (kept out of the JSON so fault-free reports are
    #: byte-compatible with earlier releases).
    faults: dict[str, object] | None = None
    #: Per-tenant admission rollup; ``None`` for untenanted workloads
    #: (same byte-compatibility contract as ``faults``).
    tenants: dict[str, dict[str, int]] | None = None
    #: Weighted-fair policy section (spec echo + per-tenant scheduler
    #: state); ``None`` under the default FCFS policy.
    fairness: dict[str, object] | None = None
    #: Wall-clock figures; machine-dependent, never serialised.
    timing: dict[str, float] = field(default_factory=dict)

    def to_record(self) -> dict[str, object]:
        """The canonical, deterministic JSON-ready dictionary."""
        record: dict[str, object] = {
            "service": self.service,
            "topology": self.topology,
            "table_size": self.table_size,
            "frequency_mhz": self.frequency_mhz,
            "seed": self.seed,
            "totals": self.totals,
            "per_class": self.per_class,
            "series": self.series,
            "invariant": self.invariant,
        }
        if self.faults is not None:
            record["faults"] = self.faults
        if self.tenants is not None:
            record["tenants"] = self.tenants
        if self.fairness is not None:
            record["fairness"] = self.fairness
        if self.events:
            record["events"] = self.events
        return record

    def to_json(self, *, indent: int = 2) -> str:
        """Canonical JSON: sorted keys, no wall-clock state."""
        return json.dumps(self.to_record(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        """Write the canonical JSON report to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def summary_rows(self) -> list[dict[str, object]]:
        """Per-class table rows for :func:`~repro.experiments.report.
        format_table`."""
        rows = []
        for name in sorted(self.per_class):
            stats = self.per_class[name]
            rows.append({
                "class": name,
                "opens": stats["opens"],
                "accepted": stats["accepted"],
                "rejected": stats["rejected"],
                "accept_rate": round(
                    stats["accepted"] / stats["opens"], 3)
                if stats["opens"] else 1.0,
            })
        return rows

    def tenant_rows(self) -> list[dict[str, object]]:
        """Per-tenant table rows (empty for untenanted workloads)."""
        rows = []
        for name in sorted(self.tenants or {}):
            stats = self.tenants[name]
            rows.append({
                "tenant": name,
                "opens": stats["opens"],
                "accepted": stats["accepted"],
                "rejected": stats["rejected"],
                "shed": stats["shed"],
                "accept_rate": round(
                    stats["accepted"] / stats["opens"], 3)
                if stats["opens"] else 1.0,
            })
        return rows
