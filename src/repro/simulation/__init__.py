"""Simulation: event kernel, flit-level and word-level simulators."""

from __future__ import annotations

import importlib

_EXPORTS: dict[str, str] = {
    "SimRequest": "repro.simulation.backend",
    "SimResult": "repro.simulation.backend",
    "SimulationBackend": "repro.simulation.backend",
    "FlitLevelBackend": "repro.simulation.backend",
    "CycleAccurateBackend": "repro.simulation.backend",
    "BestEffortBackend": "repro.simulation.backend",
    "available_backends": "repro.simulation.backend",
    "create_backend": "repro.simulation.backend",
    "Engine": "repro.simulation.engine",
    "Clocked": "repro.simulation.engine",
    "Phit": "repro.simulation.signals",
    "WordWire": "repro.simulation.signals",
    "IDLE": "repro.simulation.signals",
    "FlitLevelSimulator": "repro.simulation.flitsim",
    "FlitSimResult": "repro.simulation.flitsim",
    "DetailedNetwork": "repro.simulation.cyclesim",
    "DetailedSimResult": "repro.simulation.cyclesim",
    "MessageEvent": "repro.simulation.traffic",
    "TrafficPattern": "repro.simulation.traffic",
    "ConstantBitRate": "repro.simulation.traffic",
    "PeriodicBurst": "repro.simulation.traffic",
    "BernoulliMessages": "repro.simulation.traffic",
    "Replay": "repro.simulation.traffic",
    "Saturating": "repro.simulation.traffic",
    "GeneratorComponent": "repro.simulation.traffic",
    "InjectionRecord": "repro.simulation.monitors",
    "DeliveryRecord": "repro.simulation.monitors",
    "ChannelStats": "repro.simulation.monitors",
    "StatsCollector": "repro.simulation.monitors",
    "TraceRecorder": "repro.simulation.monitors",
    "LatencySummary": "repro.simulation.monitors",
    "ComposabilityReport": "repro.simulation.composability",
    "run_with_channels": "repro.simulation.composability",
    "compare_subsets": "repro.simulation.composability",
    "DynamicComposabilityReport": "repro.simulation.composability",
    "replay_traffic": "repro.simulation.composability",
    "verify_timeline": "repro.simulation.composability",
    "run_replay_demo": "repro.simulation.replay",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    """Resolve exports lazily to keep imports cycle-free."""
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.simulation' has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
