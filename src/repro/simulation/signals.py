"""Wires and phits: how the cycle-accurate models exchange values.

The detailed models follow a strict two-phase discipline per clock edge
(see :mod:`repro.simulation.engine`): during *compute* every component
reads its input wires (which still hold last cycle's values) and prepares
its next state; during *commit* every component latches and drives its
output wires.  A :class:`WordWire` is therefore exactly a registered
output: its value changes only at commit time.

A :class:`Phit` couples the electrical content of one word-time on a wire
(data word, valid, end-of-packet sideband) with a reference to the flit it
belongs to.  Hardware models only branch on ``word``/``valid``/``eop``;
the flit reference exists so monitors can attribute latency to channels
without altering the data path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.flits import Flit

__all__ = ["Phit", "WordWire", "IDLE"]


@dataclass(frozen=True)
class Phit:
    """One word-time on a link: data plus sideband plus tracing reference."""

    word: int
    valid: bool
    eop: bool
    flit: Optional[Flit] = None
    word_index: int = 0

    def __repr__(self) -> str:
        if not self.valid:
            return "Phit(idle)"
        eop = ", eop" if self.eop else ""
        return f"Phit(0x{self.word:x}, w{self.word_index}{eop})"


IDLE = Phit(word=0, valid=False, eop=False)


class WordWire:
    """A registered point-to-point word connection.

    The producer calls :meth:`drive` during its commit phase; consumers
    call :meth:`sample` during their compute phase of the *next* edge and
    observe the driven value.  Driving twice in one commit phase is a
    hardware short and raises.
    """

    __slots__ = ("name", "_current", "_next", "_driven")

    def __init__(self, name: str = "wire"):
        self.name = name
        self._current: Phit = IDLE
        self._next: Phit = IDLE
        self._driven = False

    def drive(self, phit: Phit) -> None:
        """Set the value the wire will carry after the edge (commit phase)."""
        from repro.core.exceptions import SimulationError
        if self._driven:
            raise SimulationError(
                f"wire {self.name!r} driven twice in one cycle")
        self._next = phit
        self._driven = True

    def sample(self) -> Phit:
        """Read the value currently on the wire (compute phase)."""
        return self._current

    def latch(self) -> None:
        """Advance to the next value; idle when nobody drove the wire.

        Called by the engine once per edge of the *producer's* clock, after
        all commits.
        """
        self._current = self._next if self._driven else IDLE
        self._next = IDLE
        self._driven = False

    def __repr__(self) -> str:
        return f"WordWire({self.name!r}, {self._current!r})"
